//! The configuration matrix of the paper's evaluation (Table 1 + §4.1),
//! plus the reference machines of the open topology axis.

use crate::config::MachineConfig;
use crate::interconnect::Interconnect;

/// Which of the paper's machine shapes a configuration instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PresetKind {
    /// Single cluster with all 12 units (the IPC upper bound).
    Unified,
    /// Two clusters of 2i/2f/2m each.
    TwoCluster,
    /// Four clusters of 1i/1f/1m each.
    FourCluster,
}

/// Returns every machine configuration evaluated in the paper:
/// unified/2-cluster/4-cluster × {32, 64} registers × 1 bus × latency {1, 2}.
///
/// The unified machine has no bus, so it appears once per register count.
/// The order is deterministic: unified first, then 2-cluster, then
/// 4-cluster, each sorted by (registers, bus latency).
///
/// # Example
///
/// ```
/// use gpsched_machine::table1_configs;
///
/// let configs = table1_configs();
/// assert_eq!(configs.len(), 10);
/// assert!(configs[0].1.is_unified());
/// ```
pub fn table1_configs() -> Vec<(PresetKind, MachineConfig)> {
    let mut out = Vec::new();
    for regs in [32, 64] {
        out.push((PresetKind::Unified, MachineConfig::unified(regs)));
    }
    for regs in [32, 64] {
        for lat in [1, 2] {
            out.push((
                PresetKind::TwoCluster,
                MachineConfig::two_cluster(regs, 1, lat),
            ));
        }
    }
    for regs in [32, 64] {
        for lat in [1, 2] {
            out.push((
                PresetKind::FourCluster,
                MachineConfig::four_cluster(regs, 1, lat),
            ));
        }
    }
    out
}

/// The reference machine of every non-bus topology, next to the paper's
/// shared-bus 2-cluster baseline for comparison: a 12-issue 2-cluster
/// pipelined bus, a 4-cluster unidirectional ring and a 4-cluster uniform
/// point-to-point mesh. All four carry the same total resources as the
/// Table 1 machines, so IPC differences isolate the interconnect.
///
/// The order is deterministic; short names are unique
/// (`c2r32b1l1`, `c2r32pb1l2`, `c4r64ring1x1`, `c4r64p2p1x1`).
///
/// # Example
///
/// ```
/// use gpsched_machine::topology_presets;
///
/// let presets = topology_presets();
/// assert_eq!(presets.len(), 4);
/// assert!(presets.iter().any(|m| m.short_name() == "c4r64ring1x1"));
/// ```
pub fn topology_presets() -> Vec<MachineConfig> {
    vec![
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::homogeneous_with(
            2,
            (2, 2, 2),
            32,
            Interconnect::SharedBus {
                count: 1,
                latency: 2,
                pipelined: true,
            },
        ),
        MachineConfig::homogeneous_with(
            4,
            (1, 1, 1),
            64,
            Interconnect::Ring {
                hop_latency: 1,
                links_per_hop: 1,
            },
        ),
        MachineConfig::homogeneous_with(
            4,
            (1, 1, 1),
            64,
            Interconnect::uniform_point_to_point(4, 1, 1),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceKind;

    #[test]
    fn ten_configurations() {
        assert_eq!(table1_configs().len(), 10);
    }

    #[test]
    fn every_config_is_twelve_issue() {
        for (_, m) in table1_configs() {
            assert_eq!(m.issue_width(), 12);
            for kind in ResourceKind::ALL {
                assert_eq!(m.total_units(kind), 4);
            }
        }
    }

    #[test]
    fn register_totals_are_32_or_64() {
        for (_, m) in table1_configs() {
            assert!(m.total_registers() == 32 || m.total_registers() == 64);
        }
    }

    #[test]
    fn kinds_match_cluster_counts() {
        for (kind, m) in table1_configs() {
            let expect = match kind {
                PresetKind::Unified => 1,
                PresetKind::TwoCluster => 2,
                PresetKind::FourCluster => 4,
            };
            assert_eq!(m.cluster_count(), expect);
        }
    }

    #[test]
    fn short_names_are_unique() {
        let names: std::collections::HashSet<String> = table1_configs()
            .iter()
            .map(|(_, m)| m.short_name())
            .collect();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn topology_presets_are_twelve_issue_and_distinct() {
        let presets = topology_presets();
        let names: std::collections::HashSet<String> =
            presets.iter().map(MachineConfig::short_name).collect();
        assert_eq!(names.len(), presets.len());
        for m in &presets {
            assert_eq!(m.issue_width(), 12);
            assert!(!m.is_unified());
        }
        // One preset per non-bus topology kind, plus the bus baseline.
        let kinds: std::collections::HashSet<&str> = presets
            .iter()
            .map(|m| m.interconnect().kind_name())
            .collect();
        for kind in ["bus", "pipelined-bus", "ring", "p2p"] {
            assert!(kinds.contains(kind), "missing {kind}");
        }
    }
}
