//! The configuration matrix of the paper's evaluation (Table 1 + §4.1).

use crate::config::MachineConfig;

/// Which of the paper's machine shapes a configuration instantiates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PresetKind {
    /// Single cluster with all 12 units (the IPC upper bound).
    Unified,
    /// Two clusters of 2i/2f/2m each.
    TwoCluster,
    /// Four clusters of 1i/1f/1m each.
    FourCluster,
}

/// Returns every machine configuration evaluated in the paper:
/// unified/2-cluster/4-cluster × {32, 64} registers × 1 bus × latency {1, 2}.
///
/// The unified machine has no bus, so it appears once per register count.
/// The order is deterministic: unified first, then 2-cluster, then
/// 4-cluster, each sorted by (registers, bus latency).
///
/// # Example
///
/// ```
/// use gpsched_machine::table1_configs;
///
/// let configs = table1_configs();
/// assert_eq!(configs.len(), 10);
/// assert!(configs[0].1.is_unified());
/// ```
pub fn table1_configs() -> Vec<(PresetKind, MachineConfig)> {
    let mut out = Vec::new();
    for regs in [32, 64] {
        out.push((PresetKind::Unified, MachineConfig::unified(regs)));
    }
    for regs in [32, 64] {
        for lat in [1, 2] {
            out.push((
                PresetKind::TwoCluster,
                MachineConfig::two_cluster(regs, 1, lat),
            ));
        }
    }
    for regs in [32, 64] {
        for lat in [1, 2] {
            out.push((
                PresetKind::FourCluster,
                MachineConfig::four_cluster(regs, 1, lat),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ResourceKind;

    #[test]
    fn ten_configurations() {
        assert_eq!(table1_configs().len(), 10);
    }

    #[test]
    fn every_config_is_twelve_issue() {
        for (_, m) in table1_configs() {
            assert_eq!(m.issue_width(), 12);
            for kind in ResourceKind::ALL {
                assert_eq!(m.total_units(kind), 4);
            }
        }
    }

    #[test]
    fn register_totals_are_32_or_64() {
        for (_, m) in table1_configs() {
            assert!(m.total_registers() == 32 || m.total_registers() == 64);
        }
    }

    #[test]
    fn kinds_match_cluster_counts() {
        for (kind, m) in table1_configs() {
            let expect = match kind {
                PresetKind::Unified => 1,
                PresetKind::TwoCluster => 2,
                PresetKind::FourCluster => 4,
            };
            assert_eq!(m.cluster_count(), expect);
        }
    }

    #[test]
    fn short_names_are_unique() {
        let names: std::collections::HashSet<String> = table1_configs()
            .iter()
            .map(|(_, m)| m.short_name())
            .collect();
        assert_eq!(names.len(), 10);
    }
}
