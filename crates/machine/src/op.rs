//! Operation classes.

use crate::resources::ResourceKind;
use std::fmt;

/// The class of an operation in a loop body.
///
/// The class determines which functional-unit kind the operation occupies
/// and its latency under a [`crate::LatencyModel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Integer ALU operation (add, shift, compare, address arithmetic…).
    IntAlu,
    /// Floating-point add/subtract.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root (long latency).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
}

impl OpClass {
    /// All operation classes.
    pub const ALL: [OpClass; 6] = [
        OpClass::IntAlu,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
    ];

    /// The functional-unit kind this class occupies.
    pub fn resource(self) -> ResourceKind {
        match self {
            OpClass::IntAlu => ResourceKind::IntAlu,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => ResourceKind::FpAlu,
            OpClass::Load | OpClass::Store => ResourceKind::MemPort,
        }
    }

    /// Returns `true` for loads and stores.
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Returns `true` if the operation defines a register value consumed by
    /// other operations (stores do not).
    pub fn defines_value(self) -> bool {
        !matches!(self, OpClass::Store)
    }

    /// Parses the display name back into a class (the inverse of
    /// [`fmt::Display`]; used by the `.ddg` interchange parser).
    pub fn parse(s: &str) -> Option<OpClass> {
        match s {
            "int" => Some(OpClass::IntAlu),
            "fadd" => Some(OpClass::FpAdd),
            "fmul" => Some(OpClass::FpMul),
            "fdiv" => Some(OpClass::FpDiv),
            "load" => Some(OpClass::Load),
            "store" => Some(OpClass::Store),
            _ => None,
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Load => "load",
            OpClass::Store => "store",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_mapping() {
        assert_eq!(OpClass::IntAlu.resource(), ResourceKind::IntAlu);
        assert_eq!(OpClass::FpAdd.resource(), ResourceKind::FpAlu);
        assert_eq!(OpClass::FpMul.resource(), ResourceKind::FpAlu);
        assert_eq!(OpClass::FpDiv.resource(), ResourceKind::FpAlu);
        assert_eq!(OpClass::Load.resource(), ResourceKind::MemPort);
        assert_eq!(OpClass::Store.resource(), ResourceKind::MemPort);
    }

    #[test]
    fn memory_and_value_predicates() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(!OpClass::FpAdd.is_memory());
        assert!(OpClass::Load.defines_value());
        assert!(!OpClass::Store.defines_value());
        assert!(OpClass::IntAlu.defines_value());
    }

    #[test]
    fn all_covers_every_class() {
        assert_eq!(OpClass::ALL.len(), 6);
    }
}
