//! Clustered VLIW machine model for the `gpsched` workspace.
//!
//! Models the processor configurations of Table 1 of *"Graph-Partitioning
//! Based Instruction Scheduling for Clustered Processors"* (Aletà et al.,
//! MICRO-34, 2001): 12-issue machines whose functional units, register file
//! and memory ports are divided homogeneously among 1 (unified), 2 or 4
//! clusters, connected by one or two non-pipelined buses of latency 1 or 2
//! cycles. The memory hierarchy is shared and perfect (all hits), as in the
//! paper.
//!
//! Beyond the paper, the interconnect is an open axis: [`Interconnect`]
//! also models pipelined shared buses, per-pair point-to-point links and
//! unidirectional rings, all behind one channel/route query API that the
//! partitioner, schedulers and simulator consume uniformly (see that
//! type's docs and `DESIGN.md`). [`topology_presets`] bundles a reference
//! machine per topology.
//!
//! The latencies in the paper's Table 1 are unreadable in the available
//! scan; this model uses the latencies of the same group's companion papers
//! (Sánchez & González, MICRO-33; Codina et al., PACT'01): integer 1,
//! floating-point 3 (fully pipelined), load 2, store 1. See `DESIGN.md` §4.
//!
//! # Example
//!
//! ```
//! use gpsched_machine::{MachineConfig, OpClass, ResourceKind};
//!
//! let m = MachineConfig::two_cluster(32, 1, 1);
//! assert_eq!(m.cluster_count(), 2);
//! assert_eq!(m.issue_width(), 12);
//! assert_eq!(m.cluster(0).units(ResourceKind::MemPort), 2);
//! assert_eq!(m.cluster(0).registers, 16);
//! assert_eq!(m.latency(OpClass::Load), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod interconnect;
mod latency;
mod op;
mod presets;
mod resources;

pub use config::{ClusterConfig, MachineConfig};
pub use interconnect::{Hop, Interconnect, RouteIter};
pub use latency::LatencyModel;
pub use op::OpClass;
pub use presets::{table1_configs, topology_presets, PresetKind};
pub use resources::ResourceKind;
