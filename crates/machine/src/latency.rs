//! Operation latencies.

use crate::op::OpClass;

/// Latency (in cycles) of each operation class.
///
/// All units are fully pipelined: an operation occupies its functional unit
/// for one cycle and its result is available `latency` cycles after issue.
///
/// The default values follow the companion papers of the same group (see
/// crate docs): integer 1, fp add/mul 3, fp divide 8, load 2, store 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LatencyModel {
    /// Integer ALU latency.
    pub int_alu: u32,
    /// Floating-point add latency.
    pub fp_add: u32,
    /// Floating-point multiply latency.
    pub fp_mul: u32,
    /// Floating-point divide latency.
    pub fp_div: u32,
    /// Load-use latency (perfect cache).
    pub load: u32,
    /// Store latency (address/data consumed at issue).
    pub store: u32,
}

impl LatencyModel {
    /// Latency of an operation class.
    pub fn latency(&self, op: OpClass) -> u32 {
        match op {
            OpClass::IntAlu => self.int_alu,
            OpClass::FpAdd => self.fp_add,
            OpClass::FpMul => self.fp_mul,
            OpClass::FpDiv => self.fp_div,
            OpClass::Load => self.load,
            OpClass::Store => self.store,
        }
    }

    /// The largest latency of any class (useful as a search bound).
    pub fn max_latency(&self) -> u32 {
        OpClass::ALL
            .iter()
            .map(|&c| self.latency(c))
            .max()
            .expect("OpClass::ALL is non-empty")
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            int_alu: 1,
            fp_add: 3,
            fp_mul: 3,
            fp_div: 8,
            load: 2,
            store: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies() {
        let l = LatencyModel::default();
        assert_eq!(l.latency(OpClass::IntAlu), 1);
        assert_eq!(l.latency(OpClass::FpAdd), 3);
        assert_eq!(l.latency(OpClass::FpMul), 3);
        assert_eq!(l.latency(OpClass::FpDiv), 8);
        assert_eq!(l.latency(OpClass::Load), 2);
        assert_eq!(l.latency(OpClass::Store), 1);
    }

    #[test]
    fn max_latency_is_fp_div_by_default() {
        assert_eq!(LatencyModel::default().max_latency(), 8);
    }

    #[test]
    fn custom_model() {
        let l = LatencyModel {
            load: 5,
            ..LatencyModel::default()
        };
        assert_eq!(l.latency(OpClass::Load), 5);
        assert_eq!(l.latency(OpClass::Store), 1);
    }
}
