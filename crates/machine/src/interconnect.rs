//! The inter-cluster interconnect model.
//!
//! The paper evaluates exactly one interconnect shape — a small number of
//! shared, non-pipelined buses with a uniform transfer latency — and that
//! shape used to be hard-coded through every layer of this workspace.
//! [`Interconnect`] opens the axis: a machine now carries one of
//!
//! * [`Interconnect::None`] — single-cluster machines; transfers are
//!   impossible and asking for a route panics;
//! * [`Interconnect::SharedBus`] — the paper's model (`pipelined: false`),
//!   plus a pipelined variant where a transfer occupies a bus only for its
//!   issue cycle while still delivering after the full latency;
//! * [`Interconnect::PointToPoint`] — a dedicated pipelined link per
//!   ordered cluster pair with a per-pair latency matrix;
//! * [`Interconnect::Ring`] — a unidirectional ring of non-pipelined
//!   links; a transfer hops cluster to cluster, occupying each link for
//!   the hop latency.
//!
//! Consumers see the interconnect through a uniform *channel* view: the
//! interconnect exposes `channel_count()` reservable channel groups, each
//! with a per-cycle capacity, and a transfer from `a` to `b` follows the
//! deterministic route [`Interconnect::route`] — a sequence of [`Hop`]s,
//! each naming the channel it books, its start offset relative to the
//! transfer's departure, and how many consecutive cycles it occupies the
//! channel. The scheduler's reservation tables, the partitioner's
//! bandwidth bound and the simulator's occupancy audit all work purely in
//! these terms, so a new topology only has to implement this trait-like
//! surface.

use std::fmt;

/// One hop of a transfer's route: which channel it books, when (relative
/// to the transfer's departure cycle) and for how many consecutive cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hop {
    /// Channel group index, in `0..channel_count()`.
    pub channel: usize,
    /// Start offset relative to the transfer's departure cycle.
    pub offset: i64,
    /// Consecutive cycles the hop occupies one link of the channel.
    pub occupancy: i64,
}

/// The inter-cluster interconnect of a [`crate::MachineConfig`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Interconnect {
    /// No interconnect: the single-cluster machines. Transfers are
    /// impossible; [`Interconnect::route`] panics if asked.
    None,
    /// `count` buses shared by every cluster pair, uniform `latency`.
    /// Non-pipelined buses (`pipelined: false`, the paper's model) are
    /// occupied for the whole latency; pipelined buses accept a new
    /// transfer every cycle and only book the departure cycle.
    SharedBus {
        /// Number of buses.
        count: u32,
        /// End-to-end transfer latency in cycles.
        latency: u32,
        /// Whether a bus accepts a new transfer every cycle.
        pipelined: bool,
    },
    /// A dedicated pipelined link per ordered cluster pair. `latency` is
    /// the row-major `n × n` matrix (`latency[from·n + to]`, diagonal 0);
    /// `channels` parallel transfers may depart on each link per cycle.
    PointToPoint {
        /// Parallel transfers each link accepts per cycle.
        channels: u32,
        /// Row-major per-ordered-pair latency matrix, diagonal zero.
        latency: Vec<u32>,
    },
    /// A unidirectional ring: link `i` connects cluster `i` to
    /// `(i + 1) mod n`. A transfer takes `(to − from) mod n` hops, each
    /// occupying one of the `links_per_hop` links of its hop for
    /// `hop_latency` cycles (ring links are non-pipelined).
    Ring {
        /// Latency (and link occupancy) of one hop.
        hop_latency: u32,
        /// Parallel links per hop.
        links_per_hop: u32,
    },
}

impl Interconnect {
    /// The paper's interconnect: `count` shared non-pipelined buses of
    /// uniform `latency`.
    pub fn legacy_bus(count: u32, latency: u32) -> Self {
        Interconnect::SharedBus {
            count,
            latency,
            pipelined: false,
        }
    }

    /// A uniform point-to-point mesh over `n` clusters: every ordered
    /// pair gets a link of `latency`, `channels` transfers per cycle.
    pub fn uniform_point_to_point(n: usize, latency: u32, channels: u32) -> Self {
        let mut m = vec![latency; n * n];
        for i in 0..n {
            m[i * n + i] = 0;
        }
        Interconnect::PointToPoint {
            channels,
            latency: m,
        }
    }

    /// Validates the interconnect against a cluster count, panicking on
    /// inconsistent shapes. [`crate::MachineConfig::custom`] calls this.
    ///
    /// # Panics
    ///
    /// * `None` with more than one cluster, or any other variant with a
    ///   single cluster;
    /// * `SharedBus` with zero buses or zero latency;
    /// * `PointToPoint` with zero channels, a matrix not `n × n`, a
    ///   non-zero diagonal or a zero off-diagonal latency;
    /// * `Ring` with zero hop latency or zero links per hop.
    pub fn validate(&self, nclusters: usize) {
        match self {
            Interconnect::None => assert!(
                nclusters == 1,
                "multi-cluster machines need an interconnect"
            ),
            _ => assert!(
                nclusters > 1,
                "single-cluster machines take Interconnect::None"
            ),
        }
        match self {
            Interconnect::None => {}
            Interconnect::SharedBus { count, latency, .. } => {
                assert!(*count > 0, "need at least one bus");
                assert!(*latency > 0, "bus latency must be positive");
            }
            Interconnect::PointToPoint { channels, latency } => {
                assert!(*channels > 0, "need at least one channel per link");
                assert_eq!(
                    latency.len(),
                    nclusters * nclusters,
                    "point-to-point latency matrix must be n × n"
                );
                for from in 0..nclusters {
                    for to in 0..nclusters {
                        let l = latency[from * nclusters + to];
                        if from == to {
                            assert_eq!(l, 0, "diagonal latency must be zero");
                        } else {
                            assert!(l > 0, "link latency {from}→{to} must be positive");
                        }
                    }
                }
            }
            Interconnect::Ring {
                hop_latency,
                links_per_hop,
            } => {
                assert!(*hop_latency > 0, "ring hop latency must be positive");
                assert!(*links_per_hop > 0, "ring needs at least one link per hop");
            }
        }
    }

    /// Number of reservable channel groups under `nclusters` clusters:
    /// 0 (`None`), 1 (`SharedBus`), `n²` (`PointToPoint`, channel
    /// `from·n + to`) or `n` (`Ring`, channel `i` = link `i → i+1`).
    #[inline]
    pub fn channel_count(&self, nclusters: usize) -> usize {
        match self {
            Interconnect::None => 0,
            Interconnect::SharedBus { .. } => 1,
            Interconnect::PointToPoint { .. } => nclusters * nclusters,
            Interconnect::Ring { .. } => nclusters,
        }
    }

    /// Parallel links of channel group `ch` (its per-cycle capacity).
    ///
    /// # Panics
    ///
    /// Panics on `Interconnect::None` (it has no channels).
    #[inline]
    pub fn channel_capacity(&self, ch: usize) -> u32 {
        let _ = ch;
        match self {
            Interconnect::None => panic!("no interconnect: no channels exist"),
            Interconnect::SharedBus { count, .. } => *count,
            Interconnect::PointToPoint { channels, .. } => *channels,
            Interconnect::Ring { links_per_hop, .. } => *links_per_hop,
        }
    }

    /// End-to-end transfer latency from cluster `from` to `to` (0 when
    /// `from == to`).
    #[inline]
    pub fn latency(&self, from: usize, to: usize, nclusters: usize) -> i64 {
        if from == to {
            return 0;
        }
        match self {
            Interconnect::None => {
                panic!("no interconnect: single-cluster machines move no values")
            }
            Interconnect::SharedBus { latency, .. } => *latency as i64,
            Interconnect::PointToPoint { latency, .. } => latency[from * nclusters + to] as i64,
            Interconnect::Ring { hop_latency, .. } => {
                let hops = (to + nclusters - from) % nclusters;
                hops as i64 * *hop_latency as i64
            }
        }
    }

    /// Parallel transfers that may *depart* from `from` towards `to` in
    /// one cycle: the capacity of the route's first channel, derived
    /// from [`Interconnect::route`] so the two can never drift apart
    /// (0 when `from == to` or there is no interconnect).
    pub fn channels(&self, from: usize, to: usize, nclusters: usize) -> u32 {
        if from == to || matches!(self, Interconnect::None) {
            return 0;
        }
        let first = self
            .route(from, to, nclusters)
            .next()
            .expect("distinct endpoints have a route");
        self.channel_capacity(first.channel)
    }

    /// The deterministic route of a transfer `from → to`: an
    /// allocation-free iterator over the [`Hop`]s to book.
    ///
    /// # Panics
    ///
    /// Panics on `Interconnect::None` (the single-cluster machines must
    /// never book a transfer) or when `from == to`.
    #[inline]
    pub fn route(&self, from: usize, to: usize, nclusters: usize) -> RouteIter {
        assert_ne!(from, to, "a route needs distinct endpoints");
        match self {
            Interconnect::None => {
                panic!("no interconnect: single-cluster machines must never book a transfer")
            }
            Interconnect::SharedBus {
                latency, pipelined, ..
            } => RouteIter::single(Hop {
                channel: 0,
                offset: 0,
                occupancy: if *pipelined { 1 } else { *latency as i64 },
            }),
            Interconnect::PointToPoint { .. } => RouteIter::single(Hop {
                channel: from * nclusters + to,
                offset: 0,
                occupancy: 1,
            }),
            Interconnect::Ring { hop_latency, .. } => RouteIter {
                kind: RouteKind::Ring {
                    from,
                    nclusters,
                    hop_latency: *hop_latency as i64,
                    hops: (to + nclusters - from) % nclusters,
                    next: 0,
                },
            },
        }
    }

    /// The largest cross-cluster latency of the topology — the worst-case
    /// delay a cut dependence can pay. The coarsening edge weights charge
    /// this as the hypothetical cut cost before cluster placements exist.
    pub fn max_latency(&self, nclusters: usize) -> i64 {
        match self {
            Interconnect::None => 0,
            Interconnect::SharedBus { latency, .. } => *latency as i64,
            Interconnect::PointToPoint { latency, .. } => {
                latency.iter().copied().max().unwrap_or(0) as i64
            }
            Interconnect::Ring { hop_latency, .. } => (nclusters as i64 - 1) * *hop_latency as i64,
        }
    }

    /// A short kebab-case tag of the variant, used in reports and errors.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Interconnect::None => "none",
            Interconnect::SharedBus {
                pipelined: false, ..
            } => "bus",
            Interconnect::SharedBus {
                pipelined: true, ..
            } => "pipelined-bus",
            Interconnect::PointToPoint { .. } => "p2p",
            Interconnect::Ring { .. } => "ring",
        }
    }
}

impl fmt::Display for Interconnect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interconnect::None => write!(f, "no interconnect"),
            Interconnect::SharedBus {
                count,
                latency,
                pipelined,
            } => write!(
                f,
                "{count} {}bus(es) lat {latency}",
                if *pipelined { "pipelined " } else { "" }
            ),
            Interconnect::PointToPoint { channels, latency } => {
                let (lo, hi) = latency
                    .iter()
                    .filter(|&&l| l > 0)
                    .fold((u32::MAX, 0u32), |(lo, hi), &l| (lo.min(l), hi.max(l)));
                if lo == hi || lo == u32::MAX {
                    write!(f, "p2p links lat {} ×{channels}", hi)
                } else {
                    write!(f, "p2p links lat {lo}–{hi} ×{channels}")
                }
            }
            Interconnect::Ring {
                hop_latency,
                links_per_hop,
            } => write!(f, "ring hop lat {hop_latency} ×{links_per_hop}"),
        }
    }
}

enum RouteKind {
    Single(Option<Hop>),
    Ring {
        from: usize,
        nclusters: usize,
        hop_latency: i64,
        hops: usize,
        next: usize,
    },
}

/// Allocation-free iterator over the [`Hop`]s of one route (see
/// [`Interconnect::route`]).
pub struct RouteIter {
    kind: RouteKind,
}

impl RouteIter {
    fn single(hop: Hop) -> Self {
        RouteIter {
            kind: RouteKind::Single(Some(hop)),
        }
    }
}

impl Iterator for RouteIter {
    type Item = Hop;

    #[inline]
    fn next(&mut self) -> Option<Hop> {
        match &mut self.kind {
            RouteKind::Single(h) => h.take(),
            RouteKind::Ring {
                from,
                nclusters,
                hop_latency,
                hops,
                next,
            } => {
                if next < hops {
                    let k = *next;
                    *next += 1;
                    Some(Hop {
                        channel: (*from + k) % *nclusters,
                        offset: k as i64 * *hop_latency,
                        occupancy: *hop_latency,
                    })
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_bus_route_matches_legacy_model() {
        let ic = Interconnect::legacy_bus(1, 2);
        ic.validate(2);
        assert_eq!(ic.channel_count(2), 1);
        assert_eq!(ic.channel_capacity(0), 1);
        assert_eq!(ic.latency(0, 1, 2), 2);
        assert_eq!(ic.latency(1, 1, 2), 0);
        let hops: Vec<Hop> = ic.route(0, 1, 2).collect();
        assert_eq!(
            hops,
            vec![Hop {
                channel: 0,
                offset: 0,
                occupancy: 2
            }]
        );
    }

    #[test]
    fn pipelined_bus_books_one_cycle_but_delivers_late() {
        let ic = Interconnect::SharedBus {
            count: 1,
            latency: 3,
            pipelined: true,
        };
        ic.validate(2);
        assert_eq!(ic.latency(0, 1, 2), 3);
        let hops: Vec<Hop> = ic.route(1, 0, 2).collect();
        assert_eq!(hops[0].occupancy, 1);
    }

    #[test]
    fn point_to_point_uses_per_pair_links() {
        let ic = Interconnect::uniform_point_to_point(3, 2, 1);
        ic.validate(3);
        assert_eq!(ic.channel_count(3), 9);
        assert_eq!(ic.latency(0, 2, 3), 2);
        let hops: Vec<Hop> = ic.route(0, 2, 3).collect();
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].channel, 2);
        assert_eq!(hops[0].occupancy, 1);
        // A different pair books a different channel.
        assert_eq!(ic.route(2, 0, 3).next().unwrap().channel, 6);
    }

    #[test]
    fn ring_hops_around() {
        let ic = Interconnect::Ring {
            hop_latency: 2,
            links_per_hop: 1,
        };
        ic.validate(4);
        assert_eq!(ic.channel_count(4), 4);
        // 3 → 1 wraps: hops on links 3 and 0.
        assert_eq!(ic.latency(3, 1, 4), 4);
        let hops: Vec<Hop> = ic.route(3, 1, 4).collect();
        assert_eq!(
            hops,
            vec![
                Hop {
                    channel: 3,
                    offset: 0,
                    occupancy: 2
                },
                Hop {
                    channel: 0,
                    offset: 2,
                    occupancy: 2
                },
            ]
        );
        // Adjacent transfer: one hop.
        assert_eq!(ic.route(0, 1, 4).count(), 1);
    }

    #[test]
    fn max_latency_per_topology() {
        assert_eq!(Interconnect::None.max_latency(1), 0);
        assert_eq!(Interconnect::legacy_bus(2, 3).max_latency(2), 3);
        assert_eq!(
            Interconnect::uniform_point_to_point(4, 2, 1).max_latency(4),
            2
        );
        assert_eq!(
            Interconnect::Ring {
                hop_latency: 2,
                links_per_hop: 1
            }
            .max_latency(4),
            6
        );
    }

    #[test]
    #[should_panic(expected = "never book a transfer")]
    fn none_refuses_routes() {
        Interconnect::None.route(0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "need an interconnect")]
    fn none_requires_single_cluster() {
        Interconnect::None.validate(2);
    }

    #[test]
    #[should_panic(expected = "take Interconnect::None")]
    fn bus_rejects_single_cluster() {
        Interconnect::legacy_bus(1, 1).validate(1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_latency_rejected() {
        Interconnect::legacy_bus(1, 0).validate(2);
    }

    #[test]
    #[should_panic(expected = "n × n")]
    fn p2p_matrix_shape_checked() {
        Interconnect::PointToPoint {
            channels: 1,
            latency: vec![0, 1, 1],
        }
        .validate(2);
    }

    #[test]
    fn display_is_compact() {
        assert!(Interconnect::legacy_bus(1, 2).to_string().contains("bus"));
        assert!(Interconnect::uniform_point_to_point(2, 1, 1)
            .to_string()
            .contains("p2p"));
        assert!(Interconnect::Ring {
            hop_latency: 1,
            links_per_hop: 2
        }
        .to_string()
        .contains("ring"));
    }
}
