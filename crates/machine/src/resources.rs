//! Functional-unit resource kinds.

use std::fmt;

/// The three functional-unit kinds of the paper's machine: integer units,
/// floating-point units and memory ports.
///
/// Each cluster owns a fixed number of units of each kind; an operation
/// occupies one unit of its kind for one cycle (units are fully pipelined).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKind {
    /// Integer ALU.
    IntAlu,
    /// Floating-point ALU.
    FpAlu,
    /// Memory port (load/store issue slot).
    MemPort,
}

impl ResourceKind {
    /// All resource kinds, in a fixed order usable for dense indexing.
    pub const ALL: [ResourceKind; 3] = [
        ResourceKind::IntAlu,
        ResourceKind::FpAlu,
        ResourceKind::MemPort,
    ];

    /// Dense index of this kind within [`ResourceKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            ResourceKind::IntAlu => 0,
            ResourceKind::FpAlu => 1,
            ResourceKind::MemPort => 2,
        }
    }

    /// Inverse of [`ResourceKind::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::IntAlu => "int",
            ResourceKind::FpAlu => "fp",
            ResourceKind::MemPort => "mem",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, k) in ResourceKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(ResourceKind::from_index(i), *k);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ResourceKind::IntAlu.to_string(), "int");
        assert_eq!(ResourceKind::FpAlu.to_string(), "fp");
        assert_eq!(ResourceKind::MemPort.to_string(), "mem");
    }
}
