//! Machine and cluster configuration types.

use crate::interconnect::{Interconnect, RouteIter};
use crate::latency::LatencyModel;
use crate::op::OpClass;
use crate::resources::ResourceKind;
use std::fmt;

/// Resources owned by one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClusterConfig {
    /// Number of integer ALUs.
    pub int_units: u32,
    /// Number of floating-point ALUs.
    pub fp_units: u32,
    /// Number of memory ports.
    pub mem_units: u32,
    /// Number of registers in this cluster's register file.
    pub registers: u32,
}

impl ClusterConfig {
    /// Number of units of the given kind.
    pub fn units(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::IntAlu => self.int_units,
            ResourceKind::FpAlu => self.fp_units,
            ResourceKind::MemPort => self.mem_units,
        }
    }

    /// Total functional units (the cluster's issue width).
    pub fn issue_width(&self) -> u32 {
        self.int_units + self.fp_units + self.mem_units
    }
}

/// A clustered VLIW machine: a set of clusters plus the inter-cluster
/// [`Interconnect`] and the latency model.
///
/// Construct with [`MachineConfig::unified`], [`MachineConfig::two_cluster`],
/// [`MachineConfig::four_cluster`] (the paper's Table 1 presets) or
/// [`MachineConfig::custom`] with any [`Interconnect`] topology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    clusters: Vec<ClusterConfig>,
    interconnect: Interconnect,
    /// Operation latencies.
    pub latencies: LatencyModel,
}

impl MachineConfig {
    /// The unified (single-cluster) 12-issue baseline: 4 integer units,
    /// 4 FP units, 4 memory ports and the whole register file. There is
    /// no interconnect ([`Interconnect::None`]) — a unified machine can
    /// never book a transfer, and asking for one panics.
    pub fn unified(total_registers: u32) -> Self {
        MachineConfig {
            clusters: vec![ClusterConfig {
                int_units: 4,
                fp_units: 4,
                mem_units: 4,
                registers: total_registers,
            }],
            interconnect: Interconnect::None,
            latencies: LatencyModel::default(),
        }
    }

    /// The paper's 2-cluster machine: 2 units of each kind and half the
    /// registers per cluster, on `buses` shared non-pipelined buses of
    /// `bus_latency`.
    ///
    /// # Panics
    ///
    /// Panics if `total_registers` is not divisible by 2 or `buses == 0`.
    pub fn two_cluster(total_registers: u32, buses: u32, bus_latency: u32) -> Self {
        Self::homogeneous(2, (2, 2, 2), total_registers, buses, bus_latency)
    }

    /// The paper's 4-cluster machine: 1 unit of each kind and a quarter of
    /// the registers per cluster, on `buses` shared non-pipelined buses of
    /// `bus_latency`.
    ///
    /// # Panics
    ///
    /// Panics if `total_registers` is not divisible by 4 or `buses == 0`.
    pub fn four_cluster(total_registers: u32, buses: u32, bus_latency: u32) -> Self {
        Self::homogeneous(4, (1, 1, 1), total_registers, buses, bus_latency)
    }

    /// A homogeneous clustered machine with `n` identical clusters on the
    /// paper's shared-bus interconnect.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (single-cluster machines use
    /// [`MachineConfig::unified`]), `buses == 0`, `bus_latency == 0`, or
    /// `total_registers` is not divisible by `n`.
    pub fn homogeneous(
        n: u32,
        units: (u32, u32, u32),
        total_registers: u32,
        buses: u32,
        bus_latency: u32,
    ) -> Self {
        Self::homogeneous_with(
            n,
            units,
            total_registers,
            Interconnect::legacy_bus(buses, bus_latency),
        )
    }

    /// A homogeneous clustered machine with an explicit [`Interconnect`]
    /// topology.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `total_registers` is not divisible by `n`, or
    /// the interconnect fails [`Interconnect::validate`].
    pub fn homogeneous_with(
        n: u32,
        (int_units, fp_units, mem_units): (u32, u32, u32),
        total_registers: u32,
        interconnect: Interconnect,
    ) -> Self {
        assert!(
            n >= 2,
            "homogeneous machines are clustered; use `unified` for one cluster"
        );
        assert_eq!(
            total_registers % n,
            0,
            "registers must divide evenly among clusters"
        );
        interconnect.validate(n as usize);
        MachineConfig {
            clusters: (0..n)
                .map(|_| ClusterConfig {
                    int_units,
                    fp_units,
                    mem_units,
                    registers: total_registers / n,
                })
                .collect(),
            interconnect,
            latencies: LatencyModel::default(),
        }
    }

    /// A fully custom machine.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty or the interconnect is inconsistent
    /// with the cluster count ([`Interconnect::validate`]: single-cluster
    /// machines take [`Interconnect::None`], clustered machines anything
    /// else).
    pub fn custom(
        clusters: Vec<ClusterConfig>,
        interconnect: Interconnect,
        latencies: LatencyModel,
    ) -> Self {
        assert!(!clusters.is_empty(), "need at least one cluster");
        interconnect.validate(clusters.len());
        MachineConfig {
            clusters,
            interconnect,
            latencies,
        }
    }

    /// Replaces the latency model (builder-style).
    pub fn with_latencies(mut self, latencies: LatencyModel) -> Self {
        self.latencies = latencies;
        self
    }

    /// Replaces the interconnect (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the interconnect is inconsistent with the cluster count.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        interconnect.validate(self.clusters.len());
        self.interconnect = interconnect;
        self
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` for the single-cluster baseline.
    pub fn is_unified(&self) -> bool {
        self.clusters.len() == 1
    }

    /// Configuration of cluster `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cluster(&self, i: usize) -> &ClusterConfig {
        &self.clusters[i]
    }

    /// Iterates over the clusters.
    pub fn clusters(&self) -> impl ExactSizeIterator<Item = &ClusterConfig> {
        self.clusters.iter()
    }

    /// The inter-cluster interconnect.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    /// End-to-end transfer latency from cluster `from` to `to` (0 when
    /// `from == to`).
    #[inline]
    pub fn transfer_latency(&self, from: usize, to: usize) -> i64 {
        self.interconnect.latency(from, to, self.clusters.len())
    }

    /// Parallel transfers that may depart `from → to` per cycle.
    #[inline]
    pub fn channels_between(&self, from: usize, to: usize) -> u32 {
        self.interconnect.channels(from, to, self.clusters.len())
    }

    /// Number of reservable interconnect channel groups.
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.interconnect.channel_count(self.clusters.len())
    }

    /// Per-cycle capacity of channel group `ch`.
    #[inline]
    pub fn channel_capacity(&self, ch: usize) -> u32 {
        self.interconnect.channel_capacity(ch)
    }

    /// The deterministic route of a transfer `from → to` (see
    /// [`Interconnect::route`]).
    ///
    /// # Panics
    ///
    /// Panics on single-cluster machines ([`Interconnect::None`]) — they
    /// must never book a transfer — or when `from == to`.
    #[inline]
    pub fn route(&self, from: usize, to: usize) -> RouteIter {
        self.interconnect.route(from, to, self.clusters.len())
    }

    /// The largest cross-cluster transfer latency of the topology.
    pub fn max_transfer_latency(&self) -> i64 {
        self.interconnect.max_latency(self.clusters.len())
    }

    /// The full pairwise transfer-latency table, row-major
    /// (`table[from · n + to]`, diagonal 0). Hot paths that consult
    /// latencies per candidate (the scheduler's quick-reject, the
    /// evaluator's cut refresh) resolve the topology once through this
    /// table instead of dispatching per query.
    pub fn transfer_latency_table(&self) -> Vec<i64> {
        let n = self.clusters.len();
        let mut table = vec![0i64; n * n];
        for from in 0..n {
            for to in 0..n {
                if from != to {
                    table[from * n + to] = self.transfer_latency(from, to);
                }
            }
        }
        table
    }

    /// Total issue width across clusters.
    pub fn issue_width(&self) -> u32 {
        self.clusters.iter().map(ClusterConfig::issue_width).sum()
    }

    /// Total units of `kind` across clusters.
    pub fn total_units(&self, kind: ResourceKind) -> u32 {
        self.clusters.iter().map(|c| c.units(kind)).sum()
    }

    /// Total registers across clusters.
    pub fn total_registers(&self) -> u32 {
        self.clusters.iter().map(|c| c.registers).sum()
    }

    /// Latency of an operation class under this machine's latency model.
    pub fn latency(&self, op: OpClass) -> u32 {
        self.latencies.latency(op)
    }

    /// A short identifier used in reports, derived from the shape:
    /// `u-r64` (unified), `c2r32b1l1` (2 clusters, 32 registers, 1 shared
    /// bus of latency 1), `c2r32pb1l2` (pipelined bus),
    /// `c4r64ring2x1` (ring, hop latency 2, 1 link per hop),
    /// `c4r64p2p1x1` (uniform point-to-point, latency 1, 1 channel) or
    /// `c4r64p2p1-3x1` for a non-uniform latency matrix.
    pub fn short_name(&self) -> String {
        if self.is_unified() {
            return format!("u-r{}", self.total_registers());
        }
        let head = format!("c{}r{}", self.cluster_count(), self.total_registers());
        match &self.interconnect {
            Interconnect::None => unreachable!("clustered machines have an interconnect"),
            Interconnect::SharedBus {
                count,
                latency,
                pipelined,
            } => format!(
                "{head}{}{count}l{latency}",
                if *pipelined { "pb" } else { "b" }
            ),
            Interconnect::Ring {
                hop_latency,
                links_per_hop,
            } => format!("{head}ring{hop_latency}x{links_per_hop}"),
            Interconnect::PointToPoint { channels, latency } => {
                let (lo, hi) = latency
                    .iter()
                    .filter(|&&l| l > 0)
                    .fold((u32::MAX, 0u32), |(lo, hi), &l| (lo.min(l), hi.max(l)));
                if lo == hi || lo == u32::MAX {
                    format!("{head}p2p{hi}x{channels}")
                } else {
                    format!("{head}p2p{lo}-{hi}x{channels}")
                }
            }
        }
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unified() {
            let c = &self.clusters[0];
            write!(
                f,
                "unified 12-issue ({}i/{}f/{}m, {} regs)",
                c.int_units, c.fp_units, c.mem_units, c.registers
            )
        } else {
            let c = &self.clusters[0];
            write!(
                f,
                "{} clusters × ({}i/{}f/{}m, {} regs), {}",
                self.clusters.len(),
                c.int_units,
                c.fp_units,
                c.mem_units,
                c.registers,
                self.interconnect
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_preset() {
        let m = MachineConfig::unified(64);
        assert!(m.is_unified());
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.total_registers(), 64);
        assert_eq!(m.total_units(ResourceKind::FpAlu), 4);
        assert_eq!(m.short_name(), "u-r64");
        // The wart is gone: no placeholder bus, no channels at all.
        assert_eq!(*m.interconnect(), Interconnect::None);
        assert_eq!(m.channel_count(), 0);
        assert_eq!(m.max_transfer_latency(), 0);
    }

    #[test]
    #[should_panic(expected = "never book a transfer")]
    fn unified_machine_refuses_transfers() {
        MachineConfig::unified(32).route(0, 1);
    }

    #[test]
    fn two_cluster_preset() {
        let m = MachineConfig::two_cluster(32, 1, 1);
        assert_eq!(m.cluster_count(), 2);
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.cluster(1).registers, 16);
        assert_eq!(m.total_units(ResourceKind::IntAlu), 4);
        assert_eq!(m.short_name(), "c2r32b1l1");
        assert_eq!(m.transfer_latency(0, 1), 1);
        assert_eq!(m.channel_count(), 1);
    }

    #[test]
    fn four_cluster_preset() {
        let m = MachineConfig::four_cluster(64, 1, 2);
        assert_eq!(m.cluster_count(), 4);
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.cluster(3).registers, 16);
        assert_eq!(m.cluster(0).units(ResourceKind::MemPort), 1);
        assert_eq!(m.short_name(), "c4r64b1l2");
    }

    #[test]
    fn topology_short_names() {
        let ring = MachineConfig::homogeneous_with(
            4,
            (1, 1, 1),
            64,
            Interconnect::Ring {
                hop_latency: 2,
                links_per_hop: 1,
            },
        );
        assert_eq!(ring.short_name(), "c4r64ring2x1");
        assert_eq!(ring.transfer_latency(0, 3), 6);
        assert_eq!(ring.transfer_latency(3, 0), 2);

        let p2p = MachineConfig::homogeneous_with(
            4,
            (1, 1, 1),
            64,
            Interconnect::uniform_point_to_point(4, 1, 1),
        );
        assert_eq!(p2p.short_name(), "c4r64p2p1x1");
        assert_eq!(p2p.channel_count(), 16);

        let pb = MachineConfig::homogeneous_with(
            2,
            (2, 2, 2),
            32,
            Interconnect::SharedBus {
                count: 1,
                latency: 2,
                pipelined: true,
            },
        );
        assert_eq!(pb.short_name(), "c2r32pb1l2");
        assert_eq!(pb.route(0, 1).next().unwrap().occupancy, 1);
    }

    #[test]
    fn all_presets_have_equal_total_resources() {
        let u = MachineConfig::unified(32);
        let c2 = MachineConfig::two_cluster(32, 1, 1);
        let c4 = MachineConfig::four_cluster(32, 1, 1);
        for kind in ResourceKind::ALL {
            assert_eq!(u.total_units(kind), c2.total_units(kind));
            assert_eq!(u.total_units(kind), c4.total_units(kind));
        }
        assert_eq!(u.total_registers(), c2.total_registers());
        assert_eq!(u.total_registers(), c4.total_registers());
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn registers_must_divide() {
        MachineConfig::four_cluster(30, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one bus")]
    fn buses_required() {
        MachineConfig::two_cluster(32, 0, 1);
    }

    #[test]
    #[should_panic(expected = "need an interconnect")]
    fn custom_multi_cluster_needs_interconnect() {
        let c = ClusterConfig {
            int_units: 1,
            fp_units: 1,
            mem_units: 1,
            registers: 8,
        };
        MachineConfig::custom(vec![c, c], Interconnect::None, LatencyModel::default());
    }

    #[test]
    fn custom_machine_and_display() {
        let m = MachineConfig::custom(
            vec![
                ClusterConfig {
                    int_units: 3,
                    fp_units: 1,
                    mem_units: 2,
                    registers: 24,
                },
                ClusterConfig {
                    int_units: 1,
                    fp_units: 3,
                    mem_units: 2,
                    registers: 40,
                },
            ],
            Interconnect::legacy_bus(2, 2),
            LatencyModel::default(),
        );
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.total_registers(), 64);
        assert!(!m.is_unified());
        assert!(m.to_string().contains("2 clusters"));
        assert!(m.to_string().contains("bus"));
        assert!(MachineConfig::unified(32).to_string().contains("unified"));
    }

    #[test]
    fn with_latencies_overrides() {
        let m = MachineConfig::unified(32).with_latencies(LatencyModel {
            load: 4,
            ..LatencyModel::default()
        });
        assert_eq!(m.latency(OpClass::Load), 4);
    }

    #[test]
    fn with_interconnect_swaps_topology() {
        let m = MachineConfig::two_cluster(32, 1, 1).with_interconnect(Interconnect::Ring {
            hop_latency: 1,
            links_per_hop: 1,
        });
        assert_eq!(m.short_name(), "c2r32ring1x1");
    }

    #[test]
    fn channels_between_matches_first_hop_capacity() {
        // `channels_between` is the departure bandwidth of a pair: for
        // every topology it must equal the capacity of the route's first
        // channel.
        let machines = [
            MachineConfig::two_cluster(32, 2, 1),
            MachineConfig::homogeneous_with(
                4,
                (1, 1, 1),
                64,
                Interconnect::Ring {
                    hop_latency: 2,
                    links_per_hop: 3,
                },
            ),
            MachineConfig::homogeneous_with(
                4,
                (1, 1, 1),
                64,
                Interconnect::uniform_point_to_point(4, 1, 2),
            ),
        ];
        for m in &machines {
            for from in 0..m.cluster_count() {
                for to in 0..m.cluster_count() {
                    if from == to {
                        continue;
                    }
                    let first = m.route(from, to).next().expect("non-empty route");
                    assert_eq!(
                        m.channels_between(from, to),
                        m.channel_capacity(first.channel),
                        "{} {from}->{to}",
                        m.short_name()
                    );
                }
            }
        }
        assert_eq!(MachineConfig::unified(32).channels_between(0, 0), 0);
    }
}
