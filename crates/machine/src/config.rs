//! Machine and cluster configuration types.

use crate::latency::LatencyModel;
use crate::op::OpClass;
use crate::resources::ResourceKind;
use std::fmt;

/// Resources owned by one cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClusterConfig {
    /// Number of integer ALUs.
    pub int_units: u32,
    /// Number of floating-point ALUs.
    pub fp_units: u32,
    /// Number of memory ports.
    pub mem_units: u32,
    /// Number of registers in this cluster's register file.
    pub registers: u32,
}

impl ClusterConfig {
    /// Number of units of the given kind.
    pub fn units(&self, kind: ResourceKind) -> u32 {
        match kind {
            ResourceKind::IntAlu => self.int_units,
            ResourceKind::FpAlu => self.fp_units,
            ResourceKind::MemPort => self.mem_units,
        }
    }

    /// Total functional units (the cluster's issue width).
    pub fn issue_width(&self) -> u32 {
        self.int_units + self.fp_units + self.mem_units
    }
}

/// A clustered VLIW machine: a set of clusters plus the inter-cluster
/// interconnect and the latency model.
///
/// Construct with [`MachineConfig::unified`], [`MachineConfig::two_cluster`],
/// [`MachineConfig::four_cluster`] (the paper's Table 1 presets) or
/// [`MachineConfig::custom`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineConfig {
    clusters: Vec<ClusterConfig>,
    /// Number of inter-cluster buses.
    pub buses: u32,
    /// Latency, in cycles, of one inter-cluster transfer. The bus is
    /// non-pipelined: a transfer occupies a bus for this many cycles.
    pub bus_latency: u32,
    /// Operation latencies.
    pub latencies: LatencyModel,
}

impl MachineConfig {
    /// The unified (single-cluster) 12-issue baseline: 4 integer units,
    /// 4 FP units, 4 memory ports and the whole register file.
    ///
    /// The bus fields are irrelevant (there are no inter-cluster
    /// communications) and set to 1/1.
    pub fn unified(total_registers: u32) -> Self {
        MachineConfig {
            clusters: vec![ClusterConfig {
                int_units: 4,
                fp_units: 4,
                mem_units: 4,
                registers: total_registers,
            }],
            buses: 1,
            bus_latency: 1,
            latencies: LatencyModel::default(),
        }
    }

    /// The paper's 2-cluster machine: 2 units of each kind and half the
    /// registers per cluster.
    ///
    /// # Panics
    ///
    /// Panics if `total_registers` is not divisible by 2 or `buses == 0`.
    pub fn two_cluster(total_registers: u32, buses: u32, bus_latency: u32) -> Self {
        Self::homogeneous(2, (2, 2, 2), total_registers, buses, bus_latency)
    }

    /// The paper's 4-cluster machine: 1 unit of each kind and a quarter of
    /// the registers per cluster.
    ///
    /// # Panics
    ///
    /// Panics if `total_registers` is not divisible by 4 or `buses == 0`.
    pub fn four_cluster(total_registers: u32, buses: u32, bus_latency: u32) -> Self {
        Self::homogeneous(4, (1, 1, 1), total_registers, buses, bus_latency)
    }

    /// A homogeneous clustered machine with `n` identical clusters.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `buses == 0`, `bus_latency == 0`, or
    /// `total_registers` is not divisible by `n`.
    pub fn homogeneous(
        n: u32,
        (int_units, fp_units, mem_units): (u32, u32, u32),
        total_registers: u32,
        buses: u32,
        bus_latency: u32,
    ) -> Self {
        assert!(n > 0, "need at least one cluster");
        assert!(buses > 0, "need at least one bus");
        assert!(bus_latency > 0, "bus latency must be positive");
        assert_eq!(
            total_registers % n,
            0,
            "registers must divide evenly among clusters"
        );
        MachineConfig {
            clusters: (0..n)
                .map(|_| ClusterConfig {
                    int_units,
                    fp_units,
                    mem_units,
                    registers: total_registers / n,
                })
                .collect(),
            buses,
            bus_latency,
            latencies: LatencyModel::default(),
        }
    }

    /// A fully custom machine.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is empty, or if a multi-cluster machine has
    /// `buses == 0` or `bus_latency == 0`.
    pub fn custom(
        clusters: Vec<ClusterConfig>,
        buses: u32,
        bus_latency: u32,
        latencies: LatencyModel,
    ) -> Self {
        assert!(!clusters.is_empty(), "need at least one cluster");
        if clusters.len() > 1 {
            assert!(buses > 0, "multi-cluster machines need a bus");
            assert!(bus_latency > 0, "bus latency must be positive");
        }
        MachineConfig {
            clusters,
            buses,
            bus_latency,
            latencies,
        }
    }

    /// Replaces the latency model (builder-style).
    pub fn with_latencies(mut self, latencies: LatencyModel) -> Self {
        self.latencies = latencies;
        self
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` for the single-cluster baseline.
    pub fn is_unified(&self) -> bool {
        self.clusters.len() == 1
    }

    /// Configuration of cluster `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cluster(&self, i: usize) -> &ClusterConfig {
        &self.clusters[i]
    }

    /// Iterates over the clusters.
    pub fn clusters(&self) -> impl ExactSizeIterator<Item = &ClusterConfig> {
        self.clusters.iter()
    }

    /// Total issue width across clusters.
    pub fn issue_width(&self) -> u32 {
        self.clusters.iter().map(ClusterConfig::issue_width).sum()
    }

    /// Total units of `kind` across clusters.
    pub fn total_units(&self, kind: ResourceKind) -> u32 {
        self.clusters.iter().map(|c| c.units(kind)).sum()
    }

    /// Total registers across clusters.
    pub fn total_registers(&self) -> u32 {
        self.clusters.iter().map(|c| c.registers).sum()
    }

    /// Latency of an operation class under this machine's latency model.
    pub fn latency(&self, op: OpClass) -> u32 {
        self.latencies.latency(op)
    }

    /// A short identifier like `c2r32b1l1` (2 clusters, 32 registers, 1 bus
    /// of latency 1) or `u-r64` for the unified machine, used in reports.
    pub fn short_name(&self) -> String {
        if self.is_unified() {
            format!("u-r{}", self.total_registers())
        } else {
            format!(
                "c{}r{}b{}l{}",
                self.cluster_count(),
                self.total_registers(),
                self.buses,
                self.bus_latency
            )
        }
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unified() {
            let c = &self.clusters[0];
            write!(
                f,
                "unified 12-issue ({}i/{}f/{}m, {} regs)",
                c.int_units, c.fp_units, c.mem_units, c.registers
            )
        } else {
            let c = &self.clusters[0];
            write!(
                f,
                "{} clusters × ({}i/{}f/{}m, {} regs), {} bus(es) lat {}",
                self.clusters.len(),
                c.int_units,
                c.fp_units,
                c.mem_units,
                c.registers,
                self.buses,
                self.bus_latency
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unified_preset() {
        let m = MachineConfig::unified(64);
        assert!(m.is_unified());
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.total_registers(), 64);
        assert_eq!(m.total_units(ResourceKind::FpAlu), 4);
        assert_eq!(m.short_name(), "u-r64");
    }

    #[test]
    fn two_cluster_preset() {
        let m = MachineConfig::two_cluster(32, 1, 1);
        assert_eq!(m.cluster_count(), 2);
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.cluster(1).registers, 16);
        assert_eq!(m.total_units(ResourceKind::IntAlu), 4);
        assert_eq!(m.short_name(), "c2r32b1l1");
    }

    #[test]
    fn four_cluster_preset() {
        let m = MachineConfig::four_cluster(64, 1, 2);
        assert_eq!(m.cluster_count(), 4);
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.cluster(3).registers, 16);
        assert_eq!(m.cluster(0).units(ResourceKind::MemPort), 1);
        assert_eq!(m.short_name(), "c4r64b1l2");
    }

    #[test]
    fn all_presets_have_equal_total_resources() {
        let u = MachineConfig::unified(32);
        let c2 = MachineConfig::two_cluster(32, 1, 1);
        let c4 = MachineConfig::four_cluster(32, 1, 1);
        for kind in ResourceKind::ALL {
            assert_eq!(u.total_units(kind), c2.total_units(kind));
            assert_eq!(u.total_units(kind), c4.total_units(kind));
        }
        assert_eq!(u.total_registers(), c2.total_registers());
        assert_eq!(u.total_registers(), c4.total_registers());
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn registers_must_divide() {
        MachineConfig::four_cluster(30, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one bus")]
    fn buses_required() {
        MachineConfig::two_cluster(32, 0, 1);
    }

    #[test]
    fn custom_machine_and_display() {
        let m = MachineConfig::custom(
            vec![
                ClusterConfig {
                    int_units: 3,
                    fp_units: 1,
                    mem_units: 2,
                    registers: 24,
                },
                ClusterConfig {
                    int_units: 1,
                    fp_units: 3,
                    mem_units: 2,
                    registers: 40,
                },
            ],
            2,
            2,
            LatencyModel::default(),
        );
        assert_eq!(m.issue_width(), 12);
        assert_eq!(m.total_registers(), 64);
        assert!(!m.is_unified());
        assert!(m.to_string().contains("2 clusters"));
        assert!(MachineConfig::unified(32).to_string().contains("unified"));
    }

    #[test]
    fn with_latencies_overrides() {
        let m = MachineConfig::unified(32).with_latencies(LatencyModel {
            load: 4,
            ..LatencyModel::default()
        });
        assert_eq!(m.latency(OpClass::Load), 4);
    }
}
