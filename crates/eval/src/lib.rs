//! Experiment harness reproducing every table and figure of the paper.
//!
//! * [`run`] — schedule one program (a set of innermost loops) on one
//!   machine with one algorithm, measuring aggregate IPC and the CPU time
//!   spent computing the schedules;
//! * [`figures`] — Figure 2 (1 bus, latency 1) and Figure 3 (1 bus,
//!   latency 2): IPC per SPECfp95 program and average, bars = unified /
//!   URACAM / Fixed / GP;
//! * [`tables`] — Table 1 (the configuration matrix) and Table 2 (average
//!   scheduling CPU time per algorithm and configuration);
//! * [`variants`] — the same aggregation opened to arbitrary
//!   [`gpsched_sched::AlgorithmSpec`] lists, so policy variants
//!   (`gp:norepart`, `uracam:greedy-merit`, …) get figures too;
//! * [`stress`] — the workload axis opened the same way: the whole spec
//!   catalog over generated synthetic corpora (one per `workloads::synth`
//!   preset), every unit validated by the conformance audit;
//! * [`portfolio`] — the selection axis: feature-guided `portfolio`
//!   against every fixed catalog spec over the preset corpora *and*
//!   SPECfp95, sim-audited, with an exact aggregate dominance check;
//! * [`topologies`] — the machine axis opened too: the SPECfp95 set on
//!   one reference machine per interconnect topology (shared bus,
//!   pipelined bus, ring, point-to-point);
//! * [`profile`] — a traced serial sweep (cache off, like Table 2)
//!   reduced to per-phase self-time: where the scheduling wall clock
//!   actually goes, layer by layer;
//! * [`report`] — plain-text and Markdown renderers, including the
//!   shape checks recorded in `EXPERIMENTS.md`.
//!
//! The Figure 2/3 and Table 2 sweeps execute through the
//! [`gpsched_engine`] batch executor, so `reproduce` uses every CPU the
//! host offers (Table 2 disables the engine's memo cache to keep its
//! timing metric honest).
//!
//! Run `cargo run --release -p gpsched-eval --bin reproduce -- all` to
//! regenerate everything.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod portfolio;
pub mod profile;
pub mod report;
pub mod run;
pub mod stress;
pub mod tables;
pub mod topologies;
pub mod variants;

pub use figures::{figure2, figure3, FigureRow, FigureSeries};
pub use portfolio::{portfolio_report, PortfolioReport, PortfolioRow};
pub use profile::{profile_report, profile_report_on, ProfileReport};
pub use run::{run_program, ProgramRun};
pub use stress::{stress_report, StressReport, StressRow};
pub use tables::{table2, Table2Row};
pub use topologies::{default_topology_report, topology_report, TopologyReport, TopologyRow};
pub use variants::{series_for_specs, VariantRow, VariantSeries};
