//! Stress report: every algorithm spec over generated synthetic corpora,
//! simulator-audited.
//!
//! The paper's evaluation is frozen at the SPECfp95 loop suite; this
//! report opens the workload axis the way `variants` opened the
//! algorithm axis. Each generator preset (`recurrence-heavy`,
//! `wide-ilp`, `mem-bound`, …) contributes a seeded corpus; every
//! (preset, machine, spec) cell aggregates IPC exactly like the paper
//! aggregates whole benchmarks, and every underlying unit passes through
//! the conformance audit ([`gpsched_engine::conformance`]) — so the
//! numbers in the table are backed by cycle-accurate replay, not just
//! the scheduler's own accounting.

use gpsched_engine::conformance::{audit_unit, conformance_corpus};
use gpsched_machine::MachineConfig;
use gpsched_sched::AlgorithmSpec;

/// One (preset, machine) row of the stress table.
#[derive(Clone, Debug)]
pub struct StressRow {
    /// Generator preset name.
    pub preset: String,
    /// Machine short name.
    pub machine: String,
    /// Aggregate IPC per spec, aligned with [`StressReport::specs`].
    pub ipc: Vec<f64>,
    /// Largest `II / MII` ratio observed in the row (1.0 = every loop
    /// scheduled at its lower bound).
    pub worst_ii_over_mii: f64,
}

/// The full stress report.
#[derive(Clone, Debug)]
pub struct StressReport {
    /// Display name of every spec, in column order.
    pub specs: Vec<String>,
    /// Per-(preset, machine) rows.
    pub rows: Vec<StressRow>,
    /// Total generated loops.
    pub loops: usize,
    /// Units audited (loops × machines × specs).
    pub audited: usize,
    /// Units that fell back to list scheduling.
    pub fallbacks: usize,
    /// Units whose schedule spilled at least one value.
    pub spilled: usize,
    /// Audit failures, as `loop / machine / spec: reason` lines (empty
    /// when the catalog conforms — the expected state).
    pub failures: Vec<String>,
}

/// Runs the stress sweep: `budget` loops (spread over every preset,
/// seeded from `base_seed`) × `machines` × `specs`, each unit audited.
pub fn stress_report(
    budget: usize,
    base_seed: u64,
    machines: &[MachineConfig],
    specs: &[AlgorithmSpec],
) -> StressReport {
    let corpus = conformance_corpus(budget, base_seed);
    let spec_names: Vec<String> = specs.iter().map(|s| s.name()).collect();
    let mut rows = Vec::new();
    let mut audited = 0usize;
    let mut fallbacks = 0usize;
    let mut spilled = 0usize;
    let mut failures = Vec::new();

    let mut presets: Vec<&str> = Vec::new();
    for case in &corpus {
        if !presets.contains(&case.preset) {
            presets.push(case.preset);
        }
    }
    for preset in &presets {
        let cases: Vec<_> = corpus.iter().filter(|c| c.preset == *preset).collect();
        for machine in machines {
            let mut ipc = Vec::with_capacity(specs.len());
            let mut worst = 1.0f64;
            for spec in specs {
                let (mut work, mut cycles) = (0u128, 0u128);
                for case in &cases {
                    match audit_unit(&case.ddg, machine, *spec) {
                        Ok(a) => {
                            work += a.ops as u128 * a.trips as u128;
                            cycles += a.cycles as u128;
                            fallbacks += usize::from(a.fallback);
                            spilled += usize::from(a.spills > 0);
                            if !a.fallback {
                                worst = worst.max(a.ii as f64 / a.mii as f64);
                            }
                        }
                        Err(e) => failures.push(format!(
                            "{} / {} / {spec}: {e}",
                            case.ddg.name(),
                            machine.short_name()
                        )),
                    }
                    audited += 1;
                }
                ipc.push(if cycles == 0 {
                    0.0
                } else {
                    work as f64 / cycles as f64
                });
            }
            rows.push(StressRow {
                preset: preset.to_string(),
                machine: machine.short_name(),
                ipc,
                worst_ii_over_mii: worst,
            });
        }
    }
    StressReport {
        specs: spec_names,
        rows,
        loops: corpus.len(),
        audited,
        fallbacks,
        spilled,
        failures,
    }
}

impl StressReport {
    /// Plain-text rendering of the table plus the audit summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self.specs.iter().map(|s| s.len().max(7)).collect();
        out.push_str(&format!("{:<18} {:<12}", "preset", "machine"));
        for (s, w) in self.specs.iter().zip(&widths) {
            out.push_str(&format!(" {s:>w$}"));
        }
        out.push_str("  worst II/MII\n");
        for row in &self.rows {
            out.push_str(&format!("{:<18} {:<12}", row.preset, row.machine));
            for (v, w) in row.ipc.iter().zip(&widths) {
                out.push_str(&format!(" {v:>w$.3}"));
            }
            out.push_str(&format!("  {:>12.2}\n", row.worst_ii_over_mii));
        }
        out.push_str(&format!(
            "\n{} loops, {} units audited — {} list fallbacks, {} spilled units, {} audit failures\n",
            self.loops,
            self.audited,
            self.fallbacks,
            self.spilled,
            self.failures.len()
        ));
        for f in &self.failures {
            out.push_str(&format!("  FAIL {f}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_stress_report_is_clean_and_renders() {
        let machines = [MachineConfig::two_cluster(32, 1, 1)];
        let specs: Vec<AlgorithmSpec> = ["gp", "list"]
            .iter()
            .map(|s| AlgorithmSpec::parse(s).expect("parses"))
            .collect();
        let r = stress_report(12, 3, &machines, &specs);
        assert_eq!(r.loops, 12);
        assert_eq!(r.audited, 12 * 2);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert_eq!(r.rows.len(), 6); // 6 presets × 1 machine
        assert!(r.rows.iter().all(|row| row.ipc.iter().all(|&x| x > 0.0)));
        let text = r.render();
        assert!(text.contains("recurrence-heavy"));
        assert!(text.contains("0 audit failures"));
    }
}
