//! Variant figures: IPC per program for an *arbitrary* list of algorithm
//! specs.
//!
//! Figures 2/3 ([`crate::figures`]) reproduce the paper's fixed bar sets;
//! this module opens the same aggregation to any [`AlgorithmSpec`] list,
//! so policy variants (`gp:norepart`, `uracam:greedy-merit`, …) land in
//! figures and tables exactly like the paper's algorithms.

use gpsched_engine::{aggregate_by_group, run_sweep, JobSpec, SweepOptions};
use gpsched_machine::MachineConfig;
use gpsched_sched::AlgorithmSpec;
use gpsched_workloads::Program;

/// One program's bars in a variant figure: one IPC per spec, in the
/// series' spec order.
#[derive(Clone, Debug)]
pub struct VariantRow {
    /// Program name (or `"average"`).
    pub program: String,
    /// IPC per algorithm spec, aligned with [`VariantSeries::specs`].
    pub ipc: Vec<f64>,
}

/// One sub-graph of a variant figure: a machine with one IPC column per
/// algorithm spec.
#[derive(Clone, Debug)]
pub struct VariantSeries {
    /// Machine short name.
    pub machine: String,
    /// Display name of every spec, in column order.
    pub specs: Vec<String>,
    /// Per-program rows followed by the `"average"` row.
    pub rows: Vec<VariantRow>,
}

impl VariantSeries {
    /// The average row.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn average(&self) -> &VariantRow {
        self.rows.last().expect("series has an average row")
    }

    /// Average-IPC ratio of spec column `a` over spec column `b` (e.g.
    /// `gp` over `gp:norepart` to price selective re-partitioning).
    ///
    /// # Panics
    ///
    /// Panics if either name is not a column of this series.
    pub fn speedup(&self, a: &str, b: &str) -> f64 {
        let col = |name: &str| {
            self.specs
                .iter()
                .position(|s| s == name)
                .unwrap_or_else(|| panic!("spec `{name}` not in series"))
        };
        let avg = self.average();
        avg.ipc[col(a)] / avg.ipc[col(b)]
    }
}

/// Builds one variant series: `programs` on `machine` under every spec in
/// `specs`, aggregated per program exactly like the paper's figures
/// (`Σ ops·trips / Σ cycles`), through the engine executor.
pub fn series_for_specs(
    programs: &[Program],
    machine: &MachineConfig,
    specs: &[AlgorithmSpec],
) -> VariantSeries {
    let job = JobSpec::new()
        .programs(programs)
        .machine(machine.clone())
        .algorithms(specs.iter().copied());
    let agg = aggregate_by_group(&run_sweep(&job, &SweepOptions::default(), None).records);
    let names: Vec<String> = specs.iter().map(AlgorithmSpec::name).collect();

    let ipc_of = |group: &str, algo: &str| -> f64 {
        agg.iter()
            .find(|a| a.group == group && a.algorithm == algo)
            .map(|a| a.ipc)
            .expect("sweep covers every (program, spec)")
    };
    let mut rows: Vec<VariantRow> = programs
        .iter()
        .map(|p| VariantRow {
            program: p.name.to_string(),
            ipc: names.iter().map(|n| ipc_of(p.name, n)).collect(),
        })
        .collect();
    let n = rows.len() as f64;
    let avg = VariantRow {
        program: "average".to_string(),
        ipc: (0..names.len())
            .map(|i| rows.iter().map(|r| r.ipc[i]).sum::<f64>() / n)
            .collect(),
    };
    rows.push(avg);
    VariantSeries {
        machine: machine.short_name(),
        specs: names,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::kernels;

    fn mini_suite() -> Vec<Program> {
        vec![
            Program {
                name: "alpha",
                loops: vec![kernels::daxpy(200), kernels::stencil5(150)],
            },
            Program {
                name: "beta",
                loops: vec![kernels::dot_product(300), kernels::fir(100, 6)],
            },
        ]
    }

    #[test]
    fn variant_series_covers_every_spec_column() {
        let specs = [
            AlgorithmSpec::parse("gp").unwrap(),
            AlgorithmSpec::GP_NOREPART,
            AlgorithmSpec::URACAM_GREEDY,
        ];
        let m = MachineConfig::four_cluster(32, 1, 2);
        let s = series_for_specs(&mini_suite(), &m, &specs);
        assert_eq!(s.specs, vec!["GP", "GP:norepart", "URACAM:greedy-merit"]);
        assert_eq!(s.rows.len(), 3); // 2 programs + average
        for r in &s.rows {
            assert_eq!(r.ipc.len(), 3);
            assert!(r.ipc.iter().all(|&x| x > 0.0), "{}", r.program);
        }
        // The re-partitioning ablation ratio is well-defined and near 1
        // (the direction is corpus-dependent — see DESIGN.md §7).
        let ratio = s.speedup("GP", "GP:norepart");
        assert!(ratio.is_finite() && ratio > 0.5 && ratio < 2.0, "{ratio}");
    }

    #[test]
    fn variant_column_matches_legacy_figure_path() {
        // The bare-GP column of a variant series must equal the GP bar of
        // the legacy figure series: same engine, same aggregation.
        let suite = mini_suite();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let specs = [AlgorithmSpec::parse("gp").unwrap()];
        let v = series_for_specs(&suite, &m, &specs);
        let legacy = crate::figures::series_for(&suite, &m, "check");
        for (vr, lr) in v.rows.iter().zip(&legacy.rows) {
            assert_eq!(vr.program, lr.program);
            assert!((vr.ipc[0] - lr.gp).abs() < 1e-12, "{}", vr.program);
        }
    }
}
