//! Text and Markdown renderers for the reproduced tables and figures.

use crate::figures::FigureSeries;
use crate::tables::Table2Row;
use std::fmt::Write as _;

/// Renders Table 1 (the configuration matrix).
pub fn render_table1(rows: &[(String, String)]) -> String {
    let mut out = String::from("Table 1 — machine configurations\n");
    out.push_str(&format!("{:<12} {}\n", "name", "shape"));
    for (name, shape) in rows {
        let _ = writeln!(out, "{name:<12} {shape}");
    }
    out
}

/// Renders one figure (a set of per-configuration series) as text bars.
pub fn render_figure(title: &str, series: &[FigureSeries]) -> String {
    let mut out = format!("{title}\n");
    for s in series {
        let _ = writeln!(out, "\n[{}] {}", s.machine, s.title);
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8} {:>8}",
            "program", "unified", "URACAM", "Fixed", "GP"
        );
        for r in &s.rows {
            let _ = writeln!(
                out,
                "{:<10} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                r.program, r.unified, r.uracam, r.fixed, r.gp
            );
        }
        let _ = writeln!(
            out,
            "GP speedup over URACAM (average): {:+.1}%",
            (s.gp_speedup_over_uracam() - 1.0) * 100.0
        );
    }
    out
}

/// Renders a variant figure: one column per algorithm spec.
pub fn render_variants(title: &str, series: &[crate::variants::VariantSeries]) -> String {
    let mut out = format!("{title}\n");
    for s in series {
        let _ = writeln!(out, "\n[{}]", s.machine);
        let width: Vec<usize> = s.specs.iter().map(|c| c.len().max(8)).collect();
        let _ = write!(out, "{:<10}", "program");
        for (c, w) in s.specs.iter().zip(&width) {
            let _ = write!(out, " {c:>w$}");
        }
        out.push('\n');
        for r in &s.rows {
            let _ = write!(out, "{:<10}", r.program);
            for (v, w) in r.ipc.iter().zip(&width) {
                let _ = write!(out, " {v:>w$.3}");
            }
            out.push('\n');
        }
    }
    out
}

/// Renders Table 2 (average scheduling CPU time).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out =
        String::from("Table 2 — average CPU time to compute the schedule (ms per benchmark)\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>14}\n",
        "machine", "URACAM", "Fixed", "GP", "URACAM slowdn"
    ));
    for r in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10.2} {:>10.2} {:>10.2} {:>13.1}x",
            r.machine,
            r.uracam_ms,
            r.fixed_ms,
            r.gp_ms,
            r.uracam_slowdown()
        );
    }
    out
}

/// Markdown summary written into `EXPERIMENTS.md` by `reproduce all`:
/// paper-vs-measured for every figure and table, with the shape checks,
/// plus the per-phase scheduling profile.
pub fn experiments_markdown(
    fig2: &[FigureSeries],
    fig3: &[FigureSeries],
    t2: &[Table2Row],
    profile: &crate::profile::ProfileReport,
) -> String {
    let mut out = String::new();
    out.push_str("# EXPERIMENTS — paper vs. measured\n\n");
    out.push_str(
        "Workload: synthetic SPECfp95 suite (see `DESIGN.md` §4 for the\n\
         substitution); machines: Table 1 presets. Absolute IPC differs from\n\
         the paper (different loop bodies, latencies); the *shape* — who\n\
         wins, by roughly what factor, where the exceptions sit — is the\n\
         reproduction target. Regenerate with\n\
         `cargo run --release -p gpsched-eval --bin reproduce -- all`.\n\n\
         Magnitude note: the paper's headline is GP +23% over URACAM on the\n\
         2-cluster/32-register machine; we measure +2–9% depending on the\n\
         configuration. The direction and the per-program exceptions\n\
         (URACAM winning on mgrid/hydro2d-style loops) reproduce; the gap\n\
         is smaller because our URACAM baseline shares the full engine —\n\
         SMS windows with the ASAP-first retry, spill-on-overflow, list\n\
         fallback — and is therefore stronger than the 2001 baseline.\n\n",
    );

    let fig = |out: &mut String, name: &str, paper: &str, series: &[FigureSeries]| {
        let _ = writeln!(out, "## {name}\n");
        let _ = writeln!(out, "Paper: {paper}\n");
        let _ = writeln!(
            out,
            "| config | unified | URACAM | Fixed | GP | GP vs URACAM |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for s in series {
            let a = s.average();
            let _ = writeln!(
                out,
                "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:+.1}% |",
                s.machine,
                a.unified,
                a.uracam,
                a.fixed,
                a.gp,
                (s.gp_speedup_over_uracam() - 1.0) * 100.0
            );
        }
        let _ = writeln!(out);
        // Per-program detail.
        for s in series {
            let _ = writeln!(
                out,
                "<details><summary>{} per program</summary>\n",
                s.machine
            );
            let _ = writeln!(out, "| program | unified | URACAM | Fixed | GP |");
            let _ = writeln!(out, "|---|---|---|---|---|");
            for r in &s.rows {
                let _ = writeln!(
                    out,
                    "| {} | {:.3} | {:.3} | {:.3} | {:.3} |",
                    r.program, r.unified, r.uracam, r.fixed, r.gp
                );
            }
            let _ = writeln!(out, "\n</details>\n");
        }
    };
    fig(
        &mut out,
        "Figure 2 — IPC, 1 bus, latency 1",
        "GP > Fixed > URACAM on average; unified is the upper bound; \
         GP ≈ +23% over URACAM on the 2-cluster/32-register machine.",
        fig2,
    );
    fig(
        &mut out,
        "Figure 3 — IPC, 1 bus, latency 2",
        "Same ordering with a slower bus; a few programs favour Fixed \
         (re-partitioning under register pressure can backfire — §4.2).",
        fig3,
    );

    out.push_str("## Table 2 — scheduling CPU time\n\n");
    out.push_str(
        "Paper: URACAM is 2–7× slower than Fixed/GP because it tries every\n\
         cluster for every node. Our measurement reproduces that shape on\n\
         the 4-cluster configurations, where the per-node cluster search\n\
         dominates. On the 2-cluster configurations our partitioner +\n\
         restart overhead outweighs URACAM's 2-way search — a deviation\n\
         from the paper (their partitioning was evidently cheaper relative\n\
         to their scheduler); see `DESIGN.md` §7.\n\n",
    );
    out.push_str("| config | URACAM (ms) | Fixed (ms) | GP (ms) | URACAM slowdown |\n");
    out.push_str("|---|---|---|---|---|\n");
    for r in t2 {
        let _ = writeln!(
            out,
            "| {} | {:.2} | {:.2} | {:.2} | {:.1}x |",
            r.machine,
            r.uracam_ms,
            r.fixed_ms,
            r.gp_ms,
            r.uracam_slowdown()
        );
    }
    out.push('\n');

    // Where the scheduling time goes (gpsched-trace).
    out.push_str("## Profile — where scheduling time goes\n\n");
    let _ = writeln!(
        out,
        "Traced serial sweep of the suite on `{}` with the memo cache off\n\
         ({} units); absolute times vary with the host, the *ranking* is\n\
         the reproducible part. Regenerate interactively with\n\
         `cargo run --release -p gpsched-engine -- profile`.\n",
        profile.machine, profile.units
    );
    out.push_str("| phase | count | total ms | self ms | self % |\n");
    out.push_str("|---|---|---|---|---|\n");
    let wall = profile.summary.wall_ns.max(1) as f64;
    for p in profile.summary.phases.iter().take(10) {
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {:.2} | {:.1}% |",
            p.name,
            p.count,
            p.total_ns as f64 / 1e6,
            p.self_ns as f64 / 1e6,
            100.0 * p.self_ns as f64 / wall
        );
    }
    out.push('\n');
    let counters_of_note = [
        "partition.moves_evaluated",
        "partition.screen_rejected",
        "partition.evaluator_rebuilds",
        "graph.bf.runs",
        "graph.bf.edges_scanned",
        "sched.ii_growth",
        "sched.transfers_booked",
        "sched.spills_inserted",
    ];
    out.push_str("Counters of note:\n\n");
    for name in counters_of_note {
        let _ = writeln!(out, "- `{name}`: {}", profile.summary.counter(name));
    }
    out.push('\n');

    // Shape checks.
    out.push_str("## Shape checks\n\n");
    let avg_over = |series: &[FigureSeries], f: &dyn Fn(&crate::figures::FigureRow) -> f64| {
        series.iter().map(|s| f(s.average())).sum::<f64>() / series.len() as f64
    };
    let gp2 = avg_over(fig2, &|r| r.gp);
    let ur2 = avg_over(fig2, &|r| r.uracam);
    let fx2 = avg_over(fig2, &|r| r.fixed);
    let un2 = avg_over(fig2, &|r| r.unified);
    let checks = [
        ("unified ≥ GP (upper bound)", un2 >= gp2),
        ("GP ≥ Fixed on average", gp2 >= fx2),
        ("GP > URACAM on average", gp2 > ur2),
        ("URACAM slower than GP/Fixed on 4-cluster configs (mean)", {
            let c4: Vec<f64> = t2
                .iter()
                .filter(|r| r.machine.starts_with("c4"))
                .map(Table2Row::uracam_slowdown)
                .collect();
            !c4.is_empty() && c4.iter().sum::<f64>() / c4.len() as f64 >= 1.0
        }),
    ];
    for (name, ok) in checks {
        let _ = writeln!(out, "- [{}] {}", if ok { "x" } else { " " }, name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureRow;

    fn fake_series() -> Vec<FigureSeries> {
        vec![FigureSeries {
            machine: "c2r32b1l1".into(),
            title: "2-cluster, 32 regs".into(),
            rows: vec![
                FigureRow {
                    program: "swim".into(),
                    unified: 5.0,
                    uracam: 3.0,
                    fixed: 3.5,
                    gp: 4.0,
                },
                FigureRow {
                    program: "average".into(),
                    unified: 5.0,
                    uracam: 3.0,
                    fixed: 3.5,
                    gp: 4.0,
                },
            ],
        }]
    }

    fn fake_t2() -> Vec<Table2Row> {
        vec![Table2Row {
            machine: "c2r32b1l1".into(),
            uracam_ms: 100.0,
            fixed_ms: 30.0,
            gp_ms: 40.0,
        }]
    }

    #[test]
    fn table1_renders_all_rows() {
        let t = crate::tables::table1();
        let s = render_table1(&t);
        assert!(s.contains("u-r32"));
        assert!(s.contains("c2r32b1l1"));
    }

    #[test]
    fn figure_render_contains_bars_and_speedup() {
        let s = render_figure("Figure 2", &fake_series());
        assert!(s.contains("swim"));
        assert!(s.contains("average"));
        assert!(s.contains("+33.3%"));
    }

    #[test]
    fn table2_render_contains_slowdown() {
        let s = render_table2(&fake_t2());
        assert!(s.contains("3.3x"));
    }

    fn fake_profile() -> crate::profile::ProfileReport {
        crate::profile::ProfileReport {
            machine: "c2r32b1l1".into(),
            units: 42,
            summary: gpsched_trace::TraceSummary {
                phases: vec![gpsched_trace::PhaseStat {
                    name: "engine.unit".into(),
                    count: 42,
                    total_ns: 80_000_000,
                    self_ns: 20_000_000,
                }],
                counters: vec![("graph.bf.runs".into(), 9)],
                wall_ns: 100_000_000,
                dropped: 0,
            },
        }
    }

    #[test]
    fn markdown_has_checks() {
        let md = experiments_markdown(&fake_series(), &fake_series(), &fake_t2(), &fake_profile());
        assert!(md.contains("# EXPERIMENTS"));
        assert!(md.contains("- [x] GP > URACAM on average"));
        assert!(md.contains("Figure 3"));
        assert!(md.contains("| c2r32b1l1 | 100.00 | 30.00 | 40.00 | 3.3x |"));
        assert!(md.contains("## Profile — where scheduling time goes"));
        assert!(md.contains("| engine.unit | 42 | 80.00 | 20.00 | 20.0% |"));
        assert!(md.contains("- `graph.bf.runs`: 9"));
    }
}
