//! Scheduling a whole program and measuring it.

use gpsched_machine::MachineConfig;
use gpsched_sched::{schedule_loop, Algorithm, ScheduledWith};
use gpsched_workloads::Program;
use std::time::{Duration, Instant};

/// Per-loop outcome (used by reports and tests).
#[derive(Clone, Debug)]
pub struct LoopOutcome {
    /// Loop name.
    pub name: String,
    /// Achieved initiation interval.
    pub ii: i64,
    /// Total cycles at the loop's trip count.
    pub cycles: u64,
    /// Useful ops per iteration.
    pub ops: usize,
    /// Trip count.
    pub trips: u64,
    /// Whether the list-scheduling fallback fired.
    pub list_fallback: bool,
}

/// Result of scheduling every loop of a program.
#[derive(Clone, Debug)]
pub struct ProgramRun {
    /// Program name.
    pub program: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Machine short name.
    pub machine: String,
    /// Aggregate IPC: `Σ ops·trips / Σ cycles` over the loops — exactly the
    /// weighting of whole-program measurement (the paper's §4.1: the
    /// scheduled loops cover ~95% of execution time; ours cover 100% by
    /// construction).
    pub ipc: f64,
    /// CPU time spent computing the schedules (Table 2's metric).
    pub sched_time: Duration,
    /// Per-loop details.
    pub loops: Vec<LoopOutcome>,
}

/// Schedules every loop of `program` on `machine` with `algorithm`.
///
/// # Panics
///
/// Panics if some loop cannot be scheduled at all (cannot happen for the
/// bundled workloads on the paper's machines).
pub fn run_program(program: &Program, machine: &MachineConfig, algorithm: Algorithm) -> ProgramRun {
    let start = Instant::now();
    let results: Vec<_> = program
        .loops
        .iter()
        .map(|ddg| {
            schedule_loop(ddg, machine, algorithm).unwrap_or_else(|e| panic!("{}: {e}", ddg.name()))
        })
        .collect();
    let sched_time = start.elapsed();

    let mut total_ops: u128 = 0;
    let mut total_cycles: u128 = 0;
    let loops: Vec<LoopOutcome> = results
        .iter()
        .map(|r| {
            let cycles = r.cycles();
            total_ops += r.ops as u128 * r.trips as u128;
            total_cycles += cycles as u128;
            LoopOutcome {
                name: r.name.clone(),
                ii: r.schedule.ii(),
                cycles,
                ops: r.ops,
                trips: r.trips,
                list_fallback: matches!(r.method, ScheduledWith::ListFallback),
            }
        })
        .collect();

    ProgramRun {
        program: program.name.to_string(),
        algorithm: algorithm.name().to_string(),
        machine: machine.short_name(),
        ipc: total_ops as f64 / total_cycles as f64,
        sched_time,
        loops,
    }
}

/// The unified-machine upper bound for a program (the white bars of
/// Figures 2 and 3). All algorithms coincide on one cluster; GP is used.
pub fn run_unified(program: &Program, registers: u32) -> ProgramRun {
    run_program(program, &MachineConfig::unified(registers), Algorithm::Gp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::kernels;

    fn tiny_program() -> Program {
        Program {
            name: "tiny",
            loops: vec![kernels::daxpy(200), kernels::dot_product(150)],
        }
    }

    #[test]
    fn aggregates_over_loops() {
        let p = tiny_program();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let r = run_program(&p, &m, Algorithm::Gp);
        assert_eq!(r.loops.len(), 2);
        assert!(r.ipc > 0.0 && r.ipc <= 12.0);
        assert_eq!(r.algorithm, "GP");
        assert_eq!(r.machine, "c2r32b1l1");
        // Aggregate equals manual recomputation.
        let ops: u128 = r
            .loops
            .iter()
            .map(|l| l.ops as u128 * l.trips as u128)
            .sum();
        let cyc: u128 = r.loops.iter().map(|l| l.cycles as u128).sum();
        assert!((r.ipc - ops as f64 / cyc as f64).abs() < 1e-12);
    }

    #[test]
    fn unified_baseline_dominates() {
        let p = tiny_program();
        let u = run_unified(&p, 32);
        for algo in Algorithm::ALL {
            let c = run_program(&p, &MachineConfig::four_cluster(32, 1, 2), algo);
            assert!(
                u.ipc >= c.ipc - 1e-9,
                "unified {} vs {} {}",
                u.ipc,
                c.algorithm,
                c.ipc
            );
        }
    }

    #[test]
    fn timing_is_recorded() {
        let p = tiny_program();
        let r = run_program(&p, &MachineConfig::two_cluster(32, 1, 1), Algorithm::Uracam);
        assert!(r.sched_time > Duration::ZERO);
    }
}
