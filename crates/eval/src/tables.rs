//! Table 1 (configurations) and Table 2 (scheduling CPU time).
//!
//! Table 2 runs through the engine with the memo cache **disabled**: its
//! metric is the CPU cost of each algorithm, so every unit must pay its
//! own MII and partitioning work (a cache would siphon Fixed/GP's
//! preprocessing into whichever unit ran first and skew the comparison).

use gpsched_engine::{aggregate_by_group, run_sweep, JobSpec, SweepOptions};
use gpsched_machine::{table1_configs, MachineConfig};
use gpsched_sched::Algorithm;
use gpsched_workloads::{spec_suite, Program};

/// One row of Table 2: average CPU milliseconds to compute the schedule of
/// a whole benchmark, per algorithm, on one configuration.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Machine short name.
    pub machine: String,
    /// URACAM average milliseconds.
    pub uracam_ms: f64,
    /// Fixed Partition average milliseconds.
    pub fixed_ms: f64,
    /// GP average milliseconds.
    pub gp_ms: f64,
}

impl Table2Row {
    /// URACAM slowdown vs the faster of Fixed/GP (the paper reports 2–7×).
    pub fn uracam_slowdown(&self) -> f64 {
        self.uracam_ms / self.fixed_ms.min(self.gp_ms)
    }
}

/// Scheduling-time rows for the given machines over `programs`.
pub fn table2_for(programs: &[Program], machines: &[MachineConfig]) -> Vec<Table2Row> {
    let job = JobSpec::new()
        .programs(programs)
        .machines(machines.iter().cloned())
        .algorithms(Algorithm::MODULO);
    let opts = SweepOptions {
        use_cache: false,
        ..SweepOptions::default()
    };
    let result = run_sweep(&job, &opts, None);
    let agg = aggregate_by_group(&result.records);

    let nprograms = programs.len() as f64;
    let avg_ms = |machine: &str, algo: Algorithm| -> f64 {
        let total_us: u64 = agg
            .iter()
            .filter(|a| a.machine == machine && a.algorithm == algo.name())
            .map(|a| a.sched_time_us)
            .sum();
        total_us as f64 / nprograms / 1e3
    };
    machines
        .iter()
        .map(|m| {
            let name = m.short_name();
            Table2Row {
                uracam_ms: avg_ms(&name, Algorithm::Uracam),
                fixed_ms: avg_ms(&name, Algorithm::FixedPartition),
                gp_ms: avg_ms(&name, Algorithm::Gp),
                machine: name,
            }
        })
        .collect()
}

/// **Table 2**: the full suite on every clustered configuration of the
/// paper's evaluation (both bus latencies, both register counts).
pub fn table2() -> Vec<Table2Row> {
    let programs = spec_suite();
    let machines: Vec<MachineConfig> = table1_configs()
        .into_iter()
        .map(|(_, m)| m)
        .filter(|m| !m.is_unified())
        .collect();
    table2_for(&programs, &machines)
}

/// **Table 1** as data: every configuration with its resource shape.
pub fn table1() -> Vec<(String, String)> {
    table1_configs()
        .into_iter()
        .map(|(_, m)| (m.short_name(), m.to_string()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::kernels;

    #[test]
    fn table1_lists_ten_configs() {
        let t = table1();
        assert_eq!(t.len(), 10);
        assert!(t.iter().any(|(n, _)| n == "u-r32"));
        assert!(t.iter().any(|(n, _)| n == "c4r64b1l2"));
    }

    #[test]
    fn table2_rows_positive_and_ordered() {
        let programs = vec![Program {
            name: "mini",
            loops: vec![kernels::daxpy(100), kernels::fir(80, 6)],
        }];
        let machines = vec![
            MachineConfig::two_cluster(32, 1, 1),
            MachineConfig::four_cluster(32, 1, 1),
        ];
        let rows = table2_for(&programs, &machines);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].machine, "c2r32b1l1");
        for r in &rows {
            assert!(r.uracam_ms > 0.0 && r.fixed_ms > 0.0 && r.gp_ms > 0.0);
            assert!(r.uracam_slowdown() > 0.0);
        }
    }
}
