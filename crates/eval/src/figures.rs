//! Figures 2 and 3: IPC per program, per configuration, per algorithm.
//!
//! Since the engine rewrite these sweeps run through
//! [`gpsched_engine::run_sweep`], so they use every CPU the host offers
//! and share MII/partition preprocessing across the per-algorithm bars.

use gpsched_engine::{aggregate_by_group, run_sweep, JobSpec, SweepOptions};
use gpsched_machine::MachineConfig;
use gpsched_sched::Algorithm;
use gpsched_workloads::{spec_suite, Program};

/// One program's bars in a figure.
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Program name (or `"average"`).
    pub program: String,
    /// Unified-machine IPC (white bar; the upper bound).
    pub unified: f64,
    /// URACAM IPC (light grey bar).
    pub uracam: f64,
    /// Fixed Partition IPC (dark grey bar).
    pub fixed: f64,
    /// GP IPC (black bar).
    pub gp: f64,
}

/// One sub-graph of a figure: a clustered configuration with all its bars.
#[derive(Clone, Debug)]
pub struct FigureSeries {
    /// Machine short name (e.g. `c2r32b1l1`).
    pub machine: String,
    /// Human title matching the paper ("2-cluster, 32 registers").
    pub title: String,
    /// Per-program rows followed by the `"average"` row.
    pub rows: Vec<FigureRow>,
}

impl FigureSeries {
    /// The average row.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn average(&self) -> &FigureRow {
        self.rows.last().expect("series has an average row")
    }

    /// GP speedup over URACAM on the average row.
    pub fn gp_speedup_over_uracam(&self) -> f64 {
        let avg = self.average();
        avg.gp / avg.uracam
    }
}

/// Builds one figure series for a clustered machine configuration by
/// running two engine sweeps: the unified upper bound (GP on one cluster —
/// all algorithms coincide there) and the clustered machine under the
/// three modulo algorithms.
pub fn series_for(programs: &[Program], machine: &MachineConfig, title: &str) -> FigureSeries {
    let opts = SweepOptions::default();
    let unified_job = JobSpec::new()
        .programs(programs)
        .machine(MachineConfig::unified(machine.total_registers()))
        .algorithm(Algorithm::Gp);
    let clustered_job = JobSpec::new()
        .programs(programs)
        .machine(machine.clone())
        .algorithms(Algorithm::MODULO);
    let unified = aggregate_by_group(&run_sweep(&unified_job, &opts, None).records);
    let clustered = aggregate_by_group(&run_sweep(&clustered_job, &opts, None).records);

    let ipc_of = |agg: &[gpsched_engine::GroupAggregate], group: &str, algo: Algorithm| -> f64 {
        agg.iter()
            .find(|a| a.group == group && a.algorithm == algo.name())
            .map(|a| a.ipc)
            .expect("sweep covers every (program, algorithm)")
    };

    let mut rows: Vec<FigureRow> = programs
        .iter()
        .map(|p| FigureRow {
            program: p.name.to_string(),
            unified: ipc_of(&unified, p.name, Algorithm::Gp),
            uracam: ipc_of(&clustered, p.name, Algorithm::Uracam),
            fixed: ipc_of(&clustered, p.name, Algorithm::FixedPartition),
            gp: ipc_of(&clustered, p.name, Algorithm::Gp),
        })
        .collect();

    let n = rows.len() as f64;
    let avg = FigureRow {
        program: "average".to_string(),
        unified: rows.iter().map(|r| r.unified).sum::<f64>() / n,
        uracam: rows.iter().map(|r| r.uracam).sum::<f64>() / n,
        fixed: rows.iter().map(|r| r.fixed).sum::<f64>() / n,
        gp: rows.iter().map(|r| r.gp).sum::<f64>() / n,
    };
    rows.push(avg);
    FigureSeries {
        machine: machine.short_name(),
        title: title.to_string(),
        rows,
    }
}

fn figure(bus_latency: u32) -> Vec<FigureSeries> {
    let programs = spec_suite();
    let mut out = Vec::new();
    for (clusters, label) in [(2u32, "2-cluster"), (4, "4-cluster")] {
        for regs in [32u32, 64] {
            let machine = match clusters {
                2 => MachineConfig::two_cluster(regs, 1, bus_latency),
                _ => MachineConfig::four_cluster(regs, 1, bus_latency),
            };
            let title = format!("{label}, {regs} registers, 1 bus lat {bus_latency}");
            out.push(series_for(&programs, &machine, &title));
        }
    }
    out
}

/// **Figure 2**: IPC for 2- and 4-cluster machines, 32 and 64 registers,
/// one bus of latency 1.
pub fn figure2() -> Vec<FigureSeries> {
    figure(1)
}

/// **Figure 3**: the same sweep with a 2-cycle bus.
pub fn figure3() -> Vec<FigureSeries> {
    figure(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::kernels;

    fn mini_suite() -> Vec<Program> {
        vec![
            Program {
                name: "alpha",
                loops: vec![kernels::daxpy(200), kernels::stencil5(150)],
            },
            Program {
                name: "beta",
                loops: vec![kernels::dot_product(300), kernels::fir(100, 6)],
            },
        ]
    }

    #[test]
    fn series_has_programs_plus_average() {
        let m = MachineConfig::two_cluster(32, 1, 1);
        let s = series_for(&mini_suite(), &m, "2-cluster test");
        assert_eq!(s.rows.len(), 3);
        assert_eq!(s.rows[0].program, "alpha");
        assert_eq!(s.rows[2].program, "average");
        let avg = s.average();
        assert!((avg.gp - (s.rows[0].gp + s.rows[1].gp) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn unified_bar_is_highest() {
        let m = MachineConfig::four_cluster(32, 1, 2);
        let s = series_for(&mini_suite(), &m, "4-cluster test");
        for r in &s.rows {
            assert!(r.unified >= r.gp - 1e-9, "{}", r.program);
            assert!(r.unified >= r.uracam - 1e-9, "{}", r.program);
            assert!(r.unified >= r.fixed - 1e-9, "{}", r.program);
        }
    }

    #[test]
    fn engine_path_matches_direct_scheduling() {
        // The figure numbers must be exactly what per-loop scheduling
        // produces — the engine adds parallelism, not drift.
        let suite = mini_suite();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let s = series_for(&suite, &m, "check");
        let direct = crate::run::run_program(&suite[0], &m, Algorithm::Gp);
        assert!((s.rows[0].gp - direct.ipc).abs() < 1e-12);
    }

    #[test]
    fn speedup_helper() {
        let s = FigureSeries {
            machine: "x".into(),
            title: "t".into(),
            rows: vec![FigureRow {
                program: "average".into(),
                unified: 4.0,
                uracam: 2.0,
                fixed: 2.2,
                gp: 2.5,
            }],
        };
        assert!((s.gp_speedup_over_uracam() - 1.25).abs() < 1e-12);
    }
}
