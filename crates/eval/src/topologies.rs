//! Topology figure: IPC across interconnect shapes on the SPECfp95 set.
//!
//! The paper's machines only vary bus count and latency; with the machine
//! axis open ([`gpsched_machine::Interconnect`]), this report runs the
//! same SPECfp95 aggregation over one reference machine per topology
//! ([`gpsched_machine::topology_presets`]: shared bus, pipelined bus,
//! ring, point-to-point) so the columns isolate what the interconnect
//! itself is worth. `reproduce topologies` renders it; like `stress` it
//! stays out of `reproduce all`, which pins the paper's frozen
//! evaluation.

use gpsched_engine::{aggregate_by_group, run_sweep, JobSpec, SweepOptions};
use gpsched_machine::{topology_presets, MachineConfig};
use gpsched_sched::AlgorithmSpec;
use gpsched_workloads::Program;

/// One program's IPC across the topology columns.
#[derive(Clone, Debug)]
pub struct TopologyRow {
    /// Program name (or `"average"`).
    pub program: String,
    /// IPC per machine, aligned with [`TopologyReport::machines`].
    pub ipc: Vec<f64>,
}

/// The full topology comparison.
#[derive(Clone, Debug)]
pub struct TopologyReport {
    /// Algorithm spec the comparison ran under.
    pub spec: String,
    /// Machine short names, in column order.
    pub machines: Vec<String>,
    /// Interconnect kind tag per machine column.
    pub kinds: Vec<String>,
    /// Per-program rows followed by the `"average"` row.
    pub rows: Vec<TopologyRow>,
}

/// Builds the topology report: `programs` on every machine in `machines`
/// under `spec`, aggregated per program exactly like the paper's figures
/// (`Σ ops·trips / Σ cycles`), through the engine executor.
pub fn topology_report(
    programs: &[Program],
    machines: &[MachineConfig],
    spec: AlgorithmSpec,
) -> TopologyReport {
    let job = JobSpec::new()
        .programs(programs)
        .machines(machines.iter().cloned())
        .algorithm(spec);
    let agg = aggregate_by_group(&run_sweep(&job, &SweepOptions::default(), None).records);
    let names: Vec<String> = machines.iter().map(MachineConfig::short_name).collect();

    let ipc_of = |group: &str, machine: &str| -> f64 {
        agg.iter()
            .find(|a| a.group == group && a.machine == machine)
            .map(|a| a.ipc)
            .expect("sweep covers every (program, machine)")
    };
    let mut rows: Vec<TopologyRow> = programs
        .iter()
        .map(|p| TopologyRow {
            program: p.name.to_string(),
            ipc: names.iter().map(|m| ipc_of(p.name, m)).collect(),
        })
        .collect();
    let n = rows.len() as f64;
    rows.push(TopologyRow {
        program: "average".to_string(),
        ipc: (0..names.len())
            .map(|i| rows.iter().map(|r| r.ipc[i]).sum::<f64>() / n)
            .collect(),
    });
    TopologyReport {
        spec: spec.name(),
        machines: names,
        kinds: machines
            .iter()
            .map(|m| m.interconnect().kind_name().to_string())
            .collect(),
        rows,
    }
}

/// The default comparison: the SPECfp95 suite under GP over the bundled
/// [`topology_presets`].
pub fn default_topology_report() -> TopologyReport {
    topology_report(
        &gpsched_workloads::spec_suite(),
        &topology_presets(),
        AlgorithmSpec::parse("gp").expect("bundled spec"),
    )
}

impl TopologyReport {
    /// Plain-text rendering of the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self.machines.iter().map(|m| m.len().max(8)).collect();
        out.push_str(&format!("{:<10}", "program"));
        for (m, w) in self.machines.iter().zip(&widths) {
            out.push_str(&format!(" {m:>w$}"));
        }
        out.push('\n');
        out.push_str(&format!("{:<10}", ""));
        for (k, w) in self.kinds.iter().zip(&widths) {
            out.push_str(&format!(" {k:>w$}"));
        }
        out.push('\n');
        for row in &self.rows {
            if row.program == "average" {
                let dashes: usize = 10 + widths.iter().map(|w| w + 1).sum::<usize>();
                out.push_str(&"-".repeat(dashes));
                out.push('\n');
            }
            out.push_str(&format!("{:<10}", row.program));
            for (v, w) in row.ipc.iter().zip(&widths) {
                out.push_str(&format!(" {v:>w$.3}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::kernels;

    #[test]
    fn topology_report_covers_every_column() {
        let programs = vec![
            Program {
                name: "alpha",
                loops: vec![kernels::daxpy(200), kernels::stencil5(150)],
            },
            Program {
                name: "beta",
                loops: vec![kernels::dot_product(300)],
            },
        ];
        let machines = topology_presets();
        let r = topology_report(
            &programs,
            &machines,
            AlgorithmSpec::parse("gp").expect("parses"),
        );
        assert_eq!(r.machines.len(), machines.len());
        assert_eq!(r.rows.len(), 3); // 2 programs + average
        for row in &r.rows {
            assert_eq!(row.ipc.len(), machines.len());
            assert!(row.ipc.iter().all(|&x| x > 0.0), "{}", row.program);
        }
        let text = r.render();
        assert!(text.contains("average"));
        assert!(text.contains("ring"));
        assert!(text.contains("p2p"));
    }
}
