//! Regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce table1   # machine configuration matrix
//! reproduce fig2     # IPC, 1 bus, latency 1 (4 sub-graphs)
//! reproduce fig3     # IPC, 1 bus, latency 2 (4 sub-graphs)
//! reproduce table2   # scheduling CPU time per algorithm/config
//! reproduce variants   # IPC of the policy-variant specs (beyond the paper)
//! reproduce stress     # catalog × synthetic preset corpora, sim-audited
//! reproduce portfolio  # portfolio vs every fixed spec, sim-audited gate
//! reproduce topologies # SPECfp95 IPC across interconnect topologies
//! reproduce profile    # per-phase scheduling profile (gpsched-trace)
//! reproduce all        # everything + rewrite EXPERIMENTS.md
//! ```
//!
//! `stress` and `portfolio` read `GPSCHED_SYNTH_BUDGET` (total generated
//! loops; default 90). `portfolio` exits non-zero unless portfolio's
//! aggregate IPC is at least every fixed catalog spec's (and every unit
//! passes the conformance audit) — CI runs it as a gate. None of
//! `stress`, `portfolio`, `topologies` is part of `all` — their
//! corpora/machines are open-ended where EXPERIMENTS.md pins the paper's
//! frozen evaluation.
//!
//! Run with `--release`; the full sweep schedules ~76 loops × 9 machine
//! configurations × 4 algorithm bars.

use gpsched_eval::report;
use gpsched_eval::{figure2, figure3, series_for_specs, table2, tables};
use gpsched_machine::MachineConfig;
use gpsched_sched::AlgorithmSpec;
use std::time::Instant;

/// The variant figure: the paper's modulo algorithms next to the bundled
/// policy variants, on the clustered machines of Figures 2/3.
fn variants_figure() -> Vec<gpsched_eval::VariantSeries> {
    let programs = gpsched_workloads::spec_suite();
    let specs: Vec<AlgorithmSpec> = ["uracam", "uracam:greedy-merit", "gp", "gp:norepart"]
        .iter()
        .map(|s| AlgorithmSpec::parse(s).expect("bundled specs parse"))
        .collect();
    [
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::four_cluster(32, 1, 2),
    ]
    .iter()
    .map(|m| series_for_specs(&programs, m, &specs))
    .collect()
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let t0 = Instant::now();
    match cmd.as_str() {
        "table1" => print!("{}", report::render_table1(&tables::table1())),
        "fig2" => print!(
            "{}",
            report::render_figure("Figure 2 — IPC, 1 bus, latency 1", &figure2())
        ),
        "fig3" => print!(
            "{}",
            report::render_figure("Figure 3 — IPC, 1 bus, latency 2", &figure3())
        ),
        "table2" => print!("{}", report::render_table2(&table2())),
        "variants" => print!(
            "{}",
            report::render_variants("Variants — IPC per algorithm spec", &variants_figure())
        ),
        "stress" => {
            let budget = gpsched_engine::conformance::synth_budget(90);
            let machines = [
                MachineConfig::two_cluster(32, 1, 1),
                MachineConfig::four_cluster(64, 1, 2),
                // The open interconnect axis: ring and point-to-point
                // machines pass the same sim-audited sweep.
                MachineConfig::homogeneous_with(
                    4,
                    (1, 1, 1),
                    64,
                    gpsched_machine::Interconnect::Ring {
                        hop_latency: 1,
                        links_per_hop: 1,
                    },
                ),
                MachineConfig::homogeneous_with(
                    4,
                    (1, 1, 1),
                    64,
                    gpsched_machine::Interconnect::uniform_point_to_point(4, 1, 1),
                ),
            ];
            let report =
                gpsched_eval::stress_report(budget, 0xC0DE, &machines, &AlgorithmSpec::CATALOG);
            println!("Stress — catalog IPC over synthetic preset corpora (sim-audited)\n");
            print!("{}", report.render());
            if !report.failures.is_empty() {
                std::process::exit(1);
            }
        }
        "portfolio" => {
            let budget = gpsched_engine::conformance::synth_budget(90);
            let machines = [
                MachineConfig::two_cluster(32, 1, 1),
                MachineConfig::four_cluster(32, 1, 2),
            ];
            let report = gpsched_eval::portfolio_report(budget, 0xC0DE, &machines);
            println!("Portfolio — feature-guided selection vs every fixed spec (sim-audited)\n");
            print!("{}", report.render());
            if !report.portfolio_dominates() {
                std::process::exit(1);
            }
        }
        "topologies" => {
            let report = gpsched_eval::default_topology_report();
            println!(
                "Topologies — SPECfp95 IPC per interconnect shape ({} on every machine)\n",
                report.spec
            );
            print!("{}", report.render());
        }
        "profile" => {
            let p = gpsched_eval::profile_report();
            println!("Profile — per-phase scheduling time (traced serial sweep, cache off)\n");
            print!("{}", p.render(20));
        }
        "all" => {
            print!("{}", report::render_table1(&tables::table1()));
            let f2 = figure2();
            print!(
                "\n{}",
                report::render_figure("Figure 2 — IPC, 1 bus, latency 1", &f2)
            );
            let f3 = figure3();
            print!(
                "\n{}",
                report::render_figure("Figure 3 — IPC, 1 bus, latency 2", &f3)
            );
            let t2 = table2();
            print!("\n{}", report::render_table2(&t2));
            let p = gpsched_eval::profile_report();
            print!(
                "\nProfile — per-phase scheduling time (traced serial sweep, cache off)\n{}",
                p.render(20)
            );
            let md = report::experiments_markdown(&f2, &f3, &t2, &p);
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EXPERIMENTS.md");
            match std::fs::write(path, &md) {
                Ok(()) => println!("\nwrote EXPERIMENTS.md"),
                Err(e) => eprintln!("\ncould not write EXPERIMENTS.md: {e}"),
            }
        }
        other => {
            eprintln!(
                "unknown command `{other}`; use \
                 table1|fig2|fig3|table2|variants|stress|portfolio|topologies|profile|all"
            );
            std::process::exit(2);
        }
    }
    eprintln!("[{:.1}s]", t0.elapsed().as_secs_f64());
}
