//! Portfolio report: feature-guided spec selection vs every fixed spec.
//!
//! The portfolio algorithm claims it matches the best *fixed* catalog
//! entry on whatever workload it meets, by ranking the catalog per loop
//! from cheap DDG features and racing the top candidates under a budget.
//! This report is the claim's evaluation: every fixed [`AlgorithmSpec`]
//! in the catalog, plus `portfolio`, over the six generator preset
//! corpora *and* the SPECfp95 suite, on clustered machines — each unit
//! passing through the cycle-accurate conformance audit
//! ([`gpsched_engine::conformance`]), so portfolio's selected schedules
//! are replay-validated, not just self-reported.
//!
//! The headline check is [`PortfolioReport::portfolio_dominates`]:
//! aggregate portfolio IPC is at least every fixed spec's aggregate IPC,
//! compared exactly by cross-multiplying the integer work and cycle
//! totals — no floating-point tolerance. An audit failure in the
//! *portfolio* column fails the gate outright; a failure under a fixed
//! spec (List over-pressures registers on two SPECfp95 loops, a known
//! limitation predating portfolio) excludes that unit from that spec's
//! aggregate and is reported, nothing more.

use gpsched_engine::conformance::{audit_unit, conformance_corpus};
use gpsched_machine::MachineConfig;
use gpsched_sched::AlgorithmSpec;

/// One (corpus, machine) row of the portfolio table.
#[derive(Clone, Debug)]
pub struct PortfolioRow {
    /// Corpus name: a generator preset or `SPECfp95`.
    pub corpus: String,
    /// Machine short name.
    pub machine: String,
    /// Aggregate IPC per spec, aligned with [`PortfolioReport::specs`].
    pub ipc: Vec<f64>,
}

/// The full portfolio-vs-catalog report.
#[derive(Clone, Debug)]
pub struct PortfolioReport {
    /// Display name of every spec, in column order (`Portfolio` last).
    pub specs: Vec<String>,
    /// Per-(corpus, machine) rows.
    pub rows: Vec<PortfolioRow>,
    /// Per-spec `(Σ ops·trips, Σ cycles)` over all rows — the exact
    /// integer aggregates the dominance check cross-multiplies.
    pub totals: Vec<(u128, u128)>,
    /// Units audited (units × machines × specs).
    pub audited: usize,
    /// Audit failures, as `loop / machine / spec: reason` lines. A
    /// failing unit is excluded from that spec's aggregate; a failure in
    /// the portfolio column additionally fails
    /// [`PortfolioReport::portfolio_dominates`].
    pub failures: Vec<String>,
    /// How many of [`PortfolioReport::failures`] are portfolio's own.
    pub portfolio_failures: usize,
}

/// Runs the portfolio evaluation: `budget` synthetic loops (spread over
/// every preset, seeded from `base_seed`) plus the whole SPECfp95 suite,
/// on each machine, under every fixed catalog spec and `portfolio`.
pub fn portfolio_report(
    budget: usize,
    base_seed: u64,
    machines: &[MachineConfig],
) -> PortfolioReport {
    let mut specs = AlgorithmSpec::CATALOG.to_vec();
    specs.push(AlgorithmSpec::PORTFOLIO);
    let spec_names: Vec<String> = specs.iter().map(|s| s.name()).collect();

    // Corpora: one per generator preset, then SPECfp95 as one corpus
    // (the paper aggregates whole benchmarks; so do we).
    let synth = conformance_corpus(budget, base_seed);
    let mut corpora: Vec<(String, Vec<gpsched_ddg::Ddg>)> = Vec::new();
    for case in synth {
        match corpora.iter_mut().find(|(name, _)| name == case.preset) {
            Some((_, loops)) => loops.push(case.ddg),
            None => corpora.push((case.preset.to_string(), vec![case.ddg])),
        }
    }
    let spec_loops: Vec<gpsched_ddg::Ddg> = gpsched_workloads::spec_suite()
        .into_iter()
        .flat_map(|p| p.loops)
        .collect();
    corpora.push(("SPECfp95".to_string(), spec_loops));

    let mut rows = Vec::new();
    let mut totals = vec![(0u128, 0u128); specs.len()];
    let mut audited = 0usize;
    let mut failures = Vec::new();
    let mut portfolio_failures = 0usize;

    for (corpus, loops) in &corpora {
        for machine in machines {
            let mut ipc = Vec::with_capacity(specs.len());
            for (si, spec) in specs.iter().enumerate() {
                let (mut work, mut cycles) = (0u128, 0u128);
                for ddg in loops {
                    match audit_unit(ddg, machine, *spec) {
                        Ok(a) => {
                            work += a.ops as u128 * a.trips as u128;
                            cycles += a.cycles as u128;
                        }
                        Err(e) => {
                            portfolio_failures += usize::from(spec.is_portfolio());
                            failures.push(format!(
                                "{} / {} / {spec}: {e}",
                                ddg.name(),
                                machine.short_name()
                            ));
                        }
                    }
                    audited += 1;
                }
                totals[si].0 += work;
                totals[si].1 += cycles;
                ipc.push(if cycles == 0 {
                    0.0
                } else {
                    work as f64 / cycles as f64
                });
            }
            rows.push(PortfolioRow {
                corpus: corpus.clone(),
                machine: machine.short_name(),
                ipc,
            });
        }
    }

    PortfolioReport {
        specs: spec_names,
        rows,
        totals,
        audited,
        failures,
        portfolio_failures,
    }
}

impl PortfolioReport {
    /// `true` when every portfolio unit audits clean and portfolio's
    /// aggregate IPC is at least every fixed spec's. The IPC comparison
    /// cross-multiplies the integer totals (`w_p/c_p >= w_s/c_s` ⟺
    /// `w_p·c_s >= w_s·c_p`), so it is exact.
    pub fn portfolio_dominates(&self) -> bool {
        let (pw, pc) = *self.totals.last().expect("portfolio column");
        self.portfolio_failures == 0 && pc > 0 && self.totals.iter().all(|&(w, c)| pw * c >= w * pc)
    }

    /// Aggregate IPC per spec over all rows.
    pub fn aggregate_ipc(&self) -> Vec<f64> {
        self.totals
            .iter()
            .map(|&(w, c)| if c == 0 { 0.0 } else { w as f64 / c as f64 })
            .collect()
    }

    /// Plain-text rendering: the table, the aggregate row, the verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self.specs.iter().map(|s| s.len().max(7)).collect();
        out.push_str(&format!("{:<18} {:<12}", "corpus", "machine"));
        for (s, w) in self.specs.iter().zip(&widths) {
            out.push_str(&format!(" {s:>w$}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:<18} {:<12}", row.corpus, row.machine));
            for (v, w) in row.ipc.iter().zip(&widths) {
                out.push_str(&format!(" {v:>w$.3}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<18} {:<12}", "aggregate", "(all)"));
        for (v, w) in self.aggregate_ipc().iter().zip(&widths) {
            out.push_str(&format!(" {v:>w$.3}"));
        }
        out.push('\n');
        out.push_str(&format!(
            "\n{} units audited — {} audit failures\n",
            self.audited,
            self.failures.len()
        ));
        for f in &self.failures {
            out.push_str(&format!("  FAIL {f}\n"));
        }
        out.push_str(if self.portfolio_dominates() {
            "portfolio >= every fixed catalog spec on aggregate IPC: PASS\n"
        } else {
            "portfolio >= every fixed catalog spec on aggregate IPC: FAIL\n"
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_portfolio_report_dominates_and_renders() {
        let machines = [MachineConfig::two_cluster(32, 1, 1)];
        let r = portfolio_report(12, 7, &machines);
        // Fixed-spec audit failures (List on two SPECfp95 loops) are
        // tolerated; portfolio's own schedules must all audit clean.
        assert_eq!(r.portfolio_failures, 0, "{:?}", r.failures);
        // 6 presets + SPECfp95, one machine each.
        assert_eq!(r.rows.len(), 7);
        assert_eq!(*r.specs.last().unwrap(), "Portfolio");
        assert!(r.totals.iter().all(|&(w, c)| w > 0 && c > 0));
        assert!(
            r.portfolio_dominates(),
            "portfolio must match the best fixed spec:\n{}",
            r.render()
        );
        let text = r.render();
        assert!(text.contains("SPECfp95"));
        assert!(text.contains("PASS"));
    }
}
