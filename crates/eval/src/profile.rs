//! The `reproduce profile` section: where does scheduling time go?
//!
//! Runs the SPECfp95 suite through the engine inside a trace session —
//! serially and with the memo cache disabled, like Table 2, so every unit
//! pays its full algorithmic cost and self-time fractions of the wall
//! clock are directly meaningful — and reduces the trace to the per-phase
//! profile of `TraceSummary`.

use gpsched_engine::{run_sweep, JobSpec, SweepOptions};
use gpsched_machine::MachineConfig;
use gpsched_sched::Algorithm;
use gpsched_trace::TraceSummary;
use gpsched_workloads::spec_suite;

/// A traced evaluation sweep reduced to per-phase statistics.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Machine the sweep ran on (short name).
    pub machine: String,
    /// Units scheduled (loops × algorithms, one machine).
    pub units: usize,
    /// Per-phase self/total time and counter totals.
    pub summary: TraceSummary,
}

impl ProfileReport {
    /// Renders the text report: header plus the top `top_n` phases.
    pub fn render(&self, top_n: usize) -> String {
        format!(
            "[{}] {} units, serial, cache off\n{}",
            self.machine,
            self.units,
            self.summary.render(top_n)
        )
    }
}

/// Profiles `programs` × [`Algorithm::ALL`] on one machine.
pub fn profile_report_on(
    programs: &[gpsched_workloads::Program],
    machine: &MachineConfig,
) -> ProfileReport {
    let job = JobSpec::new()
        .programs(programs)
        .machines([machine.clone()])
        .algorithms(Algorithm::ALL);
    let opts = SweepOptions {
        workers: 1,
        use_cache: false,
        progress: false,
    };
    let session = gpsched_trace::TraceSession::start();
    let result = run_sweep(&job, &opts, None);
    let trace = session.finish();
    ProfileReport {
        machine: machine.short_name(),
        units: result.stats.units,
        summary: trace.summary(),
    }
}

/// **Profile**: the full SPECfp95 suite on the paper's reference clustered
/// machine (2 clusters, 32 registers, 1 bus, latency 1).
pub fn profile_report() -> ProfileReport {
    profile_report_on(&spec_suite(), &MachineConfig::two_cluster(32, 1, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::{kernels, Program};

    #[test]
    fn profile_covers_every_layer() {
        let programs = vec![Program {
            name: "mini",
            loops: vec![kernels::daxpy(100), kernels::fir(80, 6)],
        }];
        let p = profile_report_on(&programs, &MachineConfig::two_cluster(32, 1, 1));
        assert_eq!(p.units, 2 * Algorithm::ALL.len());
        // Spans from every instrumented layer show up.
        for phase in ["engine.unit", "sched.ii_attempt", "partition.run"] {
            assert!(
                p.summary.phase(phase).is_some(),
                "missing phase {phase} in {:?}",
                p.summary.phases
            );
        }
        // Hot-loop counters flushed from the graph layer. (No assertion on
        // cache counters: tracing is process-global, so concurrent tests'
        // sweeps can contribute counts during this session.)
        assert!(p.summary.counter("graph.bf.runs") > 0);
        let text = p.render(10);
        assert!(text.contains("c2r32b1l1"));
        assert!(text.contains("engine.unit"));
    }
}
