//! Profiling harness for the large-units bench workload: prints the
//! minimum untraced wall time over `REPS` runs (default 7 — the minimum
//! rides out scheduler noise on loaded machines), then, when `TRACE` is
//! set, one traced run with the top phases and counters.
//!
//! ```text
//! REPS=15 cargo run --release -p gpsched-bench --example profile_large
//! TRACE=1 cargo run --release -p gpsched-bench --example profile_large
//! ```

use gpsched::prelude::*;
use gpsched_engine::{run_sweep, SweepOptions};

fn large_job() -> JobSpec {
    let mut loops: Vec<_> = spec_suite().into_iter().flat_map(|p| p.loops).collect();
    loops.sort_by_key(|d| std::cmp::Reverse(d.op_count()));
    loops.truncate(loops.len().div_ceil(10));
    let mut job = JobSpec::new();
    for d in loops {
        job = job.loop_in("large", d);
    }
    job.machines([
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::four_cluster(64, 1, 2),
    ])
    .algorithms(Algorithm::MODULO)
}

fn main() {
    let reps: usize = std::env::var("REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let job = large_job();
    let opts = SweepOptions {
        workers: 1,
        use_cache: false,
        progress: false,
    };
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        std::hint::black_box(run_sweep(&job, &opts, None).stats.units);
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    println!("untraced min wall: {best:.1} ms over {reps} reps");
    if std::env::var_os("TRACE").is_some() {
        let session = gpsched_trace::TraceSession::start();
        run_sweep(&job, &opts, None);
        let trace = session.finish();
        println!("{}", trace.summary().render(16));
    }
}
