//! Measures enabled-tracing overhead on the bench suite with paired,
//! interleaved samples: each round runs the sweep once untraced and once
//! inside a live `TraceSession`, so ambient machine noise hits both arms
//! alike. Reports the min of each arm (the bench methodology) and the
//! overhead ratio of the mins.
//!
//! ```text
//! ROUNDS=12 cargo run --release -p gpsched-bench --example trace_overhead
//! ```

use gpsched::prelude::*;
use gpsched_engine::{run_sweep, SweepOptions};

fn main() {
    let rounds: usize = std::env::var("ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    // Identical to the `serial/no-cache` vs `serial/traced` pair of
    // benches/engine_throughput.rs.
    let suite = spec_suite();
    let job = JobSpec::new()
        .programs(&suite[..2])
        .machines([
            MachineConfig::two_cluster(32, 1, 1),
            MachineConfig::four_cluster(64, 1, 2),
        ])
        .algorithms(Algorithm::MODULO);
    let opts = SweepOptions {
        workers: 1,
        use_cache: false,
        progress: false,
    };
    let (mut min_plain, mut min_traced) = (f64::INFINITY, f64::INFINITY);
    for round in 0..rounds {
        let t0 = std::time::Instant::now();
        std::hint::black_box(run_sweep(&job, &opts, None).stats.units);
        let plain = t0.elapsed().as_secs_f64() * 1e3;
        min_plain = min_plain.min(plain);

        let session = gpsched_trace::TraceSession::start();
        let t1 = std::time::Instant::now();
        std::hint::black_box(run_sweep(&job, &opts, None).stats.units);
        let traced = t1.elapsed().as_secs_f64() * 1e3;
        let trace = session.finish();
        min_traced = min_traced.min(traced);
        eprintln!(
            "round {round}: plain {plain:.1} ms, traced {traced:.1} ms ({} spans)",
            trace.spans.len()
        );
    }
    println!(
        "min plain {min_plain:.1} ms, min traced {min_traced:.1} ms, overhead {:.2}%",
        (min_traced / min_plain - 1.0) * 100.0
    );
}
