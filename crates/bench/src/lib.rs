//! Benchmark-only crate: see the `benches/` directory. Each bench
//! regenerates one table or figure of the paper (plus ablations); run with
//! `cargo bench -p gpsched-bench`.
