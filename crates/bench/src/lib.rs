//! Benchmark support crate: see the `benches/` directory. Each bench
//! regenerates one table or figure of the paper (plus ablations and the
//! engine throughput trajectory); run with `cargo bench -p gpsched-bench`.
//!
//! The workspace builds without external crates, so this library provides
//! the tiny timing harness the bench binaries share (`harness = false`):
//! fixed sample counts, min/mean/max wall times, deterministic output
//! lines that are easy to diff between commits.

pub mod trajectory;

use std::time::{Duration, Instant};

/// Wall-time statistics of one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    /// Fastest sample.
    pub min: Duration,
    /// Mean over samples.
    pub mean: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

impl Timing {
    /// The throughput implied by the *minimum* sample for `items` items
    /// per run (min is the least noisy estimator on a shared host).
    pub fn per_second(&self, items: usize) -> f64 {
        items as f64 / self.min.as_secs_f64().max(1e-12)
    }
}

/// Times `f`: one untimed warmup, then `samples` timed runs.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn time_samples<R>(samples: usize, mut f: impl FnMut() -> R) -> Timing {
    assert!(samples > 0, "need at least one sample");
    std::hint::black_box(f());
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        min = min.min(dt);
        max = max.max(dt);
        total += dt;
    }
    Timing {
        min,
        mean: total / samples as u32,
        max,
        samples,
    }
}

/// A named group of benchmarks, mirroring the structure the bench files
/// had under criterion.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Starts a group with the default of 10 samples per bench.
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            samples: 10,
        }
    }

    /// Overrides the per-bench sample count (builder-style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n;
        self
    }

    /// Runs and reports one benchmark of the group; returns the timing so
    /// callers can derive throughput lines.
    pub fn bench<R>(&self, id: &str, f: impl FnMut() -> R) -> Timing {
        let t = time_samples(self.samples, f);
        println!(
            "{}/{id}: min {:.3} ms, mean {:.3} ms, max {:.3} ms ({} samples)",
            self.name,
            t.min.as_secs_f64() * 1e3,
            t.mean.as_secs_f64() * 1e3,
            t.max.as_secs_f64() * 1e3,
            t.samples
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_bounds_are_ordered() {
        let t = time_samples(5, || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(t.min <= t.mean && t.mean <= t.max);
        assert_eq!(t.samples, 5);
        assert!(t.per_second(100) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        time_samples(0, || ());
    }
}
