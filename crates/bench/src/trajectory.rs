//! Machine-readable perf trajectory: `BENCH_engine.json`.
//!
//! The engine-throughput bench appends one entry per run (labelled via
//! `GPSCHED_BENCH_LABEL`) to a JSON file, so the repository accumulates a
//! baseline-vs-optimized history that CI can upload as an artifact and
//! future PRs can extend. The workspace builds without external crates, so
//! this module carries its own minimal JSON reader/writer for the schema:
//!
//! ```json
//! {
//!   "bench": "engine_throughput",
//!   "entries": [
//!     { "label": "pr2-baseline", "units": 78,
//!       "loops_per_sec": { "serial/no-cache": 154.0 } }
//!   ]
//! }
//! ```

use std::fmt::Write as _;
use std::path::Path;

/// One bench run: a label plus loops-scheduled/sec per configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// Human-chosen tag of the run (e.g. `pr2-baseline`, `ci`).
    pub label: String,
    /// Work items per timed run — the job's *actual* unit count
    /// (loops × machines × algorithms), never hardcoded.
    pub units: usize,
    /// `(configuration name, loops-scheduled per second)` pairs, in the
    /// order the bench reports them.
    pub loops_per_sec: Vec<(String, f64)>,
    /// Slowdown of the serial/no-cache configuration with a trace session
    /// *active* versus tracing disabled, percent (`None` for entries
    /// predating the tracing subsystem). Disabled-trace neutrality is
    /// tracked separately, by comparing `serial/no-cache` across entries.
    pub trace_overhead_pct: Option<f64>,
}

/// Reads the entries of an existing trajectory file. A missing file yields
/// an empty history; a malformed one is an error (so a bad write never
/// silently discards history).
///
/// # Errors
///
/// Returns an I/O error for unreadable files and `InvalidData` for
/// unparseable ones.
pub fn read_entries(path: &Path) -> std::io::Result<Vec<BenchEntry>> {
    if !path.exists() {
        return Ok(Vec::new());
    }
    let text = std::fs::read_to_string(path)?;
    parse_entries(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{path:?}: {e}")))
}

/// Appends `entry` to the trajectory at `path`, creating the file if
/// needed, and rewrites the whole document.
///
/// # Errors
///
/// Propagates I/O and parse errors from [`read_entries`] and the write.
pub fn append_entry(path: &Path, entry: BenchEntry) -> std::io::Result<()> {
    let mut entries = read_entries(path)?;
    entries.push(entry);
    std::fs::write(path, render(&entries))
}

/// Serializes a full trajectory document.
pub fn render(entries: &[BenchEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"engine_throughput\",\n  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{ \"label\": {}, \"units\": {}, \"loops_per_sec\": {{ ",
            quote(&e.label),
            e.units
        );
        for (j, (name, v)) in e.loops_per_sec.iter().enumerate() {
            let _ = write!(out, "{}: {:.1}", quote(name), v);
            if j + 1 < e.loops_per_sec.len() {
                out.push_str(", ");
            }
        }
        out.push_str(" }");
        if let Some(pct) = e.trace_overhead_pct {
            let _ = write!(out, ", \"trace_overhead_pct\": {pct:.2}");
        }
        out.push_str(" }");
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn quote(s: &str) -> String {
    let mut q = String::with_capacity(s.len() + 2);
    q.push('"');
    for c in s.chars() {
        match c {
            '"' => q.push_str("\\\""),
            '\\' => q.push_str("\\\\"),
            '\n' => q.push_str("\\n"),
            // Remaining control characters must not appear raw in JSON.
            c if (c as u32) < 0x20 => {
                let _ = write!(q, "\\u{:04x}", c as u32);
            }
            c => q.push(c),
        }
    }
    q.push('"');
    q
}

// --- minimal JSON reader (only what the schema needs) -------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

type PResult<T> = Result<T, String>;

fn parse_entries(text: &str) -> PResult<Vec<BenchEntry>> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut entries = Vec::new();
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "bench" => {
                p.string()?;
            }
            "entries" => {
                p.expect(b'[')?;
                if !p.peek_is(b']') {
                    loop {
                        entries.push(p.entry()?);
                        if !p.comma_or_end(b']')? {
                            break;
                        }
                    }
                } else {
                    p.expect(b']')?;
                }
            }
            other => return Err(format!("unexpected key {other:?}")),
        }
        if !p.comma_or_end(b'}')? {
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing data".into());
    }
    Ok(entries)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, b: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&b)
    }

    fn expect(&mut self, b: u8) -> PResult<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    /// Consumes `,` and returns `true`, or consumes `close` and returns
    /// `false`.
    fn comma_or_end(&mut self, close: u8) -> PResult<bool> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&b) if b == close => {
                self.pos += 1;
                Ok(false)
            }
            _ => Err(format!(
                "expected ',' or {:?} at byte {}",
                close as char, self.pos
            )),
        }
    }

    fn string(&mut self) -> PResult<String> {
        self.expect(b'"')?;
        // Collected as bytes and validated once at the end, so multi-byte
        // UTF-8 passes through intact.
        let mut raw: Vec<u8> = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(raw).map_err(|e| e.to_string());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => raw.push(b'"'),
                        Some(b'\\') => raw.push(b'\\'),
                        Some(b'n') => raw.push(b'\n'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or("bad \\u escape")?;
                            let mut buf = [0u8; 4];
                            raw.extend_from_slice(hex.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    raw.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> PResult<f64> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn entry(&mut self) -> PResult<BenchEntry> {
        let mut entry = BenchEntry {
            label: String::new(),
            units: 0,
            loops_per_sec: Vec::new(),
            trace_overhead_pct: None,
        };
        self.expect(b'{')?;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "label" => entry.label = self.string()?,
                "units" => entry.units = self.number()? as usize,
                "trace_overhead_pct" => entry.trace_overhead_pct = Some(self.number()?),
                "loops_per_sec" => {
                    self.expect(b'{')?;
                    if self.peek_is(b'}') {
                        self.expect(b'}')?;
                    } else {
                        loop {
                            let name = self.string()?;
                            self.expect(b':')?;
                            let v = self.number()?;
                            entry.loops_per_sec.push((name, v));
                            if !self.comma_or_end(b'}')? {
                                break;
                            }
                        }
                    }
                }
                other => return Err(format!("unexpected entry key {other:?}")),
            }
            if !self.comma_or_end(b'}')? {
                return Ok(entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BenchEntry> {
        vec![
            BenchEntry {
                label: "pr2-baseline".into(),
                units: 78,
                loops_per_sec: vec![
                    ("serial/no-cache".into(), 154.0),
                    ("serial/cached".into(), 214.5),
                ],
                trace_overhead_pct: None,
            },
            BenchEntry {
                label: "pr6-trace-neutrality".into(),
                units: 78,
                loops_per_sec: vec![("serial/no-cache".into(), 352.0)],
                trace_overhead_pct: Some(1.25),
            },
        ]
    }

    #[test]
    fn render_parse_roundtrip() {
        let entries = sample();
        let text = render(&entries);
        assert_eq!(parse_entries(&text).unwrap(), entries);
    }

    #[test]
    fn empty_history_roundtrips() {
        let text = render(&[]);
        assert_eq!(parse_entries(&text).unwrap(), vec![]);
    }

    #[test]
    fn labels_with_quotes_survive() {
        let entries = vec![BenchEntry {
            label: "a\"b\\c".into(),
            units: 1,
            loops_per_sec: vec![],
            trace_overhead_pct: None,
        }];
        assert_eq!(parse_entries(&render(&entries)).unwrap(), entries);
    }

    #[test]
    fn control_characters_escape_to_valid_json() {
        let entries = vec![BenchEntry {
            label: "a\tb\rc\u{1}d".into(),
            units: 1,
            loops_per_sec: vec![],
            trace_overhead_pct: None,
        }];
        let text = render(&entries);
        // No raw control characters inside the document.
        assert!(!text
            .chars()
            .any(|c| (c as u32) < 0x20 && c != '\n' && c != ' '));
        assert!(text.contains("\\u0009"));
        assert_eq!(parse_entries(&text).unwrap(), entries);
    }

    #[test]
    fn append_accumulates_on_disk() {
        let dir = std::env::temp_dir().join(format!("gpsched-traj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_engine.json");
        let _ = std::fs::remove_file(&path);
        for e in sample() {
            append_entry(&path, e).unwrap();
        }
        let back = read_entries(&path).unwrap();
        assert_eq!(back, sample());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_file_is_an_error_not_data_loss() {
        let dir = std::env::temp_dir().join(format!("gpsched-traj-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_engine.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(read_entries(&path).is_err());
        assert!(append_entry(
            &path,
            BenchEntry {
                label: "x".into(),
                units: 0,
                loops_per_sec: vec![],
                trace_overhead_pct: None
            }
        )
        .is_err());
        // The malformed file is untouched.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{ not json");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parses_hand_written_document() {
        let text = r#"{
            "bench": "engine_throughput",
            "entries": [
                { "label": "x", "units": 10,
                  "loops_per_sec": { "a": 1.5, "b": 2e2 } },
                { "label": "y", "units": 10,
                  "loops_per_sec": { "a": 1.5 },
                  "trace_overhead_pct": 0.75 }
            ]
        }"#;
        let e = parse_entries(text).unwrap();
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].units, 10);
        assert_eq!(e[0].loops_per_sec[1], ("b".into(), 200.0));
        assert_eq!(e[0].trace_overhead_pct, None);
        assert_eq!(e[1].trace_overhead_pct, Some(0.75));
    }
}
