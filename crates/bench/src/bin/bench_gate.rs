//! Perf-neutrality gate over `BENCH_engine.json`.
//!
//! ```text
//! bench-gate --file BENCH_engine.json \
//!            --baseline pr5-topology-neutrality \
//!            --candidate pr6-trace-neutrality \
//!            --config serial/no-cache \
//!            --max-regress-pct 5
//! ```
//!
//! A *negative* `--max-regress-pct` turns the gate into a speedup
//! requirement (e.g. `-100` demands the candidate be at least 2× the
//! baseline). `--max-trace-overhead-pct N` additionally requires the
//! candidate entry to carry a `trace_overhead_pct` measurement of at
//! most N percent.
//!
//! Looks up the named configuration's loops/sec in the *latest* entry
//! carrying each label and fails (exit 1) when the candidate regresses
//! beyond the threshold. Both entries come from the committed trajectory
//! file, so the comparison is same-machine by construction — CI re-records
//! the candidate before gating rather than comparing against numbers
//! measured on different hardware.

use gpsched_bench::trajectory::{read_entries, BenchEntry};
use std::path::Path;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("bench-gate: {msg}");
    exit(2)
}

fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return Some(
                it.next()
                    .unwrap_or_else(|| fail(&format!("{flag} needs a value"))),
            );
        }
    }
    None
}

/// The latest entry with `label` (labels may repeat across runs).
fn latest<'a>(entries: &'a [BenchEntry], label: &str) -> Option<&'a BenchEntry> {
    entries.iter().rev().find(|e| e.label == label)
}

fn rate(entry: &BenchEntry, config: &str) -> Option<f64> {
    entry
        .loops_per_sec
        .iter()
        .find(|(n, _)| n == config)
        .map(|&(_, v)| v)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let file = opt_value(&args, "--file").unwrap_or("BENCH_engine.json");
    let baseline = opt_value(&args, "--baseline").unwrap_or_else(|| fail("--baseline required"));
    let candidate = opt_value(&args, "--candidate").unwrap_or_else(|| fail("--candidate required"));
    let config = opt_value(&args, "--config").unwrap_or("serial/no-cache");
    let max_regress: f64 = opt_value(&args, "--max-regress-pct")
        .unwrap_or("5")
        .parse()
        .unwrap_or_else(|_| fail("--max-regress-pct needs a number"));
    let max_trace_overhead: Option<f64> = opt_value(&args, "--max-trace-overhead-pct").map(|v| {
        v.parse()
            .unwrap_or_else(|_| fail("--max-trace-overhead-pct needs a number"))
    });

    let entries =
        read_entries(Path::new(file)).unwrap_or_else(|e| fail(&format!("cannot read {file}: {e}")));
    let base = latest(&entries, baseline)
        .unwrap_or_else(|| fail(&format!("no entry labelled `{baseline}` in {file}")));
    let cand = latest(&entries, candidate)
        .unwrap_or_else(|| fail(&format!("no entry labelled `{candidate}` in {file}")));
    let base_rate = rate(base, config)
        .unwrap_or_else(|| fail(&format!("`{baseline}` has no `{config}` configuration")));
    let cand_rate = rate(cand, config)
        .unwrap_or_else(|| fail(&format!("`{candidate}` has no `{config}` configuration")));
    if base_rate <= 0.0 {
        fail(&format!("`{baseline}` {config} rate is not positive"));
    }

    let regress_pct = (1.0 - cand_rate / base_rate) * 100.0;
    println!(
        "bench-gate: {config}: {candidate} {cand_rate:.1} vs {baseline} {base_rate:.1} loops/s \
         ({:+.1}% change, limit {:+.1}%)",
        -regress_pct, -max_regress
    );
    if let Some(pct) = cand.trace_overhead_pct {
        println!("bench-gate: {candidate} enabled-tracing overhead: {pct:.2}%");
    }
    if let Some(limit) = max_trace_overhead {
        // The enabled-tracing overhead ceiling: spans are meant to be
        // always-on observability, so the candidate must carry the
        // measurement and it must stay under the limit.
        let pct = cand.trace_overhead_pct.unwrap_or_else(|| {
            fail(&format!(
                "`{candidate}` has no trace_overhead_pct but --max-trace-overhead-pct was given"
            ))
        });
        if pct > limit {
            eprintln!(
                "bench-gate: FAIL — {candidate} enabled-tracing overhead {pct:.2}% (> {limit:.1}%)"
            );
            exit(1);
        }
    }
    if regress_pct > max_regress {
        eprintln!("bench-gate: FAIL — {config} regressed {regress_pct:.1}% (> {max_regress:.1}%)");
        exit(1);
    }
    println!("bench-gate: OK");
}
