//! Synthetic-workload throughput: corpus generation and conformance
//! auditing, the two costs that size the conformance lane's
//! `GPSCHED_SYNTH_BUDGET`.
//!
//! * `gen/<preset>` — loops generated per second by `engine::gen`
//!   (serial; generation is memory-bound and already sub-millisecond
//!   per loop, this guards against regressions);
//! * `audit/<preset>` — conformance units audited per second (schedule
//!   with GP + full simulator replay), the per-unit price of the
//!   `tests/synth_conformance.rs` sweep.
//!
//! `GPSCHED_BENCH_QUICK` shrinks sample counts for CI smoke runs.

use gpsched::prelude::*;
use gpsched_bench::Group;
use gpsched_engine::conformance::audit_unit;
use gpsched_engine::generate_corpus;

fn main() {
    let samples = if std::env::var_os("GPSCHED_BENCH_QUICK").is_some() {
        3
    } else {
        10
    };
    let presets = ["recurrence-heavy", "wide-ilp", "mem-bound"];
    let count = 30usize;
    let machine = MachineConfig::two_cluster(32, 1, 1);
    let gp = AlgorithmSpec::parse("gp").expect("bundled spec");

    eprintln!("\n--- synth generation + conformance audit ---");
    let group = Group::new("synth_stress").sample_size(samples);
    for preset_name in presets {
        let profile = gpsched_workloads::preset(preset_name).expect("bundled preset");
        let t = group.bench(&format!("gen/{preset_name}"), || {
            std::hint::black_box(generate_corpus(preset_name, &profile, 1, count, 1).len())
        });
        println!(
            "synth_stress/gen/{preset_name}: {:.0} loops-generated/sec",
            t.per_second(count)
        );

        let corpus = generate_corpus(preset_name, &profile, 1, count, 1);
        let t = group.bench(&format!("audit/{preset_name}"), || {
            corpus
                .iter()
                .map(|ddg| {
                    audit_unit(ddg, &machine, gp)
                        .expect("catalog conforms")
                        .cycles
                })
                .sum::<u64>()
        });
        println!(
            "synth_stress/audit/{preset_name}: {:.0} units-audited/sec",
            t.per_second(count)
        );
    }
}
