//! **Table 2** — average CPU time to compute the schedule, per algorithm
//! and machine configuration.
//!
//! The paper reports URACAM 2–7× slower than Fixed/GP (it tries every
//! cluster for every node). The harness measures the same quantity here:
//! one benchmark = scheduling every loop of one synthetic SPECfp95
//! program.

use gpsched::prelude::*;
use gpsched_bench::Group;
use std::hint::black_box;

fn main() {
    let suite = spec_suite();
    // A representative mid-size program keeps bench time sane.
    let program = suite
        .iter()
        .find(|p| p.name == "su2cor")
        .expect("program exists");
    let machines = [
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::two_cluster(64, 1, 2),
        MachineConfig::four_cluster(32, 1, 1),
        MachineConfig::four_cluster(64, 1, 2),
    ];

    let group = Group::new("table2_sched_time").sample_size(10);
    for machine in &machines {
        for algo in Algorithm::ALL {
            let id = format!("{}/{}", machine.short_name(), algo.name());
            group.bench(&id, || {
                for ddg in &program.loops {
                    let r = schedule_loop(black_box(ddg), machine, algo).expect("schedulable");
                    black_box(r.schedule.ii());
                }
            });
        }
    }
}
