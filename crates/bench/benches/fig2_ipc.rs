//! **Figure 2** — IPC with a 1-cycle bus.
//!
//! The harness times the schedule generation per configuration; the actual
//! IPC series (the figure's bars) is printed once before sampling so a
//! bench run regenerates the figure's data.

use gpsched::prelude::*;
use gpsched_bench::Group;
use gpsched_eval::figures::series_for;
use std::hint::black_box;

fn main() {
    let suite = spec_suite();

    // Print the reproduced figure once (full suite).
    eprintln!("\n--- Figure 2 data (1 bus, latency 1) ---");
    for (clusters, regs) in [(2u32, 32u32), (2, 64), (4, 32), (4, 64)] {
        let machine = match clusters {
            2 => MachineConfig::two_cluster(regs, 1, 1),
            _ => MachineConfig::four_cluster(regs, 1, 1),
        };
        let s = series_for(&suite, &machine, "fig2");
        let a = s.average();
        eprintln!(
            "{}: unified {:.3} URACAM {:.3} Fixed {:.3} GP {:.3} (GP vs URACAM {:+.1}%)",
            s.machine,
            a.unified,
            a.uracam,
            a.fixed,
            a.gp,
            (s.gp_speedup_over_uracam() - 1.0) * 100.0
        );
    }

    // Bench the GP pipeline per configuration on one program.
    let program = suite.iter().find(|p| p.name == "swim").expect("exists");
    let group = Group::new("fig2_gp_pipeline").sample_size(10);
    for (clusters, regs) in [(2u32, 32u32), (2, 64), (4, 32), (4, 64)] {
        let machine = match clusters {
            2 => MachineConfig::two_cluster(regs, 1, 1),
            _ => MachineConfig::four_cluster(regs, 1, 1),
        };
        group.bench(&machine.short_name(), || {
            for ddg in &program.loops {
                black_box(
                    schedule_loop(black_box(ddg), &machine, Algorithm::Gp)
                        .expect("schedulable")
                        .ipc(),
                );
            }
        });
    }
}
