//! Ablation: the selective re-partitioning rule (§3.1's conclusion calls
//! it the most effective variant).
//!
//! Compares the full GP driver (re-partition iff `IIbus > II`) against the
//! Fixed Partition driver (never re-partition, no escape hatch) on the
//! loops where the difference shows, printing achieved IIs once and
//! benching both control flows.

use gpsched::prelude::*;
use gpsched::sched::drivers::{fixed_partition, gp, DriverConfig};
use gpsched_bench::Group;
use std::hint::black_box;

fn main() {
    let suite = spec_suite();
    let machine = MachineConfig::four_cluster(32, 1, 2);
    let cfg = DriverConfig::default();
    let popts = PartitionOptions::default();

    eprintln!("\n--- repartition ablation (4-cluster, 32 regs, 2-cycle bus) ---");
    let mut gp_ii = 0i64;
    let mut fx_ii = 0i64;
    let mut reparts = 0usize;
    // Keep only loops both drivers can modulo-schedule (the rare II-cap
    // cases would take the list fallback in the public API and tell us
    // nothing about the re-partitioning rule).
    let loops: Vec<_> = suite
        .iter()
        .flat_map(|p| p.loops.iter().cloned())
        .filter(|ddg| {
            gp(ddg, &machine, &popts, &cfg).is_ok()
                && fixed_partition(ddg, &machine, &popts, &cfg).is_ok()
        })
        .take(16)
        .collect();
    for ddg in &loops {
        let g = gp(ddg, &machine, &popts, &cfg).expect("pre-filtered");
        let f = fixed_partition(ddg, &machine, &popts, &cfg).expect("pre-filtered");
        gp_ii += g.schedule.ii();
        fx_ii += f.schedule.ii();
        reparts += g.repartitions;
    }
    eprintln!(
        "GP Σ II = {gp_ii} ({reparts} repartitions), Fixed Σ II = {fx_ii} over {} loops",
        loops.len()
    );

    let group = Group::new("ablation_repartition").sample_size(10);
    group.bench("gp-selective", || {
        for ddg in &loops {
            black_box(
                gp(black_box(ddg), &machine, &popts, &cfg)
                    .expect("pre-filtered")
                    .schedule
                    .ii(),
            );
        }
    });
    group.bench("fixed-never", || {
        for ddg in &loops {
            black_box(
                fixed_partition(black_box(ddg), &machine, &popts, &cfg)
                    .expect("pre-filtered")
                    .schedule
                    .ii(),
            );
        }
    });
}
