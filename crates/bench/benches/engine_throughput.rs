//! Engine throughput: loops scheduled per second through the batch
//! executor, the headline number future PRs track for perf trajectory.
//!
//! Three configurations are reported:
//!
//! * `serial/no-cache` — one worker, every unit pays its own MII and
//!   partitioning (the honest per-loop cost);
//! * `serial/cached` — one worker with the content-hash memo cache (what
//!   repeated corpora and multi-algorithm sweeps actually pay);
//! * `parallel/cached` — all host CPUs (on multi-core hosts this is the
//!   deployment configuration; on a 1-CPU host it measures pool overhead).

use gpsched::prelude::*;
use gpsched_bench::Group;
use gpsched_engine::{run_sweep, SweepOptions};

fn job() -> JobSpec {
    // A mid-size, fixed workload: 2 programs of the suite on two clustered
    // machines under the three modulo algorithms.
    let suite = spec_suite();
    JobSpec::new()
        .programs(&suite[..2])
        .machines([
            MachineConfig::two_cluster(32, 1, 1),
            MachineConfig::four_cluster(64, 1, 2),
        ])
        .algorithms(Algorithm::MODULO)
}

fn main() {
    let job = job();
    let units = job.unit_count();
    eprintln!("\n--- engine throughput ({units} units/run) ---");

    let group = Group::new("engine_throughput").sample_size(10);
    let configs = [
        (
            "serial/no-cache",
            SweepOptions {
                workers: 1,
                use_cache: false,
            },
        ),
        (
            "serial/cached",
            SweepOptions {
                workers: 1,
                use_cache: true,
            },
        ),
        (
            "parallel/cached",
            SweepOptions {
                workers: 0,
                use_cache: true,
            },
        ),
    ];
    for (name, opts) in configs {
        let t = group.bench(name, || {
            std::hint::black_box(run_sweep(&job, &opts, None).stats.units)
        });
        println!(
            "engine_throughput/{name}: {:.0} loops-scheduled/sec",
            t.per_second(units)
        );
    }
}
