//! Engine throughput: loops scheduled per second through the batch
//! executor, the headline number future PRs track for perf trajectory.
//!
//! Three configurations are reported:
//!
//! * `serial/no-cache` — one worker, every unit pays its own MII and
//!   partitioning (the honest per-loop cost);
//! * `serial/cached` — one worker with the content-hash memo cache (what
//!   repeated corpora and multi-algorithm sweeps actually pay);
//! * `parallel/cached` — all host CPUs (on multi-core hosts this is the
//!   deployment configuration; on a 1-CPU host it measures pool overhead);
//! * `serial/traced` — serial/no-cache again with a trace session
//!   *active*, so the entry records the cost of enabled tracing
//!   (`trace_overhead_pct`). Measured in paired, interleaved rounds (each
//!   round runs the sweep once untraced, then once traced) so ambient
//!   machine noise hits both arms alike — the 1-CPU reference container's
//!   load is bimodal enough that arms measured minutes apart can drift by
//!   more than the overhead itself. Disabled-trace neutrality is what
//!   comparing `serial/no-cache` across entries shows (see the
//!   `bench-gate` bin).
//!
//! Besides the human-readable lines, the run appends a machine-readable
//! entry to `BENCH_engine.json` (see [`gpsched_bench::trajectory`]):
//!
//! * `GPSCHED_BENCH_JSON`  — output path (default `BENCH_engine.json`);
//! * `GPSCHED_BENCH_LABEL` — entry label (default `local`);
//! * `GPSCHED_BENCH_QUICK` — when set, 3 samples instead of 10 (CI smoke).

use gpsched::prelude::*;
use gpsched_bench::trajectory::{append_entry, BenchEntry};
use gpsched_bench::Group;
use gpsched_engine::{run_sweep, SweepOptions};
use std::path::PathBuf;

fn job() -> JobSpec {
    // A mid-size, fixed workload: 2 programs of the suite on two clustered
    // machines under the three modulo algorithms.
    let suite = spec_suite();
    JobSpec::new()
        .programs(&suite[..2])
        .machines([
            MachineConfig::two_cluster(32, 1, 1),
            MachineConfig::four_cluster(64, 1, 2),
        ])
        .algorithms(Algorithm::MODULO)
}

fn large_job() -> JobSpec {
    // The size-stratified series: the top-decile op-count loops of the
    // whole suite. Kernel-level wins concentrate in big bodies (more
    // constraint edges, more relaxation rounds, more II retries) and are
    // averaged away by the many small loops of the mixed workload above;
    // this series tracks them separately.
    let mut loops: Vec<_> = spec_suite().into_iter().flat_map(|p| p.loops).collect();
    loops.sort_by_key(|d| std::cmp::Reverse(d.op_count()));
    loops.truncate(loops.len().div_ceil(10));
    let mut job = JobSpec::new();
    for d in loops {
        job = job.loop_in("large", d);
    }
    job.machines([
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::four_cluster(64, 1, 2),
    ])
    .algorithms(Algorithm::MODULO)
}

fn main() {
    let job = job();
    let units = job.unit_count();
    eprintln!("\n--- engine throughput ({units} units/run) ---");

    let samples = if std::env::var_os("GPSCHED_BENCH_QUICK").is_some() {
        3
    } else {
        10
    };
    let group = Group::new("engine_throughput").sample_size(samples);
    let configs = [
        (
            "serial/no-cache",
            SweepOptions {
                workers: 1,
                use_cache: false,
                progress: false,
            },
        ),
        (
            "serial/cached",
            SweepOptions {
                workers: 1,
                use_cache: true,
                progress: false,
            },
        ),
        (
            "parallel/cached",
            SweepOptions {
                workers: 0,
                use_cache: true,
                progress: false,
            },
        ),
    ];
    let mut loops_per_sec = Vec::new();
    for (name, opts) in configs {
        let t = group.bench(name, || {
            std::hint::black_box(run_sweep(&job, &opts, None).stats.units)
        });
        println!(
            "engine_throughput/{name}: {:.0} loops-scheduled/sec",
            t.per_second(units)
        );
        loops_per_sec.push((name.to_string(), t.per_second(units)));
    }

    // The large-units series, serial/no-cache (the honest per-loop cost on
    // the biggest bodies).
    let large = large_job();
    let large_units = large.unit_count();
    eprintln!("--- large-units series ({large_units} units/run) ---");
    let large_opts = SweepOptions {
        workers: 1,
        use_cache: false,
        progress: false,
    };
    let t = group.bench("large-units/no-cache", || {
        std::hint::black_box(run_sweep(&large, &large_opts, None).stats.units)
    });
    println!(
        "engine_throughput/large-units/no-cache: {:.0} loops-scheduled/sec",
        t.per_second(large_units)
    );
    loops_per_sec.push((
        "large-units/no-cache".to_string(),
        t.per_second(large_units),
    ));

    // The serial/no-cache workload once more, inside an active trace
    // session: the enabled-tracing cost, recorded per entry so the ≤1%
    // disabled / low-single-digit enabled overhead budget stays auditable.
    // Paired rounds: each runs the sweep untraced, then traced, and the
    // overhead compares the mins of the two interleaved series.
    let traced_opts = SweepOptions {
        workers: 1,
        use_cache: false,
        progress: false,
    };
    let (mut min_plain, mut min_traced) = (f64::INFINITY, f64::INFINITY);
    let (mut spans, mut dropped) = (0, 0);
    for _ in 0..samples {
        let t0 = std::time::Instant::now();
        std::hint::black_box(run_sweep(&job, &traced_opts, None).stats.units);
        min_plain = min_plain.min(t0.elapsed().as_secs_f64());

        let session = gpsched_trace::TraceSession::start();
        let t1 = std::time::Instant::now();
        std::hint::black_box(run_sweep(&job, &traced_opts, None).stats.units);
        min_traced = min_traced.min(t1.elapsed().as_secs_f64());
        let trace = session.finish();
        spans = trace.spans.len();
        dropped += trace.dropped;
    }
    eprintln!(
        "engine_throughput/serial/traced: min {:.3} ms (paired untraced min {:.3} ms, \
         {samples} rounds)",
        min_traced * 1e3,
        min_plain * 1e3,
    );
    let traced_rate = units as f64 / min_traced;
    println!("engine_throughput/serial/traced: {traced_rate:.0} loops-scheduled/sec");
    loops_per_sec.push(("serial/traced".to_string(), traced_rate));
    let trace_overhead_pct = (min_traced / min_plain - 1.0) * 100.0;
    println!(
        "engine_throughput/trace-overhead: {trace_overhead_pct:.2}% \
         ({spans} spans captured, {dropped} dropped)"
    );

    // Default to the workspace root (cargo runs benches from the package
    // dir), falling back to the CWD when run outside cargo.
    let path = std::env::var("GPSCHED_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            let mut p = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap_or_default());
            p.pop();
            p.pop();
            p.join("BENCH_engine.json")
        });
    let label = std::env::var("GPSCHED_BENCH_LABEL").unwrap_or_else(|_| "local".into());
    let entry = BenchEntry {
        label,
        units,
        loops_per_sec,
        trace_overhead_pct: Some(trace_overhead_pct),
    };
    match append_entry(&path, entry) {
        Ok(()) => eprintln!("appended trajectory entry to {}", path.display()),
        Err(e) => eprintln!("could not update {}: {e}", path.display()),
    }
}
