//! Ablation: the two refinement passes of §3.2.2 — workload balance and
//! cut-impact minimization — switched off one at a time.
//!
//! Prints the resulting partition quality once, then benches the
//! partitioning cost of each variant.

use gpsched::partition::refine::RefineOptions;
use gpsched::partition::{partition_ddg, PartitionOptions};
use gpsched::prelude::*;
use gpsched_bench::Group;
use std::hint::black_box;

fn variants() -> Vec<(&'static str, PartitionOptions)> {
    let mk = |balance, cut| PartitionOptions {
        refine: RefineOptions {
            balance,
            cut,
            ..RefineOptions::default()
        },
        ..PartitionOptions::default()
    };
    vec![
        ("full", mk(true, true)),
        ("no-balance", mk(false, true)),
        ("no-cut", mk(true, false)),
        ("none", mk(false, false)),
    ]
}

fn main() {
    let suite = spec_suite();
    let loops: Vec<_> = suite
        .iter()
        .flat_map(|p| p.loops.iter().cloned())
        .filter(|l| l.op_count() >= 30)
        .take(8)
        .collect();
    let machine = MachineConfig::two_cluster(32, 1, 1);

    eprintln!("\n--- refinement ablation (2-cluster, 32 regs) ---");
    for (name, opts) in variants() {
        let mut exec = 0i64;
        let mut ii = 0i64;
        for ddg in &loops {
            let mii = gpsched::ddg::mii::mii(ddg, &machine);
            let r = partition_ddg(ddg, &machine, mii, &opts);
            exec += r.cost.exec_time;
            ii += r.cost.ii_effective;
        }
        eprintln!("{name:>10}: Σ estimated exec {exec}, Σ effective II {ii}");
    }

    let group = Group::new("ablation_refine").sample_size(10);
    for (name, opts) in variants() {
        group.bench(name, || {
            for ddg in &loops {
                let mii = gpsched::ddg::mii::mii(ddg, &machine);
                black_box(
                    partition_ddg(black_box(ddg), &machine, mii, &opts)
                        .cost
                        .comm_count,
                );
            }
        });
    }
}
