//! Portfolio racing cost and quality vs the fixed catalog.
//!
//! The portfolio spec ranks the catalog per loop and races the top
//! candidates, so it does strictly more scheduling work per unit than
//! any single fixed spec — the early-II cutoff and failure budget exist
//! to bound that overhead. This bench measures both sides of the
//! bargain on the generator preset corpora:
//!
//! * **cost** — loops/sec of a one-worker, cache-off sweep under
//!   `portfolio`, against the *geometric mean* of the same sweep under
//!   each fixed catalog spec alone (the cost of not knowing which fixed
//!   spec to pick). The CI gate requires portfolio ≥ half the geomean,
//!   i.e. racing costs at most 2× a single algorithm;
//! * **quality** — aggregate IPC (`Σ ops·trips / Σ cycles`, ×1000 so the
//!   trajectory file's one-decimal rates keep three decimals of IPC)
//!   under `portfolio`, against the *best* fixed spec's aggregate. The
//!   CI gate requires no regression: the selector must match the best
//!   fixed algorithm it could have been.
//!
//! Appends two entries to `BENCH_engine.json`: `<label>-fixed` (geomean
//! cost, best-fixed IPC) and `<label>` (portfolio cost, portfolio IPC),
//! with `<label>` from `GPSCHED_BENCH_LABEL` (default `local`).
//! `GPSCHED_BENCH_QUICK` drops to 3 samples.

use gpsched::machine::MachineConfig;
use gpsched::sched::AlgorithmSpec;
use gpsched_bench::trajectory::{append_entry, BenchEntry};
use gpsched_bench::Group;
use gpsched_engine::conformance::conformance_corpus;
use gpsched_engine::{run_sweep, JobSpec, SweepOptions, SweepResult};
use std::path::PathBuf;

fn corpus_job(spec: AlgorithmSpec) -> JobSpec {
    let mut job = JobSpec::new();
    for case in conformance_corpus(36, 0xC0DE) {
        job = job.loop_in(case.preset, case.ddg);
    }
    job.machines([
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::four_cluster(64, 1, 2),
    ])
    .algorithms([spec])
}

/// Aggregate IPC over every record, ×1000 (milli-IPC), so the trajectory
/// file's `%.1f` rate formatting preserves three decimals of IPC.
fn milli_ipc(result: &SweepResult) -> f64 {
    let (mut work, mut cycles) = (0u128, 0u128);
    for r in &result.records {
        work += r.ops as u128 * r.trips as u128;
        cycles += r.cycles as u128;
    }
    1000.0 * work as f64 / cycles.max(1) as f64
}

fn main() {
    let samples = if std::env::var_os("GPSCHED_BENCH_QUICK").is_some() {
        3
    } else {
        10
    };
    let opts = SweepOptions {
        workers: 1,
        use_cache: false,
        progress: false,
    };
    let group = Group::new("portfolio_race").sample_size(samples);

    // Fixed catalog side: per-spec sweep rate and aggregate IPC.
    let mut log_rate_sum = 0.0f64;
    let mut best_fixed_ipc = 0.0f64;
    let mut units = 0;
    for spec in AlgorithmSpec::CATALOG {
        let job = corpus_job(spec);
        units = job.unit_count();
        let t = group.bench(&format!("fixed/{spec}"), || {
            std::hint::black_box(run_sweep(&job, &opts, None).stats.units)
        });
        log_rate_sum += t.per_second(units).ln();
        let ipc = milli_ipc(&run_sweep(&job, &opts, None));
        println!("portfolio_race/fixed/{spec}: aggregate milli-IPC {ipc:.1}");
        best_fixed_ipc = best_fixed_ipc.max(ipc);
    }
    let geomean_rate = (log_rate_sum / AlgorithmSpec::CATALOG.len() as f64).exp();
    println!("portfolio_race/fixed/geomean: {geomean_rate:.0} loops-scheduled/sec");
    println!("portfolio_race/fixed/best: aggregate milli-IPC {best_fixed_ipc:.1}");

    // Portfolio side: same corpus, same knobs, the selector pays for its
    // feature pass and raced candidates out of its own rate.
    let job = corpus_job(AlgorithmSpec::PORTFOLIO);
    let t = group.bench("portfolio", || {
        std::hint::black_box(run_sweep(&job, &opts, None).stats.units)
    });
    let portfolio_rate = t.per_second(units);
    let portfolio_ipc = milli_ipc(&run_sweep(&job, &opts, None));
    println!("portfolio_race/portfolio: {portfolio_rate:.0} loops-scheduled/sec");
    println!("portfolio_race/portfolio: aggregate milli-IPC {portfolio_ipc:.1}");
    println!(
        "portfolio_race/cost-ratio: {:.2}x a single fixed spec (gate: <= 2x)",
        geomean_rate / portfolio_rate
    );

    let path = std::env::var("GPSCHED_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            let mut p = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap_or_default());
            p.pop();
            p.pop();
            p.join("BENCH_engine.json")
        });
    let label = std::env::var("GPSCHED_BENCH_LABEL").unwrap_or_else(|_| "local".into());
    let fixed = BenchEntry {
        label: format!("{label}-fixed"),
        units,
        loops_per_sec: vec![
            ("portfolio/sweep".to_string(), geomean_rate),
            ("portfolio/milli-ipc".to_string(), best_fixed_ipc),
        ],
        trace_overhead_pct: None,
    };
    let portfolio = BenchEntry {
        label,
        units,
        loops_per_sec: vec![
            ("portfolio/sweep".to_string(), portfolio_rate),
            ("portfolio/milli-ipc".to_string(), portfolio_ipc),
        ],
        trace_overhead_pct: None,
    };
    match append_entry(&path, fixed).and_then(|()| append_entry(&path, portfolio)) {
        Ok(()) => eprintln!("appended trajectory entries to {}", path.display()),
        Err(e) => eprintln!("could not update {}: {e}", path.display()),
    }
}
