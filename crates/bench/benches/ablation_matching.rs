//! Ablation: exact blossom matching (the paper's LEDA call) vs greedy
//! heavy-edge matching during coarsening.
//!
//! Measures both the partitioning time and — printed once — the partition
//! quality (estimated execution time, communications) each strategy
//! produces.

use gpsched::partition::coarsen::MatchStrategy;
use gpsched::partition::{partition_ddg, PartitionOptions};
use gpsched::prelude::*;
use gpsched_bench::Group;
use std::hint::black_box;

fn main() {
    let suite = spec_suite();
    let loops: Vec<_> = suite
        .iter()
        .flat_map(|p| p.loops.iter().cloned())
        .filter(|l| l.op_count() >= 40)
        .take(6)
        .collect();
    let machine = MachineConfig::four_cluster(32, 1, 1);

    // Quality comparison, printed once.
    eprintln!("\n--- matching ablation (4-cluster, 32 regs) ---");
    for (name, strategy) in [
        ("exact", MatchStrategy::Exact),
        ("greedy", MatchStrategy::Greedy),
    ] {
        let opts = PartitionOptions {
            strategy,
            ..PartitionOptions::default()
        };
        let mut exec = 0i64;
        let mut comm = 0usize;
        for ddg in &loops {
            let mii = gpsched::ddg::mii::mii(ddg, &machine);
            let r = partition_ddg(ddg, &machine, mii, &opts);
            exec += r.cost.exec_time;
            comm += r.cost.comm_count;
        }
        eprintln!("{name:>6}: Σ estimated exec time {exec}, Σ comms {comm}");
    }

    let group = Group::new("ablation_matching").sample_size(10);
    for (name, strategy) in [
        ("exact", MatchStrategy::Exact),
        ("greedy", MatchStrategy::Greedy),
    ] {
        let opts = PartitionOptions {
            strategy,
            ..PartitionOptions::default()
        };
        group.bench(name, || {
            for ddg in &loops {
                let mii = gpsched::ddg::mii::mii(ddg, &machine);
                black_box(
                    partition_ddg(black_box(ddg), &machine, mii, &opts)
                        .cost
                        .exec_time,
                );
            }
        });
    }
}
