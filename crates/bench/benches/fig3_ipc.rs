//! **Figure 3** — IPC with a 2-cycle bus (the slower interconnect).
//!
//! Same structure as `fig2_ipc`; the bus latency doubles, so the clustered
//! machines fall further behind the unified bound and partition quality
//! matters more.

use gpsched::prelude::*;
use gpsched_bench::Group;
use gpsched_eval::figures::series_for;
use std::hint::black_box;

fn main() {
    let suite = spec_suite();

    eprintln!("\n--- Figure 3 data (1 bus, latency 2) ---");
    for (clusters, regs) in [(2u32, 32u32), (2, 64), (4, 32), (4, 64)] {
        let machine = match clusters {
            2 => MachineConfig::two_cluster(regs, 1, 2),
            _ => MachineConfig::four_cluster(regs, 1, 2),
        };
        let s = series_for(&suite, &machine, "fig3");
        let a = s.average();
        eprintln!(
            "{}: unified {:.3} URACAM {:.3} Fixed {:.3} GP {:.3} (GP vs URACAM {:+.1}%)",
            s.machine,
            a.unified,
            a.uracam,
            a.fixed,
            a.gp,
            (s.gp_speedup_over_uracam() - 1.0) * 100.0
        );
    }

    let program = suite.iter().find(|p| p.name == "applu").expect("exists");
    let group = Group::new("fig3_gp_pipeline").sample_size(10);
    for (clusters, regs) in [(2u32, 32u32), (4, 64)] {
        let machine = match clusters {
            2 => MachineConfig::two_cluster(regs, 1, 2),
            _ => MachineConfig::four_cluster(regs, 1, 2),
        };
        group.bench(&machine.short_name(), || {
            for ddg in &program.loops {
                black_box(
                    schedule_loop(black_box(ddg), &machine, Algorithm::Gp)
                        .expect("schedulable")
                        .ipc(),
                );
            }
        });
    }
}
