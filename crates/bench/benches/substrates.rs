//! Micro-benchmarks of the substrate algorithms: exact vs greedy matching,
//! RecMII search, SMS ordering and the cycle-level simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpsched::prelude::*;
use gpsched_graph::matching::{greedy_matching, maximum_weight_matching};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_edges(n: usize, m: usize, seed: u64) -> Vec<(usize, usize, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            (u, v, rng.gen_range(1..1000))
        })
        .filter(|&(u, v, _)| u != v)
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    for n in [32usize, 96, 192] {
        let edges = random_edges(n, n * 3, 42);
        group.bench_with_input(BenchmarkId::new("blossom", n), &edges, |b, edges| {
            b.iter(|| black_box(maximum_weight_matching(n, edges, false).pair_count()))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &edges, |b, edges| {
            b.iter(|| black_box(greedy_matching(n, edges).pair_count()))
        });
    }
    group.finish();
}

fn bench_recmii(c: &mut Criterion) {
    let profile = SynthProfile {
        ops: 80,
        recurrences: 4,
        ..SynthProfile::default()
    };
    let ddg = synth::synthesize("bench", &profile, 7);
    c.bench_function("rec_mii_80ops", |b| {
        b.iter(|| black_box(gpsched::ddg::mii::rec_mii(black_box(&ddg))))
    });
}

fn bench_sms_order(c: &mut Criterion) {
    let ddg = kernels::fir(100, 24);
    let ii = gpsched::ddg::mii::rec_mii(&ddg).max(8);
    c.bench_function("sms_order_fir24", |b| {
        b.iter(|| black_box(gpsched::sched::order::sms_order(black_box(&ddg), ii).len()))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let ddg = kernels::matmul_inner(500);
    let machine = MachineConfig::two_cluster(32, 1, 1);
    let r = schedule_loop(&ddg, &machine, Algorithm::Gp).expect("schedulable");
    c.bench_function("simulate_matmul_500trips", |b| {
        b.iter(|| black_box(simulate(&ddg, &machine, &r.schedule, 500).unwrap().cycles))
    });
}

criterion_group!(benches, bench_matching, bench_recmii, bench_sms_order, bench_simulator);
criterion_main!(benches);
