//! Micro-benchmarks of the substrate algorithms: exact vs greedy matching,
//! RecMII search, SMS ordering and the cycle-level simulator.

use gpsched::prelude::*;
use gpsched_bench::Group;
use gpsched_graph::matching::{greedy_matching, maximum_weight_matching};
use gpsched_workloads::rng::Prng;
use std::hint::black_box;

fn random_edges(n: usize, m: usize, seed: u64) -> Vec<(usize, usize, i64)> {
    let mut rng = Prng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            (u, v, rng.gen_range(1i64..1000))
        })
        .filter(|&(u, v, _)| u != v)
        .collect()
}

fn bench_matching(group: &Group) {
    for n in [32usize, 96, 192] {
        let edges = random_edges(n, n * 3, 42);
        group.bench(&format!("blossom/{n}"), || {
            black_box(maximum_weight_matching(n, &edges, false).pair_count())
        });
        group.bench(&format!("greedy/{n}"), || {
            black_box(greedy_matching(n, &edges).pair_count())
        });
    }
}

fn main() {
    let group = Group::new("substrates").sample_size(10);
    bench_matching(&group);

    let profile = SynthProfile {
        ops: 80,
        recurrences: 4,
        ..SynthProfile::default()
    };
    let ddg = synth::synthesize("bench", &profile, 7);
    group.bench("rec_mii_80ops", || {
        black_box(gpsched::ddg::mii::rec_mii(black_box(&ddg)))
    });

    let fir = kernels::fir(100, 24);
    let ii = gpsched::ddg::mii::rec_mii(&fir).max(8);
    group.bench("sms_order_fir24", || {
        black_box(gpsched::sched::order::sms_order(black_box(&fir), ii).len())
    });

    let mm = kernels::matmul_inner(500);
    let machine = MachineConfig::two_cluster(32, 1, 1);
    let r = schedule_loop(&mm, &machine, Algorithm::Gp).expect("schedulable");
    group.bench("simulate_matmul_500trips", || {
        black_box(simulate(&mm, &machine, &r.schedule, 500).unwrap().cycles)
    });
}
