//! Sustained daemon throughput: jobs served per second through
//! `gpsched-serve` under a stream of distinct scheduling jobs, the
//! deployment-shaped counterpart to `engine_throughput`'s in-process
//! rates. The daemon runs in-process on an ephemeral port; every job
//! travels the full wire path (HTTP submit → queue → executor → JSONL
//! stream back to the client).
//!
//! Three phases are reported:
//!
//! * `serve/jobs` *(cold)* — a fresh daemon and a fresh disk cache;
//!   every unit pays its own MII/partitioning. One pass by construction:
//!   a second pass over the same bodies would be warm.
//! * `serve/jobs` *(warm)* — the same jobs resubmitted to the same
//!   daemon; every seed comes from the in-memory memo cache.
//! * `serve/jobs` *(warm-restart)* — the daemon is dropped and a new one
//!   opened on the same cache file; the same jobs are served from the
//!   on-disk seed cache, the restart path the persistence exists for.
//!
//! Each phase appends its own `BENCH_engine.json` entry —
//! `<label>-serve-cold`, `<label>-serve-warm`, `<label>-serve-restart` —
//! all carrying the single config `serve/jobs`, so `bench-gate` can
//! require warm ≥ cold across the committed pair.
//!
//! Env: `GPSCHED_BENCH_JSON`, `GPSCHED_BENCH_LABEL`,
//! `GPSCHED_BENCH_QUICK` (6 jobs instead of 16).

use gpsched_bench::trajectory::{append_entry, BenchEntry};
use gpsched_engine::serialize_ddg;
use gpsched_engine::serve::{client, serve, ServeOptions};
use gpsched_workloads::{synth::synthesize, SynthProfile};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Distinct job bodies (different synth seeds, same machines/algorithms)
/// so the cold phase gets zero accidental memo hits across jobs.
fn job_bodies(count: usize) -> (Vec<String>, usize) {
    let profile = SynthProfile::default();
    let mut bodies = Vec::with_capacity(count);
    let mut units_per_job = 0;
    for j in 0..count {
        let mut ddg_text = String::new();
        let mut loops = 0;
        for i in 0..3u64 {
            let seed = (j as u64) * 100 + i;
            let ddg = synthesize(format!("l{j}_{i}"), &profile, seed);
            ddg_text.push_str(&serialize_ddg(&ddg));
            loops += 1;
        }
        let body = format!("group load\nmachines c2r32b1l1,c4r64b1l2\nalgos gp,list\n{ddg_text}");
        // loops × 2 machines × 2 algorithms
        units_per_job = loops * 4;
        bodies.push(body);
    }
    (bodies, units_per_job)
}

/// Submits every body, then drains every result stream; returns
/// (jobs/sec, total result lines).
fn run_phase(addr: &str, bodies: &[String]) -> (f64, usize) {
    let t0 = Instant::now();
    let ids: Vec<u64> = bodies
        .iter()
        .map(|b| client::submit(addr, b).expect("submit"))
        .collect();
    let mut lines = 0;
    for id in ids {
        lines += client::results(addr, id).expect("results").len();
    }
    let dt = t0.elapsed().as_secs_f64();
    (bodies.len() as f64 / dt, lines)
}

fn record(path: &Path, label: String, units: usize, rate: f64) {
    let entry = BenchEntry {
        label,
        units,
        loops_per_sec: vec![("serve/jobs".to_string(), rate)],
        trace_overhead_pct: None,
    };
    match append_entry(path, entry) {
        Ok(()) => {}
        Err(e) => eprintln!("could not update {}: {e}", path.display()),
    }
}

fn main() {
    let jobs = if std::env::var_os("GPSCHED_BENCH_QUICK").is_some() {
        6
    } else {
        16
    };
    let (bodies, units_per_job) = job_bodies(jobs);
    eprintln!("\n--- serve load ({jobs} jobs × {units_per_job} units) ---");

    let cache_dir = std::env::temp_dir().join(format!("gpsched-serve-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    std::fs::create_dir_all(&cache_dir).expect("cache dir");
    let cache_path = cache_dir.join("seeds.cache");

    let opts = ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        cache_path: Some(cache_path.clone()),
        ..ServeOptions::default()
    };

    // Cold + warm on one daemon.
    let server = serve(&opts).expect("daemon");
    let addr = server.addr().to_string();
    let (cold_rate, cold_lines) = run_phase(&addr, &bodies);
    println!("serve_load/cold: {cold_rate:.1} jobs/sec ({cold_lines} result lines)");
    let (warm_rate, _) = run_phase(&addr, &bodies);
    println!("serve_load/warm: {warm_rate:.1} jobs/sec (memo cache)");
    drop(server);

    // Warm restart: a new daemon on the persisted cache.
    let server = serve(&opts).expect("daemon restart");
    let addr = server.addr().to_string();
    let (restart_rate, _) = run_phase(&addr, &bodies);
    println!("serve_load/warm-restart: {restart_rate:.1} jobs/sec (disk cache)");
    let health = client::health(&addr).expect("health");
    drop(server);
    let _ = std::fs::remove_dir_all(&cache_dir);
    eprintln!("final daemon health: {}", health.trim());

    let path = std::env::var("GPSCHED_BENCH_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            let mut p = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap_or_default());
            p.pop();
            p.pop();
            p.join("BENCH_engine.json")
        });
    let label = std::env::var("GPSCHED_BENCH_LABEL").unwrap_or_else(|_| "local".into());
    record(
        &path,
        format!("{label}-serve-cold"),
        units_per_job,
        cold_rate,
    );
    record(
        &path,
        format!("{label}-serve-warm"),
        units_per_job,
        warm_rate,
    );
    record(
        &path,
        format!("{label}-serve-restart"),
        units_per_job,
        restart_rate,
    );
    eprintln!("appended serve trajectory entries to {}", path.display());
}
