//! # gpsched — graph-partitioning based instruction scheduling
//!
//! A Rust reproduction of *"Graph-Partitioning Based Instruction Scheduling
//! for Clustered Processors"* (Aletà, Codina, Sánchez, González — MICRO-34,
//! 2001).
//!
//! The paper's **GP scheme** generates software-pipelined (modulo) schedules
//! for clustered VLIW processors in two cooperating phases:
//!
//! 1. a **multilevel graph partitioner** assigns every operation of a loop
//!    to a cluster using a global view of the data-dependence graph,
//!    weighting edges by the execution-time cost of cutting them;
//! 2. a **URACAM-derived modulo scheduler** performs instruction
//!    scheduling, register allocation and spill-code generation in a single
//!    phase, following the partition and recomputing it selectively when
//!    the bus-imposed II bound makes that worthwhile.
//!
//! This crate is the facade: it re-exports the subsystem crates and the
//! high-level entry points.
//!
//! ## Quickstart
//!
//! ```
//! use gpsched::prelude::*;
//!
//! // y[i] = a*x[i] + y[i], 1000 iterations.
//! let ddg = kernels::daxpy(1000);
//!
//! // The paper's 2-cluster machine: 2 int / 2 fp / 2 mem units and 16
//! // registers per cluster, one 1-cycle bus.
//! let machine = MachineConfig::two_cluster(32, 1, 1);
//!
//! // Schedule with the proposed GP scheme and with the URACAM baseline.
//! let gp = schedule_loop(&ddg, &machine, Algorithm::Gp)?;
//! let uracam = schedule_loop(&ddg, &machine, Algorithm::Uracam)?;
//! assert!(gp.ipc() > 0.0 && uracam.ipc() > 0.0);
//!
//! // Validate the GP schedule cycle by cycle.
//! let report = simulate(&ddg, &machine, &gp.schedule, 1000).expect("valid");
//! assert_eq!(report.cycles, gp.schedule.cycles(1000));
//! # Ok::<(), gpsched::SchedError>(())
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`graph`] | graph containers + algorithms (SCC, longest paths, blossom matching) |
//! | [`machine`] | clustered VLIW machine model (Table 1) |
//! | [`ddg`] | loop data-dependence graphs, MII, timing |
//! | [`partition`] | the multilevel partitioner (§3.2) |
//! | [`sched`] | modulo scheduling: GP / Fixed / URACAM / List + list fallback (§3.1, §3.3) |
//! | [`sim`] | cycle-accurate schedule validation |
//! | [`workloads`] | kernels + the synthetic SPECfp95 suite + seeded synthesis |
//! | [`engine`] | parallel batch sweeps, MII/partition memo cache, `.ddg` interchange |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use gpsched_ddg as ddg;
pub use gpsched_engine as engine;
pub use gpsched_graph as graph;
pub use gpsched_machine as machine;
pub use gpsched_partition as partition;
pub use gpsched_sched as sched;
pub use gpsched_sim as sim;
pub use gpsched_workloads as workloads;

pub use gpsched_ddg::{Ddg, DdgBuilder, DdgError};
pub use gpsched_engine::{run_sweep, JobSpec, RunRecord, SweepOptions, SweepResult};
pub use gpsched_machine::{LatencyModel, MachineConfig, OpClass, ResourceKind};
pub use gpsched_partition::{partition_ddg, CostEvaluator, Partition, PartitionOptions};
pub use gpsched_sched::{
    schedule_loop, schedule_loop_spec, Algorithm, AlgorithmSpec, LoopResult, SchedError, Schedule,
};
pub use gpsched_sim::{simulate, SimError, SimReport};

/// Everything needed for typical use, in one import.
pub mod prelude {
    pub use gpsched_ddg::{mii, timing, Ddg, DdgBuilder};
    pub use gpsched_engine::{run_sweep, JobSpec, SweepOptions};
    pub use gpsched_machine::{table1_configs, MachineConfig, OpClass};
    pub use gpsched_partition::{partition_ddg, CostEvaluator, Partition, PartitionOptions};
    pub use gpsched_sched::{
        schedule_loop, schedule_loop_spec, Algorithm, AlgorithmSpec, LoopResult, Schedule,
    };
    pub use gpsched_sim::simulate;
    pub use gpsched_workloads::{kernels, spec_suite, synth, SynthProfile};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_coherent() {
        // The facade's types are the subsystem types (no duplication).
        let m: crate::MachineConfig = crate::machine::MachineConfig::unified(32);
        assert!(m.is_unified());
        let ddg = crate::workloads::kernels::daxpy(10);
        let r = crate::schedule_loop(&ddg, &m, crate::Algorithm::Gp).unwrap();
        assert!(r.ipc() > 0.0);
    }
}
