//! Property tests for the matching algorithms: the exact blossom matching is
//! compared against a brute-force optimum on small random graphs, and both
//! algorithms are checked for structural soundness on larger ones.

use gpsched_graph::matching::{greedy_matching, maximum_weight_matching, WeightedEdge};
use proptest::prelude::*;

/// Brute-force maximum weight matching by recursive edge enumeration.
fn brute_force_weight(n: usize, edges: &[WeightedEdge]) -> i64 {
    fn go(edges: &[WeightedEdge], used: &mut Vec<bool>, k: usize) -> i64 {
        if k == edges.len() {
            return 0;
        }
        let skip = go(edges, used, k + 1);
        let (u, v, w) = edges[k];
        if u != v && w > 0 && !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            let take = w + go(edges, used, k + 1);
            used[u] = false;
            used[v] = false;
            skip.max(take)
        } else {
            skip
        }
    }
    go(edges, &mut vec![false; n], 0)
}

/// Deduplicates parallel edges keeping the max weight (matching semantics).
fn dedup(n: usize, edges: Vec<(usize, usize, i64)>) -> Vec<WeightedEdge> {
    let mut best = std::collections::HashMap::new();
    for (u, v, w) in edges {
        let u = u % n;
        let v = v % n;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        let e = best.entry(key).or_insert(w);
        *e = (*e).max(w);
    }
    best.into_iter().map(|((u, v), w)| (u, v, w)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blossom_matches_brute_force(
        n in 2usize..9,
        raw in prop::collection::vec((0usize..8, 0usize..8, 1i64..50), 0..14),
    ) {
        let edges = dedup(n, raw);
        let exact = maximum_weight_matching(n, &edges, false);
        prop_assert_eq!(exact.weight(&edges), brute_force_weight(n, &edges));
    }

    #[test]
    fn blossom_at_least_greedy(
        n in 2usize..40,
        raw in prop::collection::vec((0usize..40, 0usize..40, 1i64..100), 0..120),
    ) {
        let edges = dedup(n, raw);
        let exact = maximum_weight_matching(n, &edges, false);
        let greedy = greedy_matching(n, &edges);
        prop_assert!(exact.weight(&edges) >= greedy.weight(&edges));
        // Greedy is a 1/2-approximation.
        prop_assert!(2 * greedy.weight(&edges) >= exact.weight(&edges));
    }

    #[test]
    fn matchings_are_valid(
        n in 1usize..30,
        raw in prop::collection::vec((0usize..30, 0usize..30, 1i64..60), 0..90),
    ) {
        let edges = dedup(n, raw);
        let edge_set: std::collections::HashSet<(usize, usize)> =
            edges.iter().map(|&(u, v, _)| (u.min(v), u.max(v))).collect();
        for m in [maximum_weight_matching(n, &edges, false), greedy_matching(n, &edges)] {
            for v in 0..n {
                if let Some(u) = m.mate(v) {
                    // Symmetric and supported by a real edge.
                    prop_assert_eq!(m.mate(u), Some(v));
                    prop_assert!(edge_set.contains(&(u.min(v), u.max(v))));
                }
            }
        }
    }

    #[test]
    fn max_cardinality_never_smaller(
        n in 2usize..12,
        raw in prop::collection::vec((0usize..12, 0usize..12, 1i64..30), 0..20),
    ) {
        let edges = dedup(n, raw);
        let plain = maximum_weight_matching(n, &edges, false);
        let card = maximum_weight_matching(n, &edges, true);
        prop_assert!(card.pair_count() >= plain.pair_count());
    }
}
