//! Property tests for the matching algorithms: the exact blossom matching is
//! compared against a brute-force optimum on small random graphs, and both
//! algorithms are checked for structural soundness on larger ones.
//!
//! Randomness comes from a tiny inlined SplitMix64 stream (the workspace
//! builds with no external crates), so every case is reproducible from its
//! printed seed.

use gpsched_graph::matching::{greedy_matching, maximum_weight_matching, WeightedEdge};

/// Minimal deterministic generator (SplitMix64); the full-featured version
/// lives in `gpsched_workloads::rng`, which this crate sits below.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        ((self.next() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }
}

/// Brute-force maximum weight matching by recursive edge enumeration.
fn brute_force_weight(n: usize, edges: &[WeightedEdge]) -> i64 {
    fn go(edges: &[WeightedEdge], used: &mut Vec<bool>, k: usize) -> i64 {
        if k == edges.len() {
            return 0;
        }
        let skip = go(edges, used, k + 1);
        let (u, v, w) = edges[k];
        if u != v && w > 0 && !used[u] && !used[v] {
            used[u] = true;
            used[v] = true;
            let take = w + go(edges, used, k + 1);
            used[u] = false;
            used[v] = false;
            skip.max(take)
        } else {
            skip
        }
    }
    go(edges, &mut vec![false; n], 0)
}

/// Deduplicates parallel edges keeping the max weight (matching semantics).
fn dedup(n: usize, edges: Vec<(usize, usize, i64)>) -> Vec<WeightedEdge> {
    let mut best = std::collections::HashMap::new();
    for (u, v, w) in edges {
        let u = u % n;
        let v = v % n;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        let e = best.entry(key).or_insert(w);
        *e = (*e).max(w);
    }
    best.into_iter().map(|((u, v), w)| (u, v, w)).collect()
}

/// Random edge list: `m` draws over `n` vertices with weights in
/// `[1, wmax]`, deduplicated.
fn random_graph(rng: &mut Rng, n: usize, m: usize, wmax: i64) -> Vec<WeightedEdge> {
    let raw = (0..m)
        .map(|_| {
            (
                rng.below(n),
                rng.below(n),
                1 + rng.below(wmax as usize) as i64,
            )
        })
        .collect();
    dedup(n, raw)
}

#[test]
fn blossom_matches_brute_force() {
    let mut rng = Rng(0x5eed_0001);
    for case in 0..64 {
        let n = rng.range(2, 9);
        let m = rng.below(14);
        let edges = random_graph(&mut rng, n, m, 49);
        let exact = maximum_weight_matching(n, &edges, false);
        assert_eq!(
            exact.weight(&edges),
            brute_force_weight(n, &edges),
            "case {case}: n={n} edges={edges:?}"
        );
    }
}

#[test]
fn blossom_at_least_greedy() {
    let mut rng = Rng(0x5eed_0002);
    for case in 0..64 {
        let n = rng.range(2, 40);
        let m = rng.below(120);
        let edges = random_graph(&mut rng, n, m, 99);
        let exact = maximum_weight_matching(n, &edges, false);
        let greedy = greedy_matching(n, &edges);
        assert!(
            exact.weight(&edges) >= greedy.weight(&edges),
            "case {case}: exact below greedy"
        );
        // Greedy is a 1/2-approximation.
        assert!(
            2 * greedy.weight(&edges) >= exact.weight(&edges),
            "case {case}: greedy below half of exact"
        );
    }
}

#[test]
fn matchings_are_valid() {
    let mut rng = Rng(0x5eed_0003);
    for case in 0..64 {
        let n = rng.range(1, 30);
        let m = rng.below(90);
        let edges = random_graph(&mut rng, n, m, 59);
        let edge_set: std::collections::HashSet<(usize, usize)> = edges
            .iter()
            .map(|&(u, v, _)| (u.min(v), u.max(v)))
            .collect();
        for m in [
            maximum_weight_matching(n, &edges, false),
            greedy_matching(n, &edges),
        ] {
            for v in 0..n {
                if let Some(u) = m.mate(v) {
                    // Symmetric and supported by a real edge.
                    assert_eq!(m.mate(u), Some(v), "case {case}");
                    assert!(edge_set.contains(&(u.min(v), u.max(v))), "case {case}");
                }
            }
        }
    }
}

#[test]
fn max_cardinality_never_smaller() {
    let mut rng = Rng(0x5eed_0004);
    for case in 0..64 {
        let n = rng.range(2, 12);
        let m = rng.below(20);
        let edges = random_graph(&mut rng, n, m, 29);
        let plain = maximum_weight_matching(n, &edges, false);
        let card = maximum_weight_matching(n, &edges, true);
        assert!(card.pair_count() >= plain.pair_count(), "case {case}");
    }
}
