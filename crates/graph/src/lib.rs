//! Graph containers and algorithms for the `gpsched` workspace.
//!
//! This crate is the lowest-level substrate of the reproduction of
//! *"Graph-Partitioning Based Instruction Scheduling for Clustered
//! Processors"* (Aletà et al., MICRO-34, 2001). Everything here is
//! implemented from scratch — no external graph crate is used.
//!
//! It provides:
//!
//! * [`DiGraph`]: a directed multigraph with node and edge payloads, the
//!   backing store for loop data-dependence graphs;
//! * [`UnGraph`]: an undirected weighted graph used by the multilevel
//!   partitioner during coarsening;
//! * [`NodeBitSet`]: a flat bitset over dense node indices, the
//!   allocation-free membership set used by the scheduler's ordering and
//!   the partitioner's inner loops;
//! * [`scc`]: Tarjan's strongly-connected-components algorithm (used to find
//!   recurrences);
//! * [`topo`]: topological ordering of the acyclic (distance-0) sub-DAG;
//! * [`longest_path`]: single-source/single-sink longest paths on DAGs,
//!   the engine behind the paper's `max_path` execution-time estimates;
//! * [`feasibility`]: detection of positive cycles in the modulo-scheduling
//!   constraint graph (edge weight `latency − II·distance`), the engine
//!   behind `RecMII`;
//! * [`matching`]: greedy heavy-edge matching and an exact maximum-weight
//!   matching (blossom algorithm), replacing the paper's use of LEDA;
//! * [`UnionFind`]: disjoint sets, used when contracting matched pairs.
//!
//! # Example
//!
//! ```
//! use gpsched_graph::{DiGraph, scc::tarjan_scc};
//!
//! let mut g: DiGraph<&str, u32> = DiGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! g.add_edge(a, b, 1);
//! g.add_edge(b, a, 2);
//! let comps = tarjan_scc(&g);
//! assert_eq!(comps.len(), 1); // a and b form one recurrence
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod digraph;
mod ids;
mod ugraph;
mod unionfind;

pub mod feasibility;
pub mod longest_path;
pub mod matching;
pub mod scc;
pub mod topo;

pub use bitset::NodeBitSet;
pub use digraph::DiGraph;
pub use ids::{EdgeId, NodeId};
pub use ugraph::{UnEdge, UnGraph};
pub use unionfind::UnionFind;
