//! A flat bitset over dense node indices.
//!
//! The scheduler's SMS ordering and the partitioner's inner loops need many
//! small membership sets (reachability, processed nodes, per-set members).
//! `HashSet<usize>` pays hashing and heap traffic on every probe; a bitset
//! over the dense `0..n` node-index space answers the same queries with one
//! shift and one mask, and union/clear become word-wide operations.

/// A fixed-capacity set of dense node indices backed by `u64` words.
///
/// # Example
///
/// ```
/// use gpsched_graph::NodeBitSet;
///
/// let mut s = NodeBitSet::new(100);
/// assert!(s.insert(3));
/// assert!(!s.insert(3)); // already present
/// s.insert(64);
/// assert!(s.contains(3) && s.contains(64) && !s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64]);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeBitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl NodeBitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeBitSet {
            words: vec![0u64; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The exclusive upper bound on storable indices.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Removes all elements, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Reinitialises the set to an empty set of the given capacity,
    /// reusing the allocation when possible.
    pub fn reset(&mut self, capacity: usize) {
        self.words.clear();
        self.words.resize(capacity.div_ceil(64), 0);
        self.capacity = capacity;
    }

    /// Returns `true` if `v` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity`.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        assert!(v < self.capacity, "index {v} out of capacity");
        self.words[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Inserts `v`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity`.
    #[inline]
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "index {v} out of capacity");
        let (w, m) = (v / 64, 1u64 << (v % 64));
        let fresh = self.words[w] & m == 0;
        self.words[w] |= m;
        fresh
    }

    /// Removes `v`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity`.
    #[inline]
    pub fn remove(&mut self, v: usize) -> bool {
        assert!(v < self.capacity, "index {v} out of capacity");
        let (w, m) = (v / 64, 1u64 << (v % 64));
        let present = self.words[w] & m != 0;
        self.words[w] &= !m;
        present
    }

    /// Number of elements in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Adds every element of `other` (capacities must match).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &NodeBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Copies the contents of `other` into `self` (capacities must match).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn copy_from(&mut self, other: &NodeBitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// Inserts every index `0..capacity`.
    pub fn set_all(&mut self) {
        self.words.fill(!0u64);
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
    }

    /// The backing words, 64 indices per word (low bit = lowest index).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words. Callers must not set bits at or
    /// above `capacity`.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeBitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.count(), 4);
        assert!(s.contains(129) && !s.contains(128));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
    }

    #[test]
    fn clear_and_reset() {
        let mut s = NodeBitSet::new(10);
        s.insert(7);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
        s.reset(200);
        assert_eq!(s.capacity(), 200);
        assert!(s.insert(199));
    }

    #[test]
    fn union_and_copy() {
        let mut a = NodeBitSet::new(70);
        let mut b = NodeBitSet::new(70);
        a.insert(1);
        b.insert(65);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(65));
        let mut c = NodeBitSet::new(70);
        c.copy_from(&a);
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![1, 65]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_panics() {
        NodeBitSet::new(5).contains(5);
    }

    #[test]
    fn set_all_respects_capacity() {
        for cap in [0usize, 1, 63, 64, 65, 130] {
            let mut s = NodeBitSet::new(cap);
            s.set_all();
            assert_eq!(s.count(), cap);
            assert_eq!(s.iter().collect::<Vec<_>>(), (0..cap).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = NodeBitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
