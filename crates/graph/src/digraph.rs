//! Directed multigraph with node and edge payloads.

use crate::ids::{EdgeId, NodeId};

#[derive(Clone, Debug)]
struct EdgeRecord<E> {
    src: NodeId,
    dst: NodeId,
    weight: E,
}

/// A directed multigraph with payloads on nodes and edges.
///
/// Nodes and edges are stored densely and are never removed; identifiers are
/// therefore stable across the lifetime of the graph. Parallel edges and
/// self-loops are allowed (loop-carried self-dependences are common in loop
/// DDGs).
///
/// # Example
///
/// ```
/// use gpsched_graph::DiGraph;
///
/// let mut g: DiGraph<&str, u32> = DiGraph::new();
/// let load = g.add_node("load");
/// let add = g.add_node("add");
/// let e = g.add_edge(load, add, 2);
/// assert_eq!(g.edge_endpoints(e), (load, add));
/// assert_eq!(g.out_degree(load), 1);
/// assert_eq!(*g.edge_weight(e), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord<E>>,
    out: Vec<Vec<EdgeId>>,
    inc: Vec<Vec<EdgeId>>,
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out: Vec::new(),
            inc: Vec::new(),
        }
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out: Vec::with_capacity(nodes),
            inc: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node carrying `weight` and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(weight);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds a directed edge `src → dst` carrying `weight` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "src {src} out of bounds");
        assert!(dst.index() < self.nodes.len(), "dst {dst} out of bounds");
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeRecord { src, dst, weight });
        self.out[src.index()].push(id);
        self.inc[dst.index()].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrows the payload of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn node_weight(&self, n: NodeId) -> &N {
        &self.nodes[n.index()]
    }

    /// Mutably borrows the payload of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn node_weight_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.index()]
    }

    /// Borrows the payload of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_weight(&self, e: EdgeId) -> &E {
        &self.edges[e.index()].weight
    }

    /// Mutably borrows the payload of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_weight_mut(&mut self, e: EdgeId) -> &mut E {
        &mut self.edges[e.index()].weight
    }

    /// Returns `(src, dst)` of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let rec = &self.edges[e.index()];
        (rec.src, rec.dst)
    }

    /// Source node of edge `e`.
    pub fn edge_source(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination node of edge `e`.
    pub fn edge_target(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl DoubleEndedIterator<Item = EdgeId> + ExactSizeIterator {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Iterates over node payloads in insertion order.
    pub fn node_weights(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Iterates over the outgoing edges of `n` as `(edge, target)` pairs.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.out[n.index()]
            .iter()
            .map(move |&e| (e, self.edges[e.index()].dst))
    }

    /// Iterates over the incoming edges of `n` as `(edge, source)` pairs.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.inc[n.index()]
            .iter()
            .map(move |&e| (e, self.edges[e.index()].src))
    }

    /// Out-degree of `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out[n.index()].len()
    }

    /// In-degree of `n`.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.inc[n.index()].len()
    }

    /// Iterates over the distinct successor nodes reported once per edge
    /// (parallel edges yield the same node twice).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n).map(|(_, t)| t)
    }

    /// Iterates over the predecessor nodes, once per incoming edge.
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n).map(|(_, s)| s)
    }

    /// Maps node and edge payloads into a new graph with identical topology.
    pub fn map<N2, E2>(
        &self,
        mut node_map: impl FnMut(NodeId, &N) -> N2,
        mut edge_map: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| node_map(NodeId::from_index(i), n))
                .collect(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, rec)| EdgeRecord {
                    src: rec.src,
                    dst: rec.dst,
                    weight: edge_map(EdgeId::from_index(i), &rec.weight),
                })
                .collect(),
            out: self.out.clone(),
            inc: self.inc.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<u32, u32>, [NodeId; 4]) {
        // a → b → d, a → c → d
        let mut g = DiGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        let d = g.add_node(3);
        g.add_edge(a, b, 10);
        g.add_edge(a, c, 11);
        g.add_edge(b, d, 12);
        g.add_edge(c, d, 13);
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(b), 1);
        assert_eq!(g.in_degree(d), 2);
        assert!(!g.is_empty());
        assert!(DiGraph::<u32, u32>::new().is_empty());
    }

    #[test]
    fn endpoints_and_weights() {
        let (mut g, [a, b, ..]) = diamond();
        let e = g.add_edge(b, a, 99);
        assert_eq!(g.edge_endpoints(e), (b, a));
        assert_eq!(g.edge_source(e), b);
        assert_eq!(g.edge_target(e), a);
        assert_eq!(*g.edge_weight(e), 99);
        *g.edge_weight_mut(e) = 100;
        assert_eq!(*g.edge_weight(e), 100);
        *g.node_weight_mut(a) = 7;
        assert_eq!(*g.node_weight(a), 7);
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, a, 1); // self loop
        g.add_edge(a, b, 2);
        g.add_edge(a, b, 3); // parallel
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.in_degree(b), 2);
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ, vec![a, b, b]);
    }

    #[test]
    fn iteration_orders_are_stable() {
        let (g, [a, b, c, d]) = diamond();
        let ids: Vec<_> = g.node_ids().collect();
        assert_eq!(ids, vec![a, b, c, d]);
        let outs: Vec<_> = g.out_edges(a).map(|(e, t)| (e.index(), t)).collect();
        assert_eq!(outs, vec![(0, b), (1, c)]);
        let ins: Vec<_> = g.in_edges(d).map(|(_, s)| s).collect();
        assert_eq!(ins, vec![b, c]);
    }

    #[test]
    fn map_preserves_topology() {
        let (g, [a, _, _, d]) = diamond();
        let g2 = g.map(|id, w| (id.index() as u32) + w, |_, w| *w as u64 * 2);
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g2.edge_count(), 4);
        assert_eq!(*g2.node_weight(a), 0);
        assert_eq!(*g2.node_weight(d), 6);
        assert_eq!(*g2.edge_weight(EdgeId::from_index(0)), 20);
        assert_eq!(
            g2.edge_endpoints(EdgeId::from_index(3)),
            g.edge_endpoints(EdgeId::from_index(3))
        );
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_validates_endpoints() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::from_index(5), ());
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g: DiGraph<(), ()> = DiGraph::with_capacity(16, 32);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
