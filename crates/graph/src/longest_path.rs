//! Longest-path computations on edge-filtered DAGs.
//!
//! The paper's execution-time model for a software-pipelined loop is
//! `T = (niter − 1)·II + max_path`, where `max_path` is the length of the
//! longest dependence chain through one iteration. These helpers compute the
//! forward potential (`earliest finish` from the sources), the backward
//! potential (`longest tail` to the sinks) and the overall critical length,
//! over the subgraph of edges accepted by a filter (normally distance-0
//! edges, with bus latency added to cut edges by the partitioner).

use crate::digraph::DiGraph;
use crate::ids::{EdgeId, NodeId};
use crate::topo::topo_order;

/// Per-node longest-path potentials over a filtered sub-DAG.
#[derive(Clone, Debug)]
pub struct Potentials {
    /// `from_source[v]` = length of the longest path ending at `v`
    /// (0 for sources): the earliest start time of `v`.
    pub from_source: Vec<i64>,
    /// `to_sink[v]` = length of the longest path starting at `v`
    /// (0 for sinks).
    pub to_sink: Vec<i64>,
    /// `max(from_source[v] + to_sink[v])`: the critical path length.
    pub critical: i64,
}

impl Potentials {
    /// Longest path length passing through node `v`.
    pub fn through(&self, v: NodeId) -> i64 {
        self.from_source[v.index()] + self.to_sink[v.index()]
    }
}

/// Computes longest-path potentials of the subgraph of `g` restricted to the
/// edges accepted by `keep`, with per-edge length `len`.
///
/// Returns `None` if the filtered subgraph is cyclic.
///
/// Lengths may be negative; `critical` is at least 0 (the empty path).
///
/// # Example
///
/// ```
/// use gpsched_graph::{DiGraph, longest_path::potentials};
///
/// let mut g: DiGraph<(), i64> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, 3);
/// g.add_edge(b, c, 2);
/// g.add_edge(a, c, 1);
/// let p = potentials(&g, |_, _| true, |_, &w| w).unwrap();
/// assert_eq!(p.critical, 5);
/// assert_eq!(p.from_source[c.index()], 5);
/// assert_eq!(p.to_sink[a.index()], 5);
/// ```
pub fn potentials<N, E>(
    g: &DiGraph<N, E>,
    mut keep: impl FnMut(EdgeId, &E) -> bool,
    mut len: impl FnMut(EdgeId, &E) -> i64,
) -> Option<Potentials> {
    let order = topo_order(g, |e, w| keep(e, w))?;
    let n = g.node_count();
    let mut kept = vec![false; g.edge_count()];
    let mut lens = vec![0i64; g.edge_count()];
    for e in g.edge_ids() {
        let w = g.edge_weight(e);
        if keep(e, w) {
            kept[e.index()] = true;
            lens[e.index()] = len(e, w);
        }
    }

    let mut from_source = vec![0i64; n];
    for &v in &order {
        for (e, w) in g.out_edges(v) {
            if kept[e.index()] {
                let cand = from_source[v.index()] + lens[e.index()];
                if cand > from_source[w.index()] {
                    from_source[w.index()] = cand;
                }
            }
        }
    }
    let mut to_sink = vec![0i64; n];
    for &v in order.iter().rev() {
        for (e, w) in g.out_edges(v) {
            if kept[e.index()] {
                let cand = to_sink[w.index()] + lens[e.index()];
                if cand > to_sink[v.index()] {
                    to_sink[v.index()] = cand;
                }
            }
        }
    }
    let critical = (0..n)
        .map(|v| from_source[v] + to_sink[v])
        .max()
        .unwrap_or(0)
        .max(0);
    Some(Potentials {
        from_source,
        to_sink,
        critical,
    })
}

/// Critical (longest) path length of the filtered subgraph, or `None` if it
/// is cyclic.
pub fn critical_path<N, E>(
    g: &DiGraph<N, E>,
    keep: impl FnMut(EdgeId, &E) -> bool,
    len: impl FnMut(EdgeId, &E) -> i64,
) -> Option<i64> {
    potentials(g, keep, len).map(|p| p.critical)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(lens: &[i64]) -> DiGraph<(), i64> {
        let mut g = DiGraph::new();
        let mut prev = g.add_node(());
        for &l in lens {
            let next = g.add_node(());
            g.add_edge(prev, next, l);
            prev = next;
        }
        g
    }

    #[test]
    fn chain_critical_is_sum() {
        let g = chain(&[1, 2, 3, 4]);
        assert_eq!(critical_path(&g, |_, _| true, |_, &w| w), Some(10));
    }

    #[test]
    fn through_matches_critical_on_critical_nodes() {
        let mut g: DiGraph<(), i64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 5);
        g.add_edge(b, d, 5);
        g.add_edge(a, c, 1);
        g.add_edge(c, d, 1);
        let p = potentials(&g, |_, _| true, |_, &w| w).unwrap();
        assert_eq!(p.critical, 10);
        assert_eq!(p.through(b), 10);
        assert_eq!(p.through(c), 2);
    }

    #[test]
    fn cyclic_subgraph_is_rejected() {
        let mut g: DiGraph<(), i64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 1);
        assert!(potentials(&g, |_, _| true, |_, &w| w).is_none());
    }

    #[test]
    fn filter_excludes_back_edge() {
        let mut g: DiGraph<(), (i64, u32)> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, (4, 0));
        g.add_edge(b, a, (1, 1)); // loop-carried
        let p = potentials(&g, |_, &(_, d)| d == 0, |_, &(l, _)| l).unwrap();
        assert_eq!(p.critical, 4);
    }

    #[test]
    fn empty_graph_has_zero_critical() {
        let g: DiGraph<(), i64> = DiGraph::new();
        assert_eq!(critical_path(&g, |_, _| true, |_, &w| w), Some(0));
    }

    #[test]
    fn negative_lengths_never_beat_empty_path() {
        let g = chain(&[-5, -3]);
        assert_eq!(critical_path(&g, |_, _| true, |_, &w| w), Some(0));
    }
}
