//! Tarjan's strongly connected components, iteratively implemented.
//!
//! In a loop DDG the non-trivial SCCs are exactly the *recurrences*
//! (loop-carried dependence cycles). The Swing Modulo Scheduler orders
//! recurrences by criticality, and the partitioner's `RecMII` is determined
//! by the worst cycle inside these components.

use crate::digraph::DiGraph;
use crate::ids::NodeId;

/// Computes the strongly connected components of `g` with Tarjan's
/// algorithm (iterative, so deep graphs cannot overflow the stack).
///
/// Components are returned in reverse topological order of the condensation
/// (every edge of `g` goes from a later component to an earlier one or stays
/// inside a component), and each component lists nodes in discovery order.
///
/// # Example
///
/// ```
/// use gpsched_graph::{DiGraph, scc::tarjan_scc};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, a, ());
/// g.add_edge(b, c, ());
/// let comps = tarjan_scc(&g);
/// assert_eq!(comps.len(), 2);
/// assert!(comps[0] == vec![c]); // sink component first
/// ```
pub fn tarjan_scc<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    const UNVISITED: usize = usize::MAX;
    let n = g.node_count();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Successor lists are materialized once so each DFS step is O(1).
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|v| {
            g.successors(NodeId::from_index(v))
                .map(|w| w.index())
                .collect()
        })
        .collect();

    // Explicit DFS frame: (node, iterator position over its out-edges).
    let mut call: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = call.last_mut() {
            if *pos < succ[v].len() {
                let w = succ[v][*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(NodeId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.reverse();
                    components.push(comp);
                }
            }
        }
    }
    components
}

/// Returns, for every node, the index of its component in the vector
/// produced by [`tarjan_scc`].
pub fn component_index<N, E>(g: &DiGraph<N, E>) -> (Vec<Vec<NodeId>>, Vec<usize>) {
    let comps = tarjan_scc(g);
    let mut idx = vec![0usize; g.node_count()];
    for (ci, comp) in comps.iter().enumerate() {
        for &n in comp {
            idx[n.index()] = ci;
        }
    }
    (comps, idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_no_loop_is_trivial_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        g.add_node(());
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 1);
    }

    #[test]
    fn two_cycles_bridged() {
        // (a ↔ b) → (c ↔ d)
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        g.add_edge(c, d, ());
        g.add_edge(d, c, ());
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 2);
        // Reverse topological: the {c,d} sink component comes first.
        let first: Vec<_> = comps[0].clone();
        assert!(first.contains(&c) && first.contains(&d));
        assert!(comps[1].contains(&a) && comps[1].contains(&b));
    }

    #[test]
    fn dag_gives_singletons_in_reverse_topo_order() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let comps = tarjan_scc(&g);
        assert_eq!(comps, vec![vec![c], vec![b], vec![a]]);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let comps = tarjan_scc(&g);
        assert_eq!(comps, vec![vec![a]]);
    }

    #[test]
    fn component_index_is_consistent() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let c = g.add_node(());
        g.add_edge(b, c, ());
        let (comps, idx) = component_index(&g);
        assert_eq!(idx[a.index()], idx[b.index()]);
        assert_ne!(idx[a.index()], idx[c.index()]);
        assert!(comps[idx[c.index()]].contains(&c));
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let nodes: Vec<_> = (0..50_000).map(|_| g.add_node(())).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], ());
        }
        let comps = tarjan_scc(&g);
        assert_eq!(comps.len(), 50_000);
    }
}
