//! Undirected weighted graph used by the multilevel partitioner.

use crate::ids::{EdgeId, NodeId};

/// An undirected edge with an integer weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnEdge {
    /// One endpoint (the smaller `NodeId` by convention after normalization).
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Edge weight. The partitioner stores the paper's
    /// `delay·(maxsl+1) + maxsl − slack + 1` metric here.
    pub weight: i64,
}

/// An undirected weighted graph with node weights.
///
/// Parallel edges between the same pair of nodes are merged on insertion by
/// adding their weights, matching the coarsening rule of the paper (§2.1.2:
/// "they are combined into a single edge whose weight is equal to the sum of
/// the weights of the original edges"). Self-loops are dropped (edges inside
/// a macro-node disappear).
///
/// # Example
///
/// ```
/// use gpsched_graph::UnGraph;
///
/// let mut g = UnGraph::new();
/// let a = g.add_node(1);
/// let b = g.add_node(1);
/// g.add_edge(a, b, 5);
/// g.add_edge(b, a, 7); // merged with the first edge
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.edges().next().unwrap().weight, 12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct UnGraph {
    node_weights: Vec<i64>,
    edges: Vec<UnEdge>,
    adjacency: Vec<Vec<EdgeId>>,
}

impl UnGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        UnGraph::default()
    }

    /// Adds a node with the given weight (the partitioner stores resource
    /// occupancy there) and returns its id.
    pub fn add_node(&mut self, weight: i64) -> NodeId {
        let id = NodeId::from_index(self.node_weights.len());
        self.node_weights.push(weight);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge, merging with an existing parallel edge and
    /// dropping self-loops.
    ///
    /// Returns the id of the (possibly pre-existing) edge, or `None` for a
    /// dropped self-loop.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: i64) -> Option<EdgeId> {
        assert!(u.index() < self.node_weights.len(), "u {u} out of bounds");
        assert!(v.index() < self.node_weights.len(), "v {v} out of bounds");
        if u == v {
            return None;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if let Some(e) = self.find_edge(u, v) {
            self.edges[e.index()].weight += weight;
            return Some(e);
        }
        let e = EdgeId::from_index(self.edges.len());
        self.edges.push(UnEdge {
            u: key.0,
            v: key.1,
            weight,
        });
        self.adjacency[u.index()].push(e);
        self.adjacency[v.index()].push(e);
        Some(e)
    }

    /// The edge joining `u` and `v`, if any, found by scanning the shorter
    /// of the two adjacency lists (coarsened DDG nodes have tiny degrees,
    /// so this beats the hash map it replaced: no hashing, no extra index
    /// to maintain, and the scan stays inside one cache line).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (probe, other) = if self.adjacency[u.index()].len() <= self.adjacency[v.index()].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[probe.index()].iter().copied().find(|&e| {
            let rec = self.edges[e.index()];
            rec.u == other || rec.v == other
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_weights.len()
    }

    /// Number of (merged) edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Weight of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn node_weight(&self, n: NodeId) -> i64 {
        self.node_weights[n.index()]
    }

    /// Sum of all node weights (invariant under coarsening).
    pub fn total_node_weight(&self) -> i64 {
        self.node_weights.iter().sum()
    }

    /// The edge record for `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of bounds.
    pub fn edge(&self, e: EdgeId) -> UnEdge {
        self.edges[e.index()]
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        (0..self.node_weights.len()).map(NodeId::from_index)
    }

    /// Iterates over all edges.
    pub fn edges(&self) -> impl Iterator<Item = UnEdge> + '_ {
        self.edges.iter().copied()
    }

    /// Iterates over edges incident to `n` as `(edge id, other endpoint,
    /// weight)` triples.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (EdgeId, NodeId, i64)> + '_ {
        self.adjacency[n.index()].iter().map(move |&e| {
            let rec = self.edges[e.index()];
            let other = if rec.u == n { rec.v } else { rec.u };
            (e, other, rec.weight)
        })
    }

    /// Degree (number of distinct neighbors) of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_parallel_edges() {
        let mut g = UnGraph::new();
        let a = g.add_node(2);
        let b = g.add_node(3);
        let e1 = g.add_edge(a, b, 4).unwrap();
        let e2 = g.add_edge(b, a, 6).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge(e1).weight, 10);
    }

    #[test]
    fn drops_self_loops() {
        let mut g = UnGraph::new();
        let a = g.add_node(1);
        assert!(g.add_edge(a, a, 4).is_none());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn neighbors_report_other_endpoint() {
        let mut g = UnGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        let c = g.add_node(1);
        g.add_edge(a, b, 1);
        g.add_edge(c, a, 2);
        let mut seen: Vec<_> = g.neighbors(a).map(|(_, n, w)| (n, w)).collect();
        seen.sort();
        assert_eq!(seen, vec![(b, 1), (c, 2)]);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(b), 1);
    }

    #[test]
    fn total_node_weight_sums() {
        let mut g = UnGraph::new();
        g.add_node(2);
        g.add_node(5);
        g.add_node(-1);
        assert_eq!(g.total_node_weight(), 6);
    }

    #[test]
    fn find_edge_in_either_direction() {
        let mut g = UnGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        let c = g.add_node(1);
        let e = g.add_edge(a, b, 3).unwrap();
        assert_eq!(g.find_edge(a, b), Some(e));
        assert_eq!(g.find_edge(b, a), Some(e));
        assert_eq!(g.find_edge(a, c), None);
        assert_eq!(g.find_edge(a, a), None);
    }

    #[test]
    fn normalizes_endpoint_order() {
        let mut g = UnGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(0);
        let e = g.add_edge(b, a, 1).unwrap();
        let rec = g.edge(e);
        assert_eq!((rec.u, rec.v), (a, b));
    }
}
