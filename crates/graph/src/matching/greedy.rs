//! Greedy heavy-edge matching (½-approximation).

use super::{Matching, WeightedEdge};

/// Computes a matching by scanning edges in decreasing weight order and
/// taking every edge whose endpoints are both still free.
///
/// This is the classic heavy-edge matching used by multilevel partitioners
/// (METIS); it guarantees at least half the optimal weight and runs in
/// `O(m log m)`. Ties are broken by ascending `(u, v)` so the result is
/// deterministic.
///
/// Edges with non-positive weight and self-loops are ignored.
///
/// # Example
///
/// ```
/// use gpsched_graph::matching::greedy_matching;
///
/// // Triangle with one heavy edge: the heavy edge wins.
/// let m = greedy_matching(3, &[(0, 1, 10), (1, 2, 3), (0, 2, 2)]);
/// assert_eq!(m.mate(0), Some(1));
/// assert_eq!(m.mate(2), None);
/// ```
pub fn greedy_matching(n: usize, edges: &[WeightedEdge]) -> Matching {
    let mut sorted: Vec<WeightedEdge> = edges
        .iter()
        .copied()
        .filter(|&(u, v, w)| u != v && w > 0)
        .collect();
    sorted.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    let mut mate: Vec<Option<usize>> = vec![None; n];
    for (u, v, _) in sorted {
        if mate[u].is_none() && mate[v].is_none() {
            mate[u] = Some(v);
            mate[v] = Some(u);
        }
    }
    Matching::from_mates(mate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_takes_heavy_middle() {
        // 0 -1- 1 -10- 2 -1- 3 : greedy takes (1,2), leaving 0 and 3 free.
        let m = greedy_matching(4, &[(0, 1, 1), (1, 2, 10), (2, 3, 1)]);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(0), None);
        assert_eq!(m.mate(3), None);
        assert_eq!(m.pair_count(), 1);
    }

    #[test]
    fn greedy_can_be_suboptimal() {
        // 0 -5- 1 -6- 2 -5- 3 : greedy takes (1,2)=6; optimal is (0,1)+(2,3)=10.
        let edges = [(0, 1, 5), (1, 2, 6), (2, 3, 5)];
        let m = greedy_matching(4, &edges);
        assert_eq!(m.weight(&edges), 6);
    }

    #[test]
    fn ignores_self_loops_and_nonpositive() {
        let m = greedy_matching(2, &[(0, 0, 100), (0, 1, 0), (0, 1, -5)]);
        assert_eq!(m.pair_count(), 0);
    }

    #[test]
    fn deterministic_tie_break() {
        let a = greedy_matching(4, &[(2, 3, 5), (0, 1, 5)]);
        let b = greedy_matching(4, &[(0, 1, 5), (2, 3, 5)]);
        assert_eq!(a, b);
        assert_eq!(a.pair_count(), 2);
    }

    #[test]
    fn no_edges_no_pairs() {
        let m = greedy_matching(5, &[]);
        assert_eq!(m.pair_count(), 0);
        assert_eq!(m.len(), 5);
    }
}
