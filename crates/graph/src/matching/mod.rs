//! Maximum-weight matching in general graphs.
//!
//! The paper coarsens the DDG with a *maximum weight matching* "implemented
//! \[with\] the LEDA library" (§3.2.1, footnote). LEDA is proprietary, so this
//! module provides two replacements:
//!
//! * [`greedy_matching`] — the heavy-edge ½-approximation used by METIS-style
//!   multilevel partitioners (sort edges by weight, take greedily);
//! * [`maximum_weight_matching`] — an exact primal–dual blossom algorithm
//!   (Galil's O(V³) formulation, following van Rantwijk's reference
//!   implementation).
//!
//! The partitioner defaults to the exact algorithm (matching LEDA) and can be
//! switched to the greedy one; `benches/ablation_matching.rs` quantifies the
//! difference.

mod blossom;
mod greedy;

pub use blossom::maximum_weight_matching;
pub use greedy::greedy_matching;

/// A weighted undirected edge `(u, v, weight)` over dense vertex indices.
pub type WeightedEdge = (usize, usize, i64);

/// A matching over `n` vertices: `mate[v]` is the partner of `v`, if any.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    mate: Vec<Option<usize>>,
}

impl Matching {
    /// Creates an empty matching over `n` vertices.
    pub fn empty(n: usize) -> Self {
        Matching {
            mate: vec![None; n],
        }
    }

    /// Builds a matching from a mate vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector is not symmetric (`mate[mate[v]] == v`).
    pub fn from_mates(mate: Vec<Option<usize>>) -> Self {
        for (v, &m) in mate.iter().enumerate() {
            if let Some(m) = m {
                assert_eq!(mate[m], Some(v), "mate vector not symmetric at {v}");
            }
        }
        Matching { mate }
    }

    /// Number of vertices the matching is defined over.
    pub fn len(&self) -> usize {
        self.mate.len()
    }

    /// Returns `true` if defined over zero vertices.
    pub fn is_empty(&self) -> bool {
        self.mate.is_empty()
    }

    /// The partner of `v`, or `None` if `v` is unmatched.
    pub fn mate(&self, v: usize) -> Option<usize> {
        self.mate[v]
    }

    /// Number of matched pairs.
    pub fn pair_count(&self) -> usize {
        self.mate.iter().flatten().count() / 2
    }

    /// Iterates over matched pairs `(u, v)` with `u < v`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(u, &m)| m.filter(|&v| u < v).map(|v| (u, v)))
    }

    /// Total weight of this matching with respect to `edges`.
    ///
    /// Parallel duplicates in `edges` are counted once per listed edge only
    /// if matched; an edge `(u,v,w)` contributes iff `mate[u] == v`.
    /// With merged parallel edges (as [`crate::UnGraph`] guarantees) this is
    /// the usual matching weight.
    pub fn weight(&self, edges: &[WeightedEdge]) -> i64 {
        let mut counted = vec![false; self.mate.len()];
        let mut total = 0;
        for &(u, v, w) in edges {
            if u != v && self.mate[u] == Some(v) && !counted[u] && !counted[v] {
                counted[u] = true;
                counted[v] = true;
                total += w;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matching() {
        let m = Matching::empty(3);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.pair_count(), 0);
        assert_eq!(m.pairs().count(), 0);
        assert_eq!(m.weight(&[(0, 1, 5)]), 0);
    }

    #[test]
    fn from_mates_accepts_symmetric() {
        let m = Matching::from_mates(vec![Some(1), Some(0), None]);
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(2), None);
        assert_eq!(m.pair_count(), 1);
        assert_eq!(m.pairs().collect::<Vec<_>>(), vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn from_mates_rejects_asymmetric() {
        Matching::from_mates(vec![Some(1), None]);
    }

    #[test]
    fn weight_counts_each_pair_once() {
        let m = Matching::from_mates(vec![Some(1), Some(0)]);
        // Duplicate edge listings must not double-count.
        assert_eq!(m.weight(&[(0, 1, 5), (1, 0, 5)]), 5);
    }
}
