//! Exact maximum-weight matching via the blossom algorithm.
//!
//! This is a faithful port of Joris van Rantwijk's reference implementation
//! of Galil's O(V³) primal–dual method ("Efficient algorithms for finding
//! maximum matching in graphs", ACM Computing Surveys, 1986). The paper used
//! LEDA's exact maximum-weight matching for coarsening; this module plays
//! that role.
//!
//! Weights are doubled internally so that all dual variables stay integral
//! (`delta3 = slack/2` would otherwise be half-integral).

use super::{Matching, WeightedEdge};

const NONE: isize = -1;

/// Computes an exact maximum-weight matching of the given edges over `n`
/// vertices.
///
/// Self-loops and edges with non-positive weight are ignored (a maximum
/// *weight* matching never uses them). Parallel edges are allowed; only the
/// heaviest parallel edge can matter.
///
/// If `max_cardinality` is `true`, the matching is additionally constrained
/// to have maximum cardinality among all matchings (the paper's coarsening
/// wants maximum weight only, so it passes `false`).
///
/// # Example
///
/// ```
/// use gpsched_graph::matching::maximum_weight_matching;
///
/// // 0 -5- 1 -6- 2 -5- 3 : optimum pairs the outer edges (weight 10).
/// let m = maximum_weight_matching(4, &[(0, 1, 5), (1, 2, 6), (2, 3, 5)], false);
/// assert_eq!(m.mate(0), Some(1));
/// assert_eq!(m.mate(2), Some(3));
/// ```
pub fn maximum_weight_matching(
    n: usize,
    edges: &[WeightedEdge],
    max_cardinality: bool,
) -> Matching {
    let filtered: Vec<WeightedEdge> = edges
        .iter()
        .copied()
        .filter(|&(u, v, w)| u != v && w > 0)
        // Double the weights to keep dual variables integral.
        .map(|(u, v, w)| (u, v, w.checked_mul(2).expect("matching weight overflow")))
        .collect();
    if n == 0 || filtered.is_empty() {
        return Matching::empty(n);
    }
    let mut m = Matcher::new(n, filtered, max_cardinality);
    m.solve();
    Matching::from_mates(
        m.mate
            .iter()
            .map(|&p| {
                if p == NONE {
                    None
                } else {
                    Some(m.endpoint[p as usize])
                }
            })
            .collect(),
    )
}

struct Matcher {
    nvertex: usize,
    nedge: usize,
    edges: Vec<WeightedEdge>,
    max_cardinality: bool,
    /// `endpoint[p]` = vertex at endpoint `p` (edge `p/2`, side `p%2`).
    endpoint: Vec<usize>,
    /// For vertex `v`, the endpoints `p` such that `endpoint[p]` is the
    /// *remote* end of an edge incident to `v`.
    neighbend: Vec<Vec<usize>>,
    /// `mate[v]` = remote endpoint of the matched edge, or −1.
    mate: Vec<isize>,
    /// Label per (top-level) vertex/blossom: 0 free, 1 S, 2 T
    /// (5 is a temporary breadcrumb used by `scan_blossom`).
    label: Vec<i64>,
    /// Endpoint through which the label was assigned, or −1.
    labelend: Vec<isize>,
    /// Top-level blossom containing each vertex.
    inblossom: Vec<usize>,
    blossomparent: Vec<isize>,
    blossomchilds: Vec<Option<Vec<usize>>>,
    blossombase: Vec<isize>,
    blossomendps: Vec<Option<Vec<isize>>>,
    /// Least-slack edge to a different S-blossom, per vertex/blossom.
    bestedge: Vec<isize>,
    blossombestedges: Vec<Option<Vec<usize>>>,
    unusedblossoms: Vec<usize>,
    dualvar: Vec<i64>,
    allowedge: Vec<bool>,
    queue: Vec<usize>,
}

impl Matcher {
    fn new(nvertex: usize, edges: Vec<WeightedEdge>, max_cardinality: bool) -> Self {
        let nedge = edges.len();
        let maxweight = edges.iter().map(|e| e.2).max().unwrap_or(0).max(0);
        let mut endpoint = Vec::with_capacity(2 * nedge);
        for &(i, j, _) in &edges {
            endpoint.push(i);
            endpoint.push(j);
        }
        let mut neighbend = vec![Vec::new(); nvertex];
        for (k, &(i, j, _)) in edges.iter().enumerate() {
            neighbend[i].push(2 * k + 1);
            neighbend[j].push(2 * k);
        }
        let mut dualvar = vec![maxweight; nvertex];
        dualvar.extend(std::iter::repeat(0).take(nvertex));
        Matcher {
            nvertex,
            nedge,
            edges,
            max_cardinality,
            endpoint,
            neighbend,
            mate: vec![NONE; nvertex],
            label: vec![0; 2 * nvertex],
            labelend: vec![NONE; 2 * nvertex],
            inblossom: (0..nvertex).collect(),
            blossomparent: vec![NONE; 2 * nvertex],
            blossomchilds: vec![None; 2 * nvertex],
            blossombase: (0..nvertex as isize)
                .chain(std::iter::repeat(NONE).take(nvertex))
                .collect(),
            blossomendps: vec![None; 2 * nvertex],
            bestedge: vec![NONE; 2 * nvertex],
            blossombestedges: vec![None; 2 * nvertex],
            unusedblossoms: (nvertex..2 * nvertex).collect(),
            dualvar,
            allowedge: vec![false; nedge],
            queue: Vec::new(),
        }
    }

    fn slack(&self, k: usize) -> i64 {
        let (i, j, wt) = self.edges[k];
        self.dualvar[i] + self.dualvar[j] - 2 * wt
    }

    fn blossom_leaves(&self, b: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![b];
        while let Some(t) = stack.pop() {
            if t < self.nvertex {
                out.push(t);
            } else {
                stack.extend(
                    self.blossomchilds[t]
                        .as_ref()
                        .expect("blossom without children")
                        .iter()
                        .copied(),
                );
            }
        }
        out
    }

    fn assign_label(&mut self, w: usize, t: i64, p: isize) {
        let b = self.inblossom[w];
        debug_assert!(self.label[w] == 0 && self.label[b] == 0);
        self.label[w] = t;
        self.label[b] = t;
        self.labelend[w] = p;
        self.labelend[b] = p;
        self.bestedge[w] = NONE;
        self.bestedge[b] = NONE;
        if t == 1 {
            let leaves = self.blossom_leaves(b);
            self.queue.extend(leaves);
        } else if t == 2 {
            let base = self.blossombase[b] as usize;
            let mate_base = self.mate[base];
            debug_assert!(mate_base >= 0);
            let next = self.endpoint[mate_base as usize];
            self.assign_label(next, 1, mate_base ^ 1);
        }
    }

    /// Traces back from the endpoints of edge `(v, w)` to discover either a
    /// common ancestor (new blossom base) or an augmenting path.
    fn scan_blossom(&mut self, v: usize, w: usize) -> isize {
        let mut path = Vec::new();
        let mut base = NONE;
        let mut v = v as isize;
        let mut w = w as isize;
        while v != NONE || w != NONE {
            if v != NONE {
                let b = self.inblossom[v as usize];
                if self.label[b] & 4 != 0 {
                    base = self.blossombase[b];
                    break;
                }
                debug_assert_eq!(self.label[b], 1);
                path.push(b);
                self.label[b] = 5;
                debug_assert_eq!(self.labelend[b], self.mate[self.blossombase[b] as usize]);
                if self.labelend[b] == NONE {
                    v = NONE;
                } else {
                    let t = self.endpoint[self.labelend[b] as usize];
                    let bt = self.inblossom[t];
                    debug_assert_eq!(self.label[bt], 2);
                    debug_assert!(self.labelend[bt] >= 0);
                    v = self.endpoint[self.labelend[bt] as usize] as isize;
                }
            }
            if w != NONE {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for b in path {
            self.label[b] = 1;
        }
        base
    }

    /// Constructs a new blossom with the given base, through edge `k`.
    fn add_blossom(&mut self, base: usize, k: usize) {
        let (mut v, mut w, _) = self.edges[k];
        let bb = self.inblossom[base];
        let mut bv = self.inblossom[v];
        let mut bw = self.inblossom[w];
        let b = self.unusedblossoms.pop().expect("ran out of blossom slots");
        self.blossombase[b] = base as isize;
        self.blossomparent[b] = NONE;
        self.blossomparent[bb] = b as isize;

        let mut path = Vec::new();
        let mut endps = Vec::new();
        while bv != bb {
            self.blossomparent[bv] = b as isize;
            path.push(bv);
            endps.push(self.labelend[bv]);
            debug_assert!(self.labelend[bv] >= 0);
            v = self.endpoint[self.labelend[bv] as usize];
            bv = self.inblossom[v];
        }
        path.push(bb);
        path.reverse();
        endps.reverse();
        endps.push(2 * k as isize);
        while bw != bb {
            self.blossomparent[bw] = b as isize;
            path.push(bw);
            endps.push(self.labelend[bw] ^ 1);
            debug_assert!(self.labelend[bw] >= 0);
            w = self.endpoint[self.labelend[bw] as usize];
            bw = self.inblossom[w];
        }

        // Children/endpoints must be registered before blossom_leaves(b).
        self.blossomchilds[b] = Some(path.clone());
        self.blossomendps[b] = Some(endps);
        debug_assert_eq!(self.label[bb], 1);
        self.label[b] = 1;
        self.labelend[b] = self.labelend[bb];
        self.dualvar[b] = 0;
        for leaf in self.blossom_leaves(b) {
            if self.label[self.inblossom[leaf]] == 2 {
                self.queue.push(leaf);
            }
            self.inblossom[leaf] = b;
        }

        // Compute least-slack edges to neighbouring S-blossoms.
        let mut bestedgeto = vec![NONE; 2 * self.nvertex];
        for &bv in &path {
            let nblists: Vec<Vec<usize>> = match self.blossombestedges[bv].take() {
                Some(list) => vec![list],
                None => self
                    .blossom_leaves(bv)
                    .into_iter()
                    .map(|leaf| self.neighbend[leaf].iter().map(|&p| p / 2).collect())
                    .collect(),
            };
            for nblist in nblists {
                for k in nblist {
                    let (mut i, mut j, _) = self.edges[k];
                    if self.inblossom[j] == b {
                        std::mem::swap(&mut i, &mut j);
                    }
                    let _ = i;
                    let bj = self.inblossom[j];
                    if bj != b
                        && self.label[bj] == 1
                        && (bestedgeto[bj] == NONE
                            || self.slack(k) < self.slack(bestedgeto[bj] as usize))
                    {
                        bestedgeto[bj] = k as isize;
                    }
                }
            }
            self.bestedge[bv] = NONE;
        }
        let best: Vec<usize> = bestedgeto
            .into_iter()
            .filter(|&k| k != NONE)
            .map(|k| k as usize)
            .collect();
        self.bestedge[b] = NONE;
        for &k in &best {
            if self.bestedge[b] == NONE || self.slack(k) < self.slack(self.bestedge[b] as usize) {
                self.bestedge[b] = k as isize;
            }
        }
        self.blossombestedges[b] = Some(best);
    }

    /// Expands blossom `b`, either at the end of a stage (`endstage`) or
    /// because its dual variable hit zero during a stage.
    fn expand_blossom(&mut self, b: usize, endstage: bool) {
        let childs = self.blossomchilds[b].clone().expect("expanding a leaf");
        for &s in &childs {
            self.blossomparent[s] = NONE;
            if s < self.nvertex {
                self.inblossom[s] = s;
            } else if endstage && self.dualvar[s] == 0 {
                self.expand_blossom(s, endstage);
            } else {
                for leaf in self.blossom_leaves(s) {
                    self.inblossom[leaf] = s;
                }
            }
        }
        if !endstage && self.label[b] == 2 {
            // The blossom was reached through an edge; relabel its children
            // along the path from the entry child to the base.
            debug_assert!(self.labelend[b] >= 0);
            let entrychild = self.inblossom[self.endpoint[(self.labelend[b] ^ 1) as usize]];
            let childs_len = childs.len() as isize;
            let mut j = childs
                .iter()
                .position(|&c| c == entrychild)
                .expect("entry child not found") as isize;
            let (jstep, endptrick): (isize, isize) = if j & 1 != 0 {
                j -= childs_len;
                (1, 0)
            } else {
                (-1, 1)
            };
            let endps = self.blossomendps[b].clone().expect("blossom without endps");
            let idx = |j: isize| -> usize {
                let m = childs_len;
                (((j % m) + m) % m) as usize
            };
            let mut p = self.labelend[b];
            while j != 0 {
                // Relabel the T-sub-blossom.
                self.label[self.endpoint[(p ^ 1) as usize]] = 0;
                let q = endps[idx(j - endptrick)] ^ endptrick ^ 1;
                self.label[self.endpoint[q as usize]] = 0;
                let ep = self.endpoint[(p ^ 1) as usize];
                self.assign_label(ep, 2, p);
                self.allowedge[(endps[idx(j - endptrick)] / 2) as usize] = true;
                j += jstep;
                p = endps[idx(j - endptrick)] ^ endptrick;
                self.allowedge[(p / 2) as usize] = true;
                j += jstep;
            }
            // Relabel the base T-sub-blossom.
            let bv = childs[idx(j)];
            let ep = self.endpoint[(p ^ 1) as usize];
            self.label[ep] = 2;
            self.label[bv] = 2;
            self.labelend[ep] = p;
            self.labelend[bv] = p;
            self.bestedge[bv] = NONE;
            // Continue along the blossom until we get back to entrychild,
            // relabelling sub-blossoms that are reachable from outside.
            j += jstep;
            while childs[idx(j)] != entrychild {
                let bv = childs[idx(j)];
                if self.label[bv] == 1 {
                    j += jstep;
                    continue;
                }
                let mut vfound = None;
                for leaf in self.blossom_leaves(bv) {
                    if self.label[leaf] != 0 {
                        vfound = Some(leaf);
                        break;
                    }
                }
                if let Some(v) = vfound {
                    debug_assert_eq!(self.label[v], 2);
                    debug_assert_eq!(self.inblossom[v], bv);
                    self.label[v] = 0;
                    let base = self.blossombase[bv] as usize;
                    self.label[self.endpoint[self.mate[base] as usize]] = 0;
                    let le = self.labelend[v];
                    self.assign_label(v, 2, le);
                }
                j += jstep;
            }
        }
        // Recycle the blossom slot.
        self.label[b] = NONE as i64;
        self.labelend[b] = NONE;
        self.blossomchilds[b] = None;
        self.blossomendps[b] = None;
        self.blossombase[b] = NONE;
        self.blossombestedges[b] = None;
        self.bestedge[b] = NONE;
        self.unusedblossoms.push(b);
    }

    /// Swaps matched/unmatched edges over the alternating path through
    /// blossom `b` between its base and vertex `v`.
    fn augment_blossom(&mut self, b: usize, v: usize) {
        let mut t = v;
        while self.blossomparent[t] != b as isize {
            t = self.blossomparent[t] as usize;
        }
        if t >= self.nvertex {
            self.augment_blossom(t, v);
        }
        let childs = self.blossomchilds[b].clone().expect("augmenting a leaf");
        let endps = self.blossomendps[b].clone().expect("blossom without endps");
        let childs_len = childs.len() as isize;
        let i = childs.iter().position(|&c| c == t).expect("child missing") as isize;
        let mut j = i;
        let (jstep, endptrick): (isize, isize) = if i & 1 != 0 {
            j -= childs_len;
            (1, 0)
        } else {
            (-1, 1)
        };
        let idx = |j: isize| -> usize {
            let m = childs_len;
            (((j % m) + m) % m) as usize
        };
        while j != 0 {
            j += jstep;
            let t = childs[idx(j)];
            let p = endps[idx(j - endptrick)] ^ endptrick;
            if t >= self.nvertex {
                let ep = self.endpoint[p as usize];
                self.augment_blossom(t, ep);
            }
            j += jstep;
            let t = childs[idx(j)];
            if t >= self.nvertex {
                let ep = self.endpoint[(p ^ 1) as usize];
                self.augment_blossom(t, ep);
            }
            self.mate[self.endpoint[p as usize]] = p ^ 1;
            self.mate[self.endpoint[(p ^ 1) as usize]] = p;
        }
        // Rotate childs/endps so the new base is first.
        let i = i as usize;
        let mut new_childs = childs[i..].to_vec();
        new_childs.extend_from_slice(&childs[..i]);
        let mut new_endps = endps[i..].to_vec();
        new_endps.extend_from_slice(&endps[..i]);
        self.blossombase[b] = self.blossombase[new_childs[0]];
        self.blossomchilds[b] = Some(new_childs);
        self.blossomendps[b] = Some(new_endps);
        debug_assert_eq!(self.blossombase[b], v as isize);
    }

    /// Augments the matching along the path through edge `k`.
    fn augment_matching(&mut self, k: usize) {
        let (v, w, _) = self.edges[k];
        for (s0, p0) in [(v, 2 * k + 1), (w, 2 * k)] {
            let mut s = s0;
            let mut p = p0 as isize;
            loop {
                let bs = self.inblossom[s];
                debug_assert_eq!(self.label[bs], 1);
                debug_assert_eq!(self.labelend[bs], self.mate[self.blossombase[bs] as usize]);
                if bs >= self.nvertex {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = p;
                if self.labelend[bs] == NONE {
                    break;
                }
                let t = self.endpoint[self.labelend[bs] as usize];
                let bt = self.inblossom[t];
                debug_assert_eq!(self.label[bt], 2);
                debug_assert!(self.labelend[bt] >= 0);
                s = self.endpoint[self.labelend[bt] as usize];
                let j = self.endpoint[(self.labelend[bt] ^ 1) as usize];
                debug_assert_eq!(self.blossombase[bt], t as isize);
                if bt >= self.nvertex {
                    self.augment_blossom(bt, j);
                }
                self.mate[j] = self.labelend[bt];
                p = self.labelend[bt] ^ 1;
            }
        }
    }

    fn solve(&mut self) {
        for _stage in 0..self.nvertex {
            // Reset stage state.
            self.label.iter_mut().for_each(|l| *l = 0);
            self.bestedge.iter_mut().for_each(|e| *e = NONE);
            for b in self.nvertex..2 * self.nvertex {
                self.blossombestedges[b] = None;
            }
            self.allowedge.iter_mut().for_each(|a| *a = false);
            self.queue.clear();
            for v in 0..self.nvertex {
                if self.mate[v] == NONE && self.label[self.inblossom[v]] == 0 {
                    self.assign_label(v, 1, NONE);
                }
            }
            let mut augmented = false;
            loop {
                while let Some(v) = self.queue.pop() {
                    debug_assert_eq!(self.label[self.inblossom[v]], 1);
                    let mut did_augment = false;
                    // Index-based scan: `neighbend` is immutable after
                    // construction, and indexing per step avoids cloning
                    // the adjacency list on every queue pop.
                    for i in 0..self.neighbend[v].len() {
                        let p = self.neighbend[v][i];
                        let k = p / 2;
                        let w = self.endpoint[p];
                        if self.inblossom[v] == self.inblossom[w] {
                            continue;
                        }
                        let mut kslack = 0;
                        if !self.allowedge[k] {
                            kslack = self.slack(k);
                            if kslack <= 0 {
                                self.allowedge[k] = true;
                            }
                        }
                        if self.allowedge[k] {
                            if self.label[self.inblossom[w]] == 0 {
                                self.assign_label(w, 2, (p ^ 1) as isize);
                            } else if self.label[self.inblossom[w]] == 1 {
                                let base = self.scan_blossom(v, w);
                                if base >= 0 {
                                    self.add_blossom(base as usize, k);
                                } else {
                                    self.augment_matching(k);
                                    augmented = true;
                                    did_augment = true;
                                    break;
                                }
                            } else if self.label[w] == 0 {
                                debug_assert_eq!(self.label[self.inblossom[w]], 2);
                                self.label[w] = 2;
                                self.labelend[w] = (p ^ 1) as isize;
                            }
                        } else if self.label[self.inblossom[w]] == 1 {
                            let b = self.inblossom[v];
                            if self.bestedge[b] == NONE
                                || kslack < self.slack(self.bestedge[b] as usize)
                            {
                                self.bestedge[b] = k as isize;
                            }
                        } else if self.label[w] == 0
                            && (self.bestedge[w] == NONE
                                || kslack < self.slack(self.bestedge[w] as usize))
                        {
                            self.bestedge[w] = k as isize;
                        }
                    }
                    if did_augment {
                        break;
                    }
                }
                if augmented {
                    break;
                }

                // No augmenting path; compute the dual adjustment delta.
                let mut deltatype = -1i32;
                let mut delta = 0i64;
                let mut deltaedge = 0usize;
                let mut deltablossom = 0usize;
                if !self.max_cardinality {
                    deltatype = 1;
                    delta = self.dualvar[..self.nvertex].iter().copied().min().unwrap();
                }
                for v in 0..self.nvertex {
                    if self.label[self.inblossom[v]] == 0 && self.bestedge[v] != NONE {
                        let d = self.slack(self.bestedge[v] as usize);
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 2;
                            deltaedge = self.bestedge[v] as usize;
                        }
                    }
                }
                for b in 0..2 * self.nvertex {
                    if self.blossomparent[b] == NONE
                        && self.label[b] == 1
                        && self.bestedge[b] != NONE
                    {
                        let kslack = self.slack(self.bestedge[b] as usize);
                        debug_assert_eq!(kslack % 2, 0);
                        let d = kslack / 2;
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 3;
                            deltaedge = self.bestedge[b] as usize;
                        }
                    }
                }
                for b in self.nvertex..2 * self.nvertex {
                    if self.blossombase[b] >= 0
                        && self.blossomparent[b] == NONE
                        && self.label[b] == 2
                        && (deltatype == -1 || self.dualvar[b] < delta)
                    {
                        delta = self.dualvar[b];
                        deltatype = 4;
                        deltablossom = b;
                    }
                }
                if deltatype == -1 {
                    // No further improvement possible (max-cardinality);
                    // make the optimum attainable.
                    deltatype = 1;
                    delta = self.dualvar[..self.nvertex]
                        .iter()
                        .copied()
                        .min()
                        .unwrap()
                        .max(0);
                }

                // Apply the delta to the dual variables.
                for v in 0..self.nvertex {
                    match self.label[self.inblossom[v]] {
                        1 => self.dualvar[v] -= delta,
                        2 => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in self.nvertex..2 * self.nvertex {
                    if self.blossombase[b] >= 0 && self.blossomparent[b] == NONE {
                        match self.label[b] {
                            1 => self.dualvar[b] += delta,
                            2 => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }

                match deltatype {
                    1 => break,
                    2 => {
                        self.allowedge[deltaedge] = true;
                        let (mut i, j, _) = self.edges[deltaedge];
                        if self.label[self.inblossom[i]] == 0 {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    3 => {
                        self.allowedge[deltaedge] = true;
                        let (i, _, _) = self.edges[deltaedge];
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    4 => self.expand_blossom(deltablossom, false),
                    _ => unreachable!("invalid delta type"),
                }
            }

            if !augmented {
                break;
            }
            // End of stage: expand all S-blossoms with zero dual.
            for b in self.nvertex..2 * self.nvertex {
                if self.blossomparent[b] == NONE
                    && self.blossombase[b] >= 0
                    && self.label[b] == 1
                    && self.dualvar[b] == 0
                {
                    self.expand_blossom(b, true);
                }
            }
        }
        let _ = self.nedge;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weight_of(m: &Matching, edges: &[WeightedEdge]) -> i64 {
        m.weight(edges)
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(maximum_weight_matching(0, &[], false).len(), 0);
        assert_eq!(maximum_weight_matching(3, &[], false).pair_count(), 0);
    }

    #[test]
    fn single_edge() {
        let m = maximum_weight_matching(2, &[(0, 1, 1)], false);
        assert_eq!(m.mate(0), Some(1));
    }

    #[test]
    fn path_prefers_two_light_edges_over_one_heavy() {
        let edges = [(0, 1, 5), (1, 2, 6), (2, 3, 5)];
        let m = maximum_weight_matching(4, &edges, false);
        assert_eq!(weight_of(&m, &edges), 10);
    }

    #[test]
    fn triangle_takes_heaviest_edge() {
        let edges = [(0, 1, 6), (1, 2, 5), (0, 2, 4)];
        let m = maximum_weight_matching(3, &edges, false);
        assert_eq!(weight_of(&m, &edges), 6);
        assert_eq!(m.mate(2), None);
    }

    #[test]
    fn negative_and_zero_edges_ignored() {
        let m = maximum_weight_matching(2, &[(0, 1, -2), (0, 1, 0)], false);
        assert_eq!(m.pair_count(), 0);
    }

    // The following cases are from van Rantwijk's test suite.

    #[test]
    fn vr_test14_maxcard_matters() {
        // Trivial case where max-cardinality changes the result.
        let edges = [(1, 2, 5), (2, 3, 11), (3, 4, 5)];
        let m = maximum_weight_matching(5, &edges, false);
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(1), None);
        let m = maximum_weight_matching(5, &edges, true);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(3), Some(4));
    }

    #[test]
    fn vr_test20_create_blossom() {
        // Creates a blossom and uses it for augmentation.
        let edges = [(1, 2, 8), (1, 3, 9), (2, 3, 10), (3, 4, 7)];
        let m = maximum_weight_matching(5, &edges, false);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(3), Some(4));
        let edges2 = [
            (1, 2, 8),
            (1, 3, 9),
            (2, 3, 10),
            (3, 4, 7),
            (1, 6, 5),
            (4, 5, 6),
        ];
        let m = maximum_weight_matching(7, &edges2, false);
        assert_eq!(m.mate(1), Some(6));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(5));
    }

    #[test]
    fn vr_test21_expand_blossom_t() {
        // Create S-blossom, relabel as T-blossom, use for augmentation.
        let edges = [
            (1, 2, 9),
            (1, 3, 8),
            (2, 3, 10),
            (1, 4, 5),
            (4, 5, 4),
            (1, 6, 3),
        ];
        let m = maximum_weight_matching(7, &edges, false);
        assert_eq!(m.mate(1), Some(6));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(5));
        let edges = [
            (1, 2, 9),
            (1, 3, 8),
            (2, 3, 10),
            (1, 4, 5),
            (4, 5, 3),
            (1, 6, 4),
        ];
        let m = maximum_weight_matching(7, &edges, false);
        assert_eq!(m.mate(1), Some(6));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(5));
        let edges = [
            (1, 2, 9),
            (1, 3, 8),
            (2, 3, 10),
            (1, 4, 5),
            (4, 5, 3),
            (3, 6, 4),
        ];
        let m = maximum_weight_matching(7, &edges, false);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(3), Some(6));
        assert_eq!(m.mate(4), Some(5));
    }

    #[test]
    fn vr_test22_s_to_t_expand() {
        // Create nested S-blossom, use for augmentation.
        let edges = [
            (1, 2, 9),
            (1, 3, 9),
            (2, 3, 10),
            (2, 4, 8),
            (3, 5, 8),
            (4, 5, 10),
            (5, 6, 6),
        ];
        let m = maximum_weight_matching(7, &edges, false);
        assert_eq!(m.mate(1), Some(3));
        assert_eq!(m.mate(2), Some(4));
        assert_eq!(m.mate(5), Some(6));
    }

    #[test]
    fn vr_test23_s_blossom_relabel_expand() {
        let edges = [
            (1, 2, 10),
            (1, 7, 10),
            (2, 3, 12),
            (3, 4, 20),
            (3, 5, 20),
            (4, 5, 25),
            (5, 6, 10),
            (6, 7, 10),
            (7, 8, 8),
        ];
        let m = maximum_weight_matching(9, &edges, false);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(3), Some(4));
        assert_eq!(m.mate(5), Some(6));
        assert_eq!(m.mate(7), Some(8));
    }

    #[test]
    fn vr_test24_nested_s_blossom_relabel_expand() {
        let edges = [
            (1, 2, 8),
            (1, 3, 8),
            (2, 3, 10),
            (2, 4, 12),
            (3, 5, 12),
            (4, 5, 14),
            (4, 6, 12),
            (5, 7, 12),
            (6, 7, 14),
            (7, 8, 12),
        ];
        let m = maximum_weight_matching(9, &edges, false);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(3), Some(5));
        assert_eq!(m.mate(4), Some(6));
        assert_eq!(m.mate(7), Some(8));
    }

    #[test]
    fn vr_test25_s_blossom_expand_t() {
        let edges = [
            (1, 2, 23),
            (1, 5, 22),
            (1, 6, 15),
            (2, 3, 25),
            (3, 4, 22),
            (4, 5, 25),
            (4, 8, 14),
            (5, 7, 13),
        ];
        let m = maximum_weight_matching(9, &edges, false);
        assert_eq!(m.mate(1), Some(6));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(8));
        assert_eq!(m.mate(5), Some(7));
    }

    #[test]
    fn vr_test26_s_blossom_forward_expand() {
        let edges = [
            (1, 2, 19),
            (1, 3, 20),
            (1, 8, 8),
            (2, 3, 25),
            (2, 4, 18),
            (3, 5, 18),
            (4, 5, 13),
            (4, 7, 7),
            (5, 6, 7),
        ];
        let m = maximum_weight_matching(9, &edges, false);
        assert_eq!(m.mate(1), Some(8));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(7));
        assert_eq!(m.mate(5), Some(6));
    }

    #[test]
    fn vr_test30_nasty_augmenting_path() {
        // Create blossom, relabel as T in more than one way, expand, augment.
        let edges = [
            (1, 2, 45),
            (1, 5, 45),
            (2, 3, 50),
            (3, 4, 45),
            (4, 5, 50),
            (1, 6, 30),
            (3, 9, 35),
            (4, 8, 35),
            (5, 7, 26),
            (9, 10, 5),
        ];
        let m = maximum_weight_matching(11, &edges, false);
        assert_eq!(m.mate(1), Some(6));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(8));
        assert_eq!(m.mate(5), Some(7));
        assert_eq!(m.mate(9), Some(10));
    }

    #[test]
    fn vr_test31_similar_with_alternate() {
        let edges = [
            (1, 2, 45),
            (1, 5, 45),
            (2, 3, 50),
            (3, 4, 45),
            (4, 5, 50),
            (1, 6, 30),
            (3, 9, 35),
            (4, 8, 26),
            (5, 7, 40),
            (9, 10, 5),
        ];
        let m = maximum_weight_matching(11, &edges, false);
        assert_eq!(m.mate(1), Some(6));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(8));
        assert_eq!(m.mate(5), Some(7));
        assert_eq!(m.mate(9), Some(10));
    }

    #[test]
    fn vr_test32_s_blossom_relabel_expand_augment() {
        let edges = [
            (1, 2, 45),
            (1, 5, 45),
            (2, 3, 50),
            (3, 4, 45),
            (4, 5, 50),
            (1, 6, 30),
            (3, 9, 35),
            (4, 8, 28),
            (5, 7, 26),
            (9, 10, 5),
        ];
        let m = maximum_weight_matching(11, &edges, false);
        assert_eq!(m.mate(1), Some(6));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(8));
        assert_eq!(m.mate(5), Some(7));
        assert_eq!(m.mate(9), Some(10));
    }

    #[test]
    fn vr_test33_nested_blossom_expanded_endstage() {
        let edges = [
            (1, 2, 45),
            (1, 7, 45),
            (2, 3, 50),
            (3, 4, 45),
            (4, 5, 95),
            (4, 6, 94),
            (5, 6, 94),
            (6, 7, 50),
            (1, 8, 30),
            (3, 11, 35),
            (5, 9, 36),
            (7, 10, 26),
            (11, 12, 5),
        ];
        let m = maximum_weight_matching(13, &edges, false);
        assert_eq!(m.mate(1), Some(8));
        assert_eq!(m.mate(2), Some(3));
        assert_eq!(m.mate(4), Some(6));
        assert_eq!(m.mate(5), Some(9));
        assert_eq!(m.mate(7), Some(10));
        assert_eq!(m.mate(11), Some(12));
    }

    #[test]
    fn vr_test34_nested_blossom_relabeled_t() {
        let edges = [
            (1, 2, 40),
            (1, 3, 40),
            (2, 3, 60),
            (2, 4, 55),
            (3, 5, 55),
            (4, 5, 50),
            (1, 8, 15),
            (5, 7, 30),
            (7, 6, 10),
            (8, 10, 10),
            (4, 9, 30),
        ];
        let m = maximum_weight_matching(11, &edges, false);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(3), Some(5));
        assert_eq!(m.mate(4), Some(9));
        assert_eq!(m.mate(6), Some(7));
        assert_eq!(m.mate(8), Some(10));
    }

    #[test]
    fn matches_greedy_or_better_on_grids() {
        use crate::matching::greedy_matching;
        // 4x4 grid with position-dependent weights.
        let mut edges = Vec::new();
        let id = |r: usize, c: usize| r * 4 + c;
        for r in 0..4 {
            for c in 0..4 {
                if c + 1 < 4 {
                    edges.push((id(r, c), id(r, c + 1), (1 + r * 3 + c) as i64));
                }
                if r + 1 < 4 {
                    edges.push((id(r, c), id(r + 1, c), (2 + r + c * 2) as i64));
                }
            }
        }
        let exact = maximum_weight_matching(16, &edges, false);
        let greedy = greedy_matching(16, &edges);
        assert!(exact.weight(&edges) >= greedy.weight(&edges));
    }
}
