//! Positive-cycle detection in modulo-scheduling constraint graphs.
//!
//! For a candidate initiation interval `II`, every dependence edge
//! `u → v` with latency `lat` and iteration distance `dist` induces the
//! constraint `t(v) ≥ t(u) + lat − II·dist`. An II is *recurrence-feasible*
//! iff the constraint graph with edge weight `lat − II·dist` has no positive
//! cycle. `RecMII` is the smallest feasible II; the DDG crate finds it by
//! binary search over this predicate.

use crate::NodeBitSet;

/// A constraint edge `(src, dst, weight)` over dense node indices.
pub type ConstraintEdge = (usize, usize, i64);

/// Returns `true` if the directed graph given by `edges` over `n` nodes
/// contains a cycle of strictly positive total weight.
///
/// Runs Bellman–Ford in longest-path mode from a virtual super-source: after
/// `n` rounds any still-relaxable edge proves a positive cycle. `O(n·m)`.
///
/// # Example
///
/// ```
/// use gpsched_graph::feasibility::has_positive_cycle;
///
/// // Cycle a→b→a with weights 2 and −1: total +1 → positive cycle.
/// assert!(has_positive_cycle(2, &[(0, 1, 2), (1, 0, -1)]));
/// // Total 0 → fine.
/// assert!(!has_positive_cycle(2, &[(0, 1, 1), (1, 0, -1)]));
/// ```
pub fn has_positive_cycle(n: usize, edges: &[ConstraintEdge]) -> bool {
    longest_from_all_sources(n, edges).is_none()
}

/// Longest distances from a virtual source connected to every node with a
/// 0-weight edge, or `None` if a positive cycle exists.
///
/// The result is the least vector `d` with `d[v] ≥ 0` and
/// `d[v] ≥ d[u] + w` for every edge — i.e., valid earliest start times for
/// the modulo constraint system.
pub fn longest_from_all_sources(n: usize, edges: &[ConstraintEdge]) -> Option<Vec<i64>> {
    let mut dist = Vec::new();
    longest_from_all_sources_into(n, edges, &mut dist).then_some(dist)
}

/// Allocation-free variant of [`longest_from_all_sources`]: fills `dist`
/// (cleared and resized to `n`) in place and returns `false` when a positive
/// cycle exists. Hot paths reuse `dist` across calls so the steady state
/// allocates nothing.
pub fn longest_from_all_sources_into(
    n: usize,
    edges: &[ConstraintEdge],
    dist: &mut Vec<i64>,
) -> bool {
    dist.clear();
    dist.resize(n, 0);
    // Bellman-Ford: at most n-1 relaxation rounds, plus one to detect cycles.
    // Work is tallied in locals and flushed through one gated trace call at
    // the end — the relaxation loop itself stays free of atomics.
    let mut rounds = 0u64;
    let mut relaxations = 0u64;
    let mut feasible = true;
    for round in 0..=n {
        rounds += 1;
        let mut changed = false;
        for &(u, v, w) in edges {
            let cand = dist[u] + w;
            if cand > dist[v] {
                dist[v] = cand;
                relaxations += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n {
            feasible = false;
            break;
        }
    }
    gpsched_trace::counter!("graph.bf.runs");
    gpsched_trace::counter!("graph.bf.rounds", rounds);
    gpsched_trace::counter!("graph.bf.edges_scanned", rounds * edges.len() as u64);
    gpsched_trace::counter!("graph.bf.relaxations", relaxations);
    feasible
}

/// Finds the smallest `ii ≥ lower` such that
/// `has_positive_cycle(n, edges(ii)) == false`, where `edges(ii)` assigns
/// weight `lat − ii·dist` to each `(src, dst, lat, dist)` tuple.
///
/// `upper` bounds the search; returns `None` if even `upper` is infeasible
/// (which cannot happen if `upper ≥ Σ lat` and every cycle has positive
/// total distance — i.e., the distance-0 subgraph is acyclic).
///
/// Callers probing many II values over the same graph should build a
/// [`BfKernel`] once and use [`BfKernel::min_feasible_ii`] directly; this
/// free function is the one-shot convenience wrapper.
pub fn min_feasible_ii(
    n: usize,
    deps: &[(usize, usize, i64, i64)],
    lower: i64,
    upper: i64,
) -> Option<i64> {
    BfKernel::build(n, deps).min_feasible_ii(lower, upper, None)
}

/// A prepared longest-path / positive-cycle kernel over a fixed constraint
/// graph, reusable across II probes.
///
/// [`longest_from_all_sources_into`] rebuilds nothing but scans *every* edge
/// every round; profiles show most rounds touch only a shrinking frontier
/// around recurrence back-edges. This kernel prepares, once per graph:
///
/// * a **CSR layout grouped by source node**, sources ordered by their
///   distance-0 topological level (Kahn layers), so one in-order sweep
///   propagates an entire distance-0 chain in a single pass;
/// * per-edge `(latency, distance)` kept separately, so the weight
///   `lat + extra − II·dist` is computed on the fly — **probing a new II
///   rescales nothing and rebuilds nothing**;
/// * a [`NodeBitSet`]-backed **active worklist indexed by level rank**:
///   a pass scans only words with active bits (64 nodes skipped per zero
///   word), relaxations forward of the scan cursor cascade *within* the
///   same pass, and only backward (recurrence) marks cost another pass.
///
/// The relaxation fixed point is order-independent, so `solve` returns
/// distances element-identical to the naive sweep (property-tested); only
/// the work needed to reach the fixed point changes.
///
/// # Example
///
/// ```
/// use gpsched_graph::feasibility::BfKernel;
///
/// // a →(lat 3, dist 0) b →(lat 1, dist 1) a: RecMII 4.
/// let deps = [(0, 1, 3, 0), (1, 0, 1, 1)];
/// let mut k = BfKernel::build(2, &deps);
/// assert_eq!(k.min_feasible_ii(1, 100, None), Some(4));
/// let mut dist = Vec::new();
/// assert!(k.solve(4, &mut dist));
/// assert_eq!(dist, vec![0, 3]);
/// assert!(!k.solve(3, &mut dist)); // positive cycle below RecMII
/// ```
#[derive(Clone, Debug, Default)]
pub struct BfKernel {
    n: usize,
    /// Level rank → node index (distance-0 Kahn order; nodes on distance-0
    /// cycles — impossible for validated DDGs, allowed for raw graphs —
    /// are appended in index order; ordering is a convergence hint only).
    order: Vec<u32>,
    /// CSR row starts indexed by *source level rank*, length `n + 1`.
    row: Vec<u32>,
    /// CSR edge records grouped by source rank.
    edges: Vec<KernelEdge>,
    /// Per CSR edge: the input dep index it came from.
    dep: Vec<u32>,
    /// Input dep index → CSR edge position (for per-dep base updates).
    pos: Vec<u32>,
    /// Rank-indexed worklist of the current pass.
    active: NodeBitSet,
    /// Rank-indexed worklist of the next pass (backward marks only).
    next: NodeBitSet,
    /// Scratch distances for probe-style calls ([`Self::feasible`]).
    scratch: Vec<i64>,
    /// Batched work tallies, flushed to the `graph.bf.*` counters when the
    /// kernel drops. [`Self::solve`] runs tens of thousands of times per
    /// scheduling pass; per-run atomic increments were a measurable share
    /// of enabled-tracing overhead.
    stats: BfStats,
}

/// Batched `graph.bf.*` tallies (see [`gpsched_trace::BatchCounter`]:
/// clones start at zero, drop flushes).
#[derive(Clone, Debug)]
struct BfStats {
    runs: gpsched_trace::BatchCounter,
    rounds: gpsched_trace::BatchCounter,
    edges_scanned: gpsched_trace::BatchCounter,
    relaxations: gpsched_trace::BatchCounter,
}

impl Default for BfStats {
    fn default() -> Self {
        BfStats {
            runs: gpsched_trace::BatchCounter::new("graph.bf.runs"),
            rounds: gpsched_trace::BatchCounter::new("graph.bf.rounds"),
            edges_scanned: gpsched_trace::BatchCounter::new("graph.bf.edges_scanned"),
            relaxations: gpsched_trace::BatchCounter::new("graph.bf.relaxations"),
        }
    }
}

/// One CSR edge of a [`BfKernel`], kept as a record so the hot relaxation
/// loop touches one contiguous 32-byte stride per edge.
#[derive(Clone, Copy, Debug, Default)]
struct KernelEdge {
    /// Destination node index (distance array slot).
    dst: u32,
    /// Destination level rank (worklist marking).
    dst_rank: u32,
    /// Current weight base (`lat + extra`); the II term is applied on the
    /// fly in [`BfKernel::solve`].
    base: i64,
    /// Iteration distance.
    dist: i64,
    /// Immutable base latency from `build` (what `base` resets to).
    lat: i64,
}

impl BfKernel {
    /// Prepares the kernel for the graph given by `(src, dst, lat, dist)`
    /// tuples over `n` nodes. Edge weights start at `lat` (no extra delay).
    pub fn build(n: usize, deps: &[(usize, usize, i64, i64)]) -> Self {
        let m = deps.len();
        // Kahn's algorithm on the distance-0 subgraph; the growing `order`
        // vector doubles as the work queue, so the result is level order.
        let mut indeg = vec![0u32; n];
        let mut out0_row = vec![0u32; n + 1];
        for &(s, d, _, dist) in deps {
            if dist == 0 {
                indeg[d] += 1;
                out0_row[s + 1] += 1;
            }
        }
        for i in 0..n {
            out0_row[i + 1] += out0_row[i];
        }
        let m0 = out0_row[n] as usize;
        let mut out0 = vec![0u32; m0];
        let mut cursor: Vec<u32> = out0_row[..n].to_vec();
        for &(s, d, _, dist) in deps {
            if dist == 0 {
                out0[cursor[s] as usize] = d as u32;
                cursor[s] += 1;
            }
        }
        let mut order: Vec<u32> = (0..n as u32).filter(|&v| indeg[v as usize] == 0).collect();
        let mut head = 0;
        while head < order.len() {
            let u = order[head] as usize;
            head += 1;
            for &succ in &out0[out0_row[u] as usize..out0_row[u + 1] as usize] {
                let v = succ as usize;
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    order.push(v as u32);
                }
            }
        }
        if order.len() < n {
            // Distance-0 cycles: no topological order exists for the rest;
            // append them in index order (correctness never depends on the
            // order, and such a graph is infeasible at every II anyway).
            let mut placed = vec![false; n];
            for &v in &order {
                placed[v as usize] = true;
            }
            order.extend((0..n as u32).filter(|&v| !placed[v as usize]));
        }
        let mut rank = vec![0u32; n];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }

        // CSR grouped by source rank (counting sort; stable within a source).
        let mut row = vec![0u32; n + 1];
        for &(s, _, _, _) in deps {
            row[rank[s] as usize + 1] += 1;
        }
        for i in 0..n {
            row[i + 1] += row[i];
        }
        let mut cursor: Vec<u32> = row[..n].to_vec();
        let mut edges = vec![KernelEdge::default(); m];
        let (mut dep, mut pos) = (vec![0u32; m], vec![0u32; m]);
        for (k, &(s, d, l, dist)) in deps.iter().enumerate() {
            let r = rank[s] as usize;
            let i = cursor[r] as usize;
            cursor[r] += 1;
            edges[i] = KernelEdge {
                dst: d as u32,
                dst_rank: rank[d],
                base: l,
                dist,
                lat: l,
            };
            dep[i] = k as u32;
            pos[k] = i as u32;
        }
        BfKernel {
            n,
            order,
            row,
            edges,
            dep,
            pos,
            active: NodeBitSet::new(n),
            next: NodeBitSet::new(n),
            scratch: Vec::new(),
            stats: BfStats::default(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sets every edge's weight base back to `lat + extra(dep)`, where
    /// `dep` is the edge's index in the `deps` slice passed to `build`.
    /// One linear sweep in CSR order; pass `|_| 0` to reset.
    pub fn apply_extras(&mut self, mut extra: impl FnMut(usize) -> i64) {
        for (e, &k) in self.edges.iter_mut().zip(&self.dep) {
            e.base = e.lat + extra(k as usize);
        }
    }

    /// Adds `delta` to the weight base of input dep `k`. The cheap path for
    /// "probe with one edge delayed, then restore" callers: bump by `+d`,
    /// probe, bump by `−d`.
    pub fn add_extra(&mut self, k: usize, delta: i64) {
        self.edges[self.pos[k] as usize].base += delta;
    }

    /// `true` if the graph has no positive cycle at initiation interval
    /// `ii` (distances go to an internal scratch buffer).
    pub fn feasible(&mut self, ii: i64) -> bool {
        let mut scratch = std::mem::take(&mut self.scratch);
        let ok = self.solve(ii, &mut scratch);
        self.scratch = scratch;
        ok
    }

    /// Longest distances from the all-sources virtual root at initiation
    /// interval `ii` (edge weight `base − ii·dist`), filled into `dist`
    /// (cleared and resized to `n`) — element-identical to
    /// [`longest_from_all_sources_into`] over the same weighted edges.
    /// Returns `false` when a positive cycle exists.
    pub fn solve(&mut self, ii: i64, dist: &mut Vec<i64>) -> bool {
        let n = self.n;
        dist.clear();
        dist.resize(n, 0);
        let mut rounds = 0u64;
        let mut scanned = 0u64;
        let mut relaxations = 0u64;
        let mut feasible = true;
        if n > 0 && !self.edges.is_empty() {
            self.next.clear();
            // Pass 0 is dense: every node starts live, so bit tracking
            // would only add overhead. Sweeping sources in level-rank order
            // lets forward improvements cascade within this single pass;
            // only improvements at or behind the sweep cursor — recurrence
            // back-edges — seed the sparse worklist.
            rounds += 1;
            scanned += self.edges.len() as u64;
            let mut have_backward = false;
            for r in 0..n {
                let u = self.order[r] as usize;
                let du = dist[u];
                let (s, e) = (self.row[r] as usize, self.row[r + 1] as usize);
                for edge in &self.edges[s..e] {
                    let cand = du + edge.base - ii * edge.dist;
                    let v = edge.dst as usize;
                    if cand > dist[v] {
                        dist[v] = cand;
                        relaxations += 1;
                        let rv = edge.dst_rank as usize;
                        if rv <= r {
                            self.next.words_mut()[rv / 64] |= 1u64 << (rv % 64);
                            have_backward = true;
                        }
                    }
                }
            }
            // Sparse passes drain the worklist in ascending rank order: an
            // improvement *forward* of the scan cursor is re-marked into
            // `active` and absorbed by the same pass (the cursor only moves
            // forward, so in-pass work terminates), while a backward mark
            // goes to `next`. Each pass dominates one classic relaxation
            // round, so the classic bound holds: a graph with no positive
            // cycle quiesces within `n` further passes, and a still
            // non-empty worklist after that proves a positive cycle.
            if have_backward {
                std::mem::swap(&mut self.active, &mut self.next);
                for pass in 1..=n + 1 {
                    rounds += 1;
                    let nwords = self.active.words().len();
                    for wi in 0..nwords {
                        loop {
                            let word = self.active.words()[wi];
                            if word == 0 {
                                break;
                            }
                            self.active.words_mut()[wi] = 0;
                            let mut bits = word;
                            while bits != 0 {
                                let b = bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                let r = wi * 64 + b;
                                let u = self.order[r] as usize;
                                let du = dist[u];
                                let (s, e) = (self.row[r] as usize, self.row[r + 1] as usize);
                                scanned += (e - s) as u64;
                                for edge in &self.edges[s..e] {
                                    let cand = du + edge.base - ii * edge.dist;
                                    let v = edge.dst as usize;
                                    if cand > dist[v] {
                                        dist[v] = cand;
                                        relaxations += 1;
                                        let rv = edge.dst_rank as usize;
                                        if rv > r {
                                            self.active.words_mut()[rv / 64] |= 1u64 << (rv % 64);
                                        } else {
                                            self.next.words_mut()[rv / 64] |= 1u64 << (rv % 64);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    // The pass drained `active`; the backward marks in
                    // `next` are the next pass's worklist.
                    std::mem::swap(&mut self.active, &mut self.next);
                    if self.active.is_empty() {
                        break;
                    }
                    if pass == n + 1 {
                        feasible = false;
                        break;
                    }
                }
            }
        }
        self.stats.runs.add(1);
        self.stats.rounds.add(rounds);
        self.stats.edges_scanned.add(scanned);
        self.stats.relaxations.add(relaxations);
        feasible
    }

    /// Kernel-backed [`min_feasible_ii`]: smallest feasible `ii` in
    /// `[lower, upper]`, or `None`. Requires feasibility monotone in `ii`
    /// (all iteration distances ≥ 0, as in modulo constraint graphs).
    ///
    /// `hint` seeds the binary search — pass the previous related query's
    /// answer (e.g. the preceding edge's delayed RecMII) and the search
    /// brackets it instead of bisecting the whole range from scratch.
    pub fn min_feasible_ii(&mut self, lower: i64, upper: i64, hint: Option<i64>) -> Option<i64> {
        if lower > upper {
            return None;
        }
        if self.feasible(lower) {
            return Some(lower);
        }
        // Invariant from here: lo infeasible, hi feasible.
        let (mut lo, mut hi);
        match hint.filter(|&h| h > lower && h < upper) {
            Some(h) => {
                if self.feasible(h) {
                    (lo, hi) = (lower, h);
                } else if self.feasible(upper) {
                    (lo, hi) = (h, upper);
                } else {
                    return None;
                }
            }
            None => {
                if !self.feasible(upper) {
                    return None;
                }
                (lo, hi) = (lower, upper);
            }
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(!has_positive_cycle(0, &[]));
        assert!(!has_positive_cycle(3, &[]));
    }

    #[test]
    fn zero_weight_cycle_is_fine() {
        assert!(!has_positive_cycle(3, &[(0, 1, 5), (1, 2, -2), (2, 0, -3)]));
    }

    #[test]
    fn positive_self_loop() {
        assert!(has_positive_cycle(1, &[(0, 0, 1)]));
        assert!(!has_positive_cycle(1, &[(0, 0, 0)]));
        assert!(!has_positive_cycle(1, &[(0, 0, -2)]));
    }

    #[test]
    fn distances_satisfy_constraints() {
        let edges = [(0, 1, 3), (1, 2, 2), (0, 2, 4)];
        let d = longest_from_all_sources(3, &edges).unwrap();
        for &(u, v, w) in &edges {
            assert!(d[v] >= d[u] + w);
        }
        assert_eq!(d, vec![0, 3, 5]);
    }

    #[test]
    fn min_feasible_ii_simple_recurrence() {
        // a → b (lat 3, dist 0); b → a (lat 1, dist 1).
        // Cycle latency 4, distance 1 → RecMII = 4.
        let deps = [(0, 1, 3, 0), (1, 0, 1, 1)];
        assert_eq!(min_feasible_ii(2, &deps, 1, 100), Some(4));
    }

    #[test]
    fn min_feasible_ii_respects_lower_bound() {
        let deps = [(0, 1, 3, 0), (1, 0, 1, 1)];
        assert_eq!(min_feasible_ii(2, &deps, 7, 100), Some(7));
    }

    #[test]
    fn min_feasible_ii_multiple_recurrences_takes_worst() {
        // Cycle A: lat 6 over dist 2 → needs II ≥ 3.
        // Cycle B: lat 5 over dist 1 → needs II ≥ 5.
        let deps = [(0, 1, 3, 0), (1, 0, 3, 2), (2, 3, 4, 0), (3, 2, 1, 1)];
        assert_eq!(min_feasible_ii(4, &deps, 1, 100), Some(5));
    }

    #[test]
    fn min_feasible_ii_infeasible_when_distance_zero_cycle() {
        // A distance-0 cycle can never be scheduled at any II.
        let deps = [(0, 1, 1, 0), (1, 0, 1, 0)];
        assert_eq!(min_feasible_ii(2, &deps, 1, 64), None);
    }

    #[test]
    fn acyclic_graph_feasible_at_lower() {
        let deps = [(0, 1, 9, 0), (1, 2, 9, 0)];
        assert_eq!(min_feasible_ii(3, &deps, 1, 64), Some(1));
    }

    /// Tiny deterministic xorshift for the property tests (no external
    /// crates in this workspace).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Random constraint graph over `n` nodes. Distance-0 edges only go
    /// forward (so the dist-0 subgraph is a DAG, like a validated DDG);
    /// carried edges go anywhere. With `broken`, a backward distance-0
    /// edge may appear — a graph no II can schedule.
    fn random_deps(rng: &mut Rng, n: usize, broken: bool) -> Vec<(usize, usize, i64, i64)> {
        let m = rng.below(4 * n as u64) as usize;
        let mut deps = Vec::with_capacity(m);
        for _ in 0..m {
            let lat = rng.below(8) as i64;
            let (u, v) = (rng.below(n as u64) as usize, rng.below(n as u64) as usize);
            match rng.below(if broken { 3 } else { 2 }) {
                0 if u != v => {
                    // Forward distance-0 edge.
                    deps.push((u.min(v), u.max(v), lat, 0));
                }
                1 => {
                    deps.push((u, v, lat, 1 + rng.below(3) as i64));
                }
                _ => {
                    // Arbitrary distance-0 edge: may close a dist-0 cycle.
                    deps.push((u, v, lat.max(1), 0));
                }
            }
        }
        deps
    }

    fn naive_solve(n: usize, deps: &[(usize, usize, i64, i64)], ii: i64) -> Option<Vec<i64>> {
        let edges: Vec<ConstraintEdge> = deps
            .iter()
            .map(|&(u, v, lat, dist)| (u, v, lat - ii * dist))
            .collect();
        longest_from_all_sources(n, &edges)
    }

    #[test]
    fn kernel_matches_naive_on_random_graphs() {
        let mut rng = Rng(0x9e3779b97f4a7c15);
        for case in 0..300 {
            let n = 1 + rng.below(40) as usize;
            let broken = case % 5 == 4;
            let deps = random_deps(&mut rng, n, broken);
            let mut kernel = BfKernel::build(n, &deps);
            let mut dist = Vec::new();
            // Random II sequence, including values below RecMII (positive
            // cycle probes) and repeats — the warm-start path.
            for _ in 0..6 {
                let ii = 1 + rng.below(12) as i64;
                let expect = naive_solve(n, &deps, ii);
                let got = kernel.solve(ii, &mut dist).then(|| dist.clone());
                assert_eq!(
                    expect, got,
                    "case {case}: n={n} ii={ii} deps={deps:?} disagree"
                );
            }
        }
    }

    #[test]
    fn kernel_min_feasible_ii_matches_free_function_with_any_hint() {
        let mut rng = Rng(0xdeadbeefcafef00d);
        for case in 0..200 {
            let n = 1 + rng.below(24) as usize;
            let deps = random_deps(&mut rng, n, case % 7 == 6);
            let upper: i64 = deps.iter().map(|d| d.2.max(0)).sum::<i64>().max(1);
            let lower = 1 + rng.below(3) as i64;
            let expect = min_feasible_ii(n, &deps, lower, upper);
            let mut kernel = BfKernel::build(n, &deps);
            for hint in [None, Some(lower), Some(upper), Some((lower + upper) / 2)] {
                assert_eq!(
                    kernel.min_feasible_ii(lower, upper, hint),
                    expect,
                    "case {case}: hint {hint:?} changes the answer"
                );
            }
        }
    }

    #[test]
    fn kernel_extras_shift_weights() {
        // a →(lat 3) b, b →(lat 1, dist 1) a: RecMII 4; delaying the
        // forward edge by 2 pushes it to 6.
        let deps = [(0, 1, 3, 0), (1, 0, 1, 1)];
        let mut k = BfKernel::build(2, &deps);
        assert_eq!(k.min_feasible_ii(1, 100, None), Some(4));
        k.add_extra(0, 2);
        assert_eq!(k.min_feasible_ii(1, 100, Some(4)), Some(6));
        k.add_extra(0, -2);
        assert_eq!(k.min_feasible_ii(1, 100, Some(6)), Some(4));
        k.apply_extras(|d| if d == 0 { 1 } else { 0 });
        assert_eq!(k.min_feasible_ii(1, 100, None), Some(5));
        k.apply_extras(|_| 0);
        assert_eq!(k.min_feasible_ii(1, 100, None), Some(4));
    }

    #[test]
    fn kernel_handles_distance_zero_cycle() {
        // Positive-weight dist-0 cycle: infeasible at every II, and Kahn
        // leaves both nodes unordered — the fallback path.
        let deps = [(0, 1, 1, 0), (1, 0, 1, 0)];
        let mut k = BfKernel::build(2, &deps);
        assert!(!k.feasible(1));
        assert!(!k.feasible(1000));
        assert_eq!(k.min_feasible_ii(1, 64, Some(32)), None);
    }

    #[test]
    fn kernel_empty_and_edgeless() {
        let mut k = BfKernel::build(0, &[]);
        let mut dist = Vec::new();
        assert!(k.solve(1, &mut dist));
        assert!(dist.is_empty());
        let mut k = BfKernel::build(3, &[]);
        assert!(k.solve(1, &mut dist));
        assert_eq!(dist, vec![0, 0, 0]);
    }

    #[test]
    fn kernel_positive_self_loop() {
        let mut k = BfKernel::build(1, &[(0, 0, 1, 0)]);
        assert!(!k.feasible(5));
        let mut k = BfKernel::build(1, &[(0, 0, 3, 1)]);
        assert!(!k.feasible(2));
        assert!(k.feasible(3));
    }
}
