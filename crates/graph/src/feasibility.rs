//! Positive-cycle detection in modulo-scheduling constraint graphs.
//!
//! For a candidate initiation interval `II`, every dependence edge
//! `u → v` with latency `lat` and iteration distance `dist` induces the
//! constraint `t(v) ≥ t(u) + lat − II·dist`. An II is *recurrence-feasible*
//! iff the constraint graph with edge weight `lat − II·dist` has no positive
//! cycle. `RecMII` is the smallest feasible II; the DDG crate finds it by
//! binary search over this predicate.

/// A constraint edge `(src, dst, weight)` over dense node indices.
pub type ConstraintEdge = (usize, usize, i64);

/// Returns `true` if the directed graph given by `edges` over `n` nodes
/// contains a cycle of strictly positive total weight.
///
/// Runs Bellman–Ford in longest-path mode from a virtual super-source: after
/// `n` rounds any still-relaxable edge proves a positive cycle. `O(n·m)`.
///
/// # Example
///
/// ```
/// use gpsched_graph::feasibility::has_positive_cycle;
///
/// // Cycle a→b→a with weights 2 and −1: total +1 → positive cycle.
/// assert!(has_positive_cycle(2, &[(0, 1, 2), (1, 0, -1)]));
/// // Total 0 → fine.
/// assert!(!has_positive_cycle(2, &[(0, 1, 1), (1, 0, -1)]));
/// ```
pub fn has_positive_cycle(n: usize, edges: &[ConstraintEdge]) -> bool {
    longest_from_all_sources(n, edges).is_none()
}

/// Longest distances from a virtual source connected to every node with a
/// 0-weight edge, or `None` if a positive cycle exists.
///
/// The result is the least vector `d` with `d[v] ≥ 0` and
/// `d[v] ≥ d[u] + w` for every edge — i.e., valid earliest start times for
/// the modulo constraint system.
pub fn longest_from_all_sources(n: usize, edges: &[ConstraintEdge]) -> Option<Vec<i64>> {
    let mut dist = Vec::new();
    longest_from_all_sources_into(n, edges, &mut dist).then_some(dist)
}

/// Allocation-free variant of [`longest_from_all_sources`]: fills `dist`
/// (cleared and resized to `n`) in place and returns `false` when a positive
/// cycle exists. Hot paths reuse `dist` across calls so the steady state
/// allocates nothing.
pub fn longest_from_all_sources_into(
    n: usize,
    edges: &[ConstraintEdge],
    dist: &mut Vec<i64>,
) -> bool {
    dist.clear();
    dist.resize(n, 0);
    // Bellman-Ford: at most n-1 relaxation rounds, plus one to detect cycles.
    // Work is tallied in locals and flushed through one gated trace call at
    // the end — the relaxation loop itself stays free of atomics.
    let mut rounds = 0u64;
    let mut relaxations = 0u64;
    let mut feasible = true;
    for round in 0..=n {
        rounds += 1;
        let mut changed = false;
        for &(u, v, w) in edges {
            let cand = dist[u] + w;
            if cand > dist[v] {
                dist[v] = cand;
                relaxations += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        if round == n {
            feasible = false;
            break;
        }
    }
    gpsched_trace::counter!("graph.bf.runs");
    gpsched_trace::counter!("graph.bf.rounds", rounds);
    gpsched_trace::counter!("graph.bf.edges_scanned", rounds * edges.len() as u64);
    gpsched_trace::counter!("graph.bf.relaxations", relaxations);
    feasible
}

/// Finds the smallest `ii ≥ lower` such that
/// `has_positive_cycle(n, edges(ii)) == false`, where `edges(ii)` assigns
/// weight `lat − ii·dist` to each `(src, dst, lat, dist)` tuple.
///
/// `upper` bounds the search; returns `None` if even `upper` is infeasible
/// (which cannot happen if `upper ≥ Σ lat` and every cycle has positive
/// total distance — i.e., the distance-0 subgraph is acyclic).
pub fn min_feasible_ii(
    n: usize,
    deps: &[(usize, usize, i64, i64)],
    lower: i64,
    upper: i64,
) -> Option<i64> {
    // One probe per II candidate; the edge and distance buffers are reused
    // so the binary search allocates only once.
    let mut edges: Vec<ConstraintEdge> = Vec::with_capacity(deps.len());
    let mut scratch: Vec<i64> = Vec::new();
    let mut feasible = |ii: i64| {
        edges.clear();
        edges.extend(
            deps.iter()
                .map(|&(u, v, lat, dist)| (u, v, lat - ii * dist)),
        );
        longest_from_all_sources_into(n, &edges, &mut scratch)
    };
    if lower > upper {
        return None;
    }
    if feasible(lower) {
        return Some(lower);
    }
    if !feasible(upper) {
        return None;
    }
    // Invariant: lo infeasible, hi feasible.
    let (mut lo, mut hi) = (lower, upper);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(!has_positive_cycle(0, &[]));
        assert!(!has_positive_cycle(3, &[]));
    }

    #[test]
    fn zero_weight_cycle_is_fine() {
        assert!(!has_positive_cycle(3, &[(0, 1, 5), (1, 2, -2), (2, 0, -3)]));
    }

    #[test]
    fn positive_self_loop() {
        assert!(has_positive_cycle(1, &[(0, 0, 1)]));
        assert!(!has_positive_cycle(1, &[(0, 0, 0)]));
        assert!(!has_positive_cycle(1, &[(0, 0, -2)]));
    }

    #[test]
    fn distances_satisfy_constraints() {
        let edges = [(0, 1, 3), (1, 2, 2), (0, 2, 4)];
        let d = longest_from_all_sources(3, &edges).unwrap();
        for &(u, v, w) in &edges {
            assert!(d[v] >= d[u] + w);
        }
        assert_eq!(d, vec![0, 3, 5]);
    }

    #[test]
    fn min_feasible_ii_simple_recurrence() {
        // a → b (lat 3, dist 0); b → a (lat 1, dist 1).
        // Cycle latency 4, distance 1 → RecMII = 4.
        let deps = [(0, 1, 3, 0), (1, 0, 1, 1)];
        assert_eq!(min_feasible_ii(2, &deps, 1, 100), Some(4));
    }

    #[test]
    fn min_feasible_ii_respects_lower_bound() {
        let deps = [(0, 1, 3, 0), (1, 0, 1, 1)];
        assert_eq!(min_feasible_ii(2, &deps, 7, 100), Some(7));
    }

    #[test]
    fn min_feasible_ii_multiple_recurrences_takes_worst() {
        // Cycle A: lat 6 over dist 2 → needs II ≥ 3.
        // Cycle B: lat 5 over dist 1 → needs II ≥ 5.
        let deps = [(0, 1, 3, 0), (1, 0, 3, 2), (2, 3, 4, 0), (3, 2, 1, 1)];
        assert_eq!(min_feasible_ii(4, &deps, 1, 100), Some(5));
    }

    #[test]
    fn min_feasible_ii_infeasible_when_distance_zero_cycle() {
        // A distance-0 cycle can never be scheduled at any II.
        let deps = [(0, 1, 1, 0), (1, 0, 1, 0)];
        assert_eq!(min_feasible_ii(2, &deps, 1, 64), None);
    }

    #[test]
    fn acyclic_graph_feasible_at_lower() {
        let deps = [(0, 1, 9, 0), (1, 2, 9, 0)];
        assert_eq!(min_feasible_ii(3, &deps, 1, 64), Some(1));
    }
}
