//! Topological ordering of edge-filtered subgraphs.
//!
//! Loop DDGs are cyclic, but the subgraph of *intra-iteration* edges
//! (dependence distance 0) must be acyclic; timing analyses (`max_path`,
//! ASAP/ALAP) run over that sub-DAG. The functions here therefore accept an
//! edge filter.

use crate::digraph::DiGraph;
use crate::ids::{EdgeId, NodeId};

/// Computes a topological order of the subgraph of `g` containing every node
/// and only the edges accepted by `keep_edge` (Kahn's algorithm).
///
/// Returns `None` if that subgraph contains a cycle.
///
/// # Example
///
/// ```
/// use gpsched_graph::{DiGraph, topo::topo_order};
///
/// let mut g: DiGraph<(), u32> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, 0); // intra-iteration
/// g.add_edge(b, a, 1); // loop-carried (distance 1)
/// // Keeping only distance-0 edges yields an acyclic graph.
/// let order = topo_order(&g, |_, &d| d == 0).unwrap();
/// assert_eq!(order, vec![a, b]);
/// // Keeping everything exposes the cycle.
/// assert!(topo_order(&g, |_, _| true).is_none());
/// ```
pub fn topo_order<N, E>(
    g: &DiGraph<N, E>,
    mut keep_edge: impl FnMut(EdgeId, &E) -> bool,
) -> Option<Vec<NodeId>> {
    let n = g.node_count();
    let mut indegree = vec![0usize; n];
    let mut kept = vec![false; g.edge_count()];
    for e in g.edge_ids() {
        if keep_edge(e, g.edge_weight(e)) {
            kept[e.index()] = true;
            indegree[g.edge_target(e).index()] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    // Process in ascending id order for determinism.
    ready.sort_unstable_by(|a, b| b.cmp(a));
    let mut order = Vec::with_capacity(n);
    while let Some(v) = ready.pop() {
        order.push(NodeId::from_index(v));
        let mut newly = Vec::new();
        for (e, w) in g.out_edges(NodeId::from_index(v)) {
            if kept[e.index()] {
                indegree[w.index()] -= 1;
                if indegree[w.index()] == 0 {
                    newly.push(w.index());
                }
            }
        }
        newly.sort_unstable_by(|a, b| b.cmp(a));
        ready.extend(newly);
        ready.sort_unstable_by(|a, b| b.cmp(a));
    }
    (order.len() == n).then_some(order)
}

/// Returns `true` if the subgraph selected by `keep_edge` is acyclic.
pub fn is_acyclic<N, E>(g: &DiGraph<N, E>, keep_edge: impl FnMut(EdgeId, &E) -> bool) -> bool {
    topo_order(g, keep_edge).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_a_dag() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        g.add_edge(c, d, ());
        let order = topo_order(&g, |_, _| true).unwrap();
        let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn detects_cycles() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(topo_order(&g, |_, _| true).is_none());
        assert!(!is_acyclic(&g, |_, _| true));
    }

    #[test]
    fn filter_removes_cycle() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0);
        let back = g.add_edge(b, a, 1);
        let order = topo_order(&g, |e, _| e != back).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn isolated_nodes_appear() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let order = topo_order(&g, |_, _| true).unwrap();
        assert_eq!(order, vec![a, b]);
    }

    #[test]
    fn deterministic_order_prefers_small_ids() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        // No edges at all: expect id order.
        let order = topo_order(&g, |_, _| true).unwrap();
        assert_eq!(order, vec![a, b, c]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert!(topo_order(&g, |_, _| true).is_none());
    }
}
