//! Disjoint-set forest with union by rank and path halving.

/// A union-find (disjoint set) structure over dense `usize` indices.
///
/// Used when contracting matched node pairs during coarsening.
///
/// # Example
///
/// ```
/// use gpsched_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.set_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets `0..n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently alive.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Finds the representative of `x`, with path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns `false` if already joined.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_reduces_set_count() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already connected
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(64);
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(0, 63));
    }

    #[test]
    fn empty_is_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
    }
}
