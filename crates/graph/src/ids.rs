//! Typed node and edge identifiers.

use std::fmt;

/// Identifier of a node inside a [`crate::DiGraph`] or [`crate::UnGraph`].
///
/// `NodeId`s are dense indices assigned in insertion order; they are stable
/// (nodes are never removed from the containers in this workspace).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Mostly useful in tests; normal code receives ids from
    /// [`crate::DiGraph::add_node`].
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge inside a [`crate::DiGraph`] or [`crate::UnGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Creates an edge id from a raw index.
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflows u32"))
    }

    /// Returns the dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
