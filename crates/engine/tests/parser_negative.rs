//! Negative-path coverage of the `.ddg` and `.machine` interchange
//! parsers: one test per distinct error message, each asserting the
//! 1-based line number the error is reported on, plus a mutation sweep
//! that corrupts every field of a valid file and demands a line-accurate
//! diagnosis (or a clean parse, for the free-form name fields that can
//! absorb any token).

use gpsched_engine::machine_text::parse_machine_corpus;
use gpsched_engine::text::{parse_corpus, parse_ddg, TextError};
use gpsched_engine::{parse_machine, MachineTextError};

/// A valid loop exercising every `.ddg` directive: comments, trips, ops
/// of several classes, flow and mem deps, carried distances.
const VALID_DDG: &str = "\
ddg sample loop
trips 128
op load 2 x[i]
op fmul 3 a*x
op store 1 y[i]=
dep 0 1 flow 2 0
dep 1 2 flow 3 0
dep 2 0 mem 1 1
end
";

/// A valid machine exercising every legacy `.machine` directive.
const VALID_MACHINE: &str = "\
machine m
cluster 2 2 2 16
cluster 2 2 2 16
bus 1 2
latency load 2
end
";

/// A valid ring machine exercising the `topology ring` stanza.
const VALID_RING: &str = "\
machine r
cluster 1 1 1 8
cluster 1 1 1 8
cluster 1 1 1 8
topology ring 2 1
latency load 2
end
";

/// A valid point-to-point machine exercising `topology p2p` + `link`.
const VALID_P2P: &str = "\
machine p
cluster 1 1 1 8
cluster 1 1 1 8
cluster 1 1 1 8
topology p2p 2
link 0 1 1
link 0 2 2
link 1 0 1
link 1 2 1
link 2 0 2
link 2 1 1
end
";

/// The 1-based line an error was reported on.
fn ddg_err_line(e: &TextError) -> usize {
    match e {
        TextError::Syntax { line, .. }
        | TextError::OpOutOfRange { line, .. }
        | TextError::Invalid { line, .. } => *line,
        TextError::UnterminatedBlock { start_line, .. } => *start_line,
    }
}

/// Replaces field `fi` of line `li` (0-based) with `junk`.
fn mutate(text: &str, li: usize, fi: usize, junk: &str) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    let mut fields: Vec<&str> = lines[li].split_whitespace().collect();
    fields[fi] = junk;
    lines[li] = fields.join(" ");
    lines.join("\n") + "\n"
}

// ---------------------------------------------------------------------
// Mutation sweeps: corrupt each field of each line of a valid file.
// ---------------------------------------------------------------------

#[test]
fn every_corrupted_ddg_field_is_diagnosed_on_its_line() {
    let base = VALID_DDG;
    assert!(parse_corpus(base).is_ok(), "fixture must be valid");
    for (li, line) in base.lines().enumerate() {
        let nfields = line.split_whitespace().count();
        for fi in 0..nfields {
            let mutated = mutate(base, li, fi, "zzz9");
            let keyword = line.split_whitespace().next().unwrap();
            // Name fields absorb any token: the `ddg` name (field ≥ 1)
            // and the op name (field ≥ 3).
            let free_form = (keyword == "ddg" && fi >= 1) || (keyword == "op" && fi >= 3);
            match parse_corpus(&mutated) {
                Ok(_) => assert!(
                    free_form,
                    "line {} field {fi}: corruption parsed: {mutated}",
                    li + 1
                ),
                Err(e) => {
                    assert!(!free_form, "line {}: name field rejected: {e}", li + 1);
                    assert_eq!(ddg_err_line(&e), li + 1, "{mutated}: {e}");
                }
            }
        }
    }
}

/// Corrupts every field of every line of `base` and demands a
/// line-accurate diagnosis (or a clean parse for the free-form machine
/// name).
fn sweep_machine_mutations(base: &str) {
    assert!(parse_machine_corpus(base).is_ok(), "fixture must be valid");
    for (li, line) in base.lines().enumerate() {
        let nfields = line.split_whitespace().count();
        for fi in 0..nfields {
            let mutated = mutate(base, li, fi, "zzz9");
            let keyword = line.split_whitespace().next().unwrap();
            let free_form = keyword == "machine" && fi >= 1;
            match parse_machine_corpus(&mutated) {
                Ok(_) => assert!(
                    free_form,
                    "line {} field {fi}: corruption parsed: {mutated}",
                    li + 1
                ),
                Err(e) => {
                    assert!(!free_form, "line {}: name field rejected: {e}", li + 1);
                    assert_eq!(e.line, li + 1, "{mutated}: {e}");
                }
            }
        }
    }
}

#[test]
fn every_corrupted_machine_field_is_diagnosed_on_its_line() {
    sweep_machine_mutations(VALID_MACHINE);
}

#[test]
fn every_corrupted_ring_machine_field_is_diagnosed_on_its_line() {
    sweep_machine_mutations(VALID_RING);
}

#[test]
fn every_corrupted_p2p_machine_field_is_diagnosed_on_its_line() {
    sweep_machine_mutations(VALID_P2P);
}

// ---------------------------------------------------------------------
// Panic-freedom sweeps: corrupt / truncate EVERY byte of a valid file.
// The parsers' error contract (`Result`, line-numbered) only matters if
// no input can reach a panic instead — the daemon feeds them raw request
// bodies. Each mutation parses under `catch_unwind`; any panic is a bug.
// ---------------------------------------------------------------------

/// Every byte value we substitute at each position: NUL and 0xFF (invalid
/// UTF-8 → exercises the lossy replacement path), structural bytes that
/// shift line/field boundaries, and a plain letter.
const JUNK_BYTES: [u8; 6] = [0x00, 0xff, b'\n', b' ', b'-', b'z'];

/// Parses every single-byte corruption and every truncation of `base`
/// under `catch_unwind`, asserting `parse` never panics. The parse result
/// is free to be Ok or Err — only a panic fails.
fn assert_no_panic_on_any_corruption(base: &str, parse: fn(&str)) {
    let bytes = base.as_bytes();
    for pos in 0..bytes.len() {
        for junk in JUNK_BYTES {
            if bytes[pos] == junk {
                continue;
            }
            let mut mutated = bytes.to_vec();
            mutated[pos] = junk;
            let text = String::from_utf8_lossy(&mutated).into_owned();
            let r = std::panic::catch_unwind(move || parse(&text));
            assert!(r.is_ok(), "byte {pos} -> {junk:#04x} panicked the parser");
        }
        // Torn input: everything up to (not including) this byte.
        let text = String::from_utf8_lossy(&bytes[..pos]).into_owned();
        let r = std::panic::catch_unwind(move || parse(&text));
        assert!(r.is_ok(), "truncation at byte {pos} panicked the parser");
    }
}

#[test]
fn no_ddg_byte_corruption_panics() {
    assert_no_panic_on_any_corruption(VALID_DDG, |t| {
        let _ = parse_corpus(t);
    });
}

#[test]
fn no_machine_byte_corruption_panics() {
    for base in [VALID_MACHINE, VALID_RING, VALID_P2P] {
        assert_no_panic_on_any_corruption(base, |t| {
            let _ = parse_machine_corpus(t);
        });
    }
}

#[test]
fn no_job_body_byte_corruption_panics() {
    // The daemon's composite body format wraps both parsers plus its own
    // directive layer — sweep it too.
    let body =
        format!("group g\nmachines u-r32,c2r32b1l1\nalgos gp,list\n{VALID_DDG}{VALID_MACHINE}");
    gpsched_engine::serve::parse_job_body(&body).expect("fixture body must parse");
    assert_no_panic_on_any_corruption(&body, |t| {
        let _ = gpsched_engine::serve::parse_job_body(t);
    });
}

#[test]
fn extreme_numeric_fields_are_rejected_not_overflowed() {
    // Values the u64/u32 parsers accept but the engine must refuse: caps
    // keep downstream II × distance / trips × II arithmetic in range.
    ddg_err("ddg x\ntrips 999999999999999999\nend\n", 2, "out of range");
    ddg_err("ddg x\nop int 4000000000 a\nend\n", 2, "out of range");
    ddg_err(
        "ddg x\nop int 1 a\ndep 0 0 flow 1 2000000000\nend\n",
        3,
        "out of range",
    );
    machine_err(
        "machine m\ncluster 1 1 1 2000000000\nend\n",
        2,
        "out of range",
    );
    machine_err(
        "machine m\ncluster 0 0 0 8\nend\n",
        2,
        "no functional units",
    );
    machine_err("machine m\ncluster 1 1 1 0\nend\n", 2, "register");
}

// ---------------------------------------------------------------------
// `.ddg` parser: one test per distinct error message.
// ---------------------------------------------------------------------

/// Asserts the error of parsing `text` lands on `line` and mentions
/// `needle`.
fn ddg_err(text: &str, line: usize, needle: &str) -> TextError {
    let e = parse_corpus(text).unwrap_err();
    assert_eq!(ddg_err_line(&e), line, "{text:?}: {e}");
    assert!(e.to_string().contains(needle), "{text:?}: {e}");
    e
}

#[test]
fn ddg_unknown_directive() {
    ddg_err(
        "ddg x\nfrobnicate 3\nend\n",
        2,
        "unknown directive `frobnicate`",
    );
}

#[test]
fn ddg_requires_a_name() {
    ddg_err("ddg\n", 1, "`ddg` requires a name");
}

#[test]
fn ddg_nested_block() {
    ddg_err(
        "ddg a\nddg b\nend\n",
        2,
        "`ddg` inside unterminated block `a`",
    );
}

#[test]
fn ddg_directives_outside_block() {
    for directive in ["trips 3", "op int 1 a", "dep 0 0 flow 1 0", "end"] {
        let word = directive.split(' ').next().unwrap();
        ddg_err(
            &format!("{directive}\n"),
            1,
            &format!("`{word}` outside a `ddg … end` block"),
        );
    }
}

#[test]
fn ddg_bad_trip_count() {
    ddg_err(
        "ddg x\ntrips many\nend\n",
        2,
        "expected a trip count, got `many`",
    );
}

#[test]
fn ddg_unknown_op_class() {
    ddg_err(
        "ddg x\nop blorp 1 a\nend\n",
        2,
        "unknown op class `blorp` (expected int|fadd|fmul|fdiv|load|store)",
    );
}

#[test]
fn ddg_bad_op_latency() {
    ddg_err(
        "ddg x\nop int fast a\nend\n",
        2,
        "expected a latency, got `fast`",
    );
}

#[test]
fn ddg_bad_dep_fields() {
    let cases = [
        ("dep x 0 flow 1 0", "expected a source op index, got `x`"),
        (
            "dep 0 x flow 1 0",
            "expected a destination op index, got `x`",
        ),
        ("dep 0 0 flow x 0", "expected a latency, got `x`"),
        ("dep 0 0 flow 1 x", "expected a distance, got `x`"),
        (
            "dep 0 0 sideways 1 0",
            "unknown dep kind `sideways` (expected flow|mem)",
        ),
    ];
    for (line, needle) in cases {
        ddg_err(&format!("ddg x\nop int 1 a\n{line}\nend\n"), 3, needle);
    }
}

#[test]
fn ddg_dep_out_of_range_reports_src_and_dst() {
    let e = ddg_err(
        "ddg x\nop int 1 a\ndep 0 3 flow 1 0\nend\n",
        3,
        "op index 3 out of range (1 ops declared so far)",
    );
    assert_eq!(
        e,
        TextError::OpOutOfRange {
            line: 3,
            index: 3,
            declared: 1
        }
    );
    ddg_err(
        "ddg x\nop int 1 a\ndep 9 0 flow 1 0\nend\n",
        3,
        "op index 9",
    );
}

#[test]
fn ddg_invalid_at_end_carries_build_error() {
    let text = "ddg bad\nop int 1 a\nop int 1 b\ndep 0 1 flow 1 0\ndep 1 0 flow 1 0\nend\n";
    let e = ddg_err(text, 6, "invalid ddg");
    assert!(matches!(e, TextError::Invalid { .. }));
}

#[test]
fn ddg_unterminated_block_reports_opening_line() {
    let e = ddg_err(
        "# hdr\nddg open\nop int 1 a\n",
        2,
        "`open` is never closed with `end`",
    );
    assert!(matches!(e, TextError::UnterminatedBlock { .. }));
}

#[test]
fn ddg_exactly_one_expected() {
    // Zero loops and two loops both fail parse_ddg, reported on the last
    // line.
    let e = parse_ddg("# empty\n").unwrap_err();
    assert!(e.to_string().contains("expected exactly one ddg, found 0"));
    let two = "ddg a\nop int 1 x\nend\nddg b\nop int 1 y\nend\n";
    let e = parse_ddg(two).unwrap_err();
    assert_eq!(ddg_err_line(&e), 6);
    assert!(e.to_string().contains("expected exactly one ddg, found 2"));
}

// ---------------------------------------------------------------------
// `.machine` parser: one test per distinct error message.
// ---------------------------------------------------------------------

fn machine_err(text: &str, line: usize, needle: &str) -> MachineTextError {
    let e = parse_machine_corpus(text).unwrap_err();
    assert_eq!(e.line, line, "{text:?}: {e}");
    assert!(e.to_string().contains(needle), "{text:?}: {e}");
    e
}

#[test]
fn machine_unknown_directive() {
    machine_err(
        "machine x\nfrobnicate\nend\n",
        2,
        "unknown directive `frobnicate`",
    );
}

#[test]
fn machine_requires_a_name() {
    machine_err("machine\n", 1, "`machine` requires a name");
}

#[test]
fn machine_nested_block() {
    machine_err(
        "machine x\nmachine y\nend\n",
        2,
        "`machine` inside unterminated block `x`",
    );
}

#[test]
fn machine_directives_outside_block() {
    for directive in [
        "cluster 1 1 1 8",
        "bus 1 1",
        "topology ring 1 1",
        "link 0 1 1",
        "latency load 2",
        "end",
    ] {
        let word = directive.split(' ').next().unwrap();
        machine_err(
            &format!("{directive}\n"),
            1,
            &format!("`{word}` outside a `machine … end` block"),
        );
    }
}

#[test]
fn machine_bad_cluster_fields() {
    let cases = [
        ("cluster x 1 1 8", "expected an integer-unit count, got `x`"),
        ("cluster 1 x 1 8", "expected an fp-unit count, got `x`"),
        ("cluster 1 1 x 8", "expected a memory-port count, got `x`"),
        ("cluster 1 1 1 x", "expected a register count, got `x`"),
    ];
    for (line, needle) in cases {
        machine_err(&format!("machine m\n{line}\nend\n"), 2, needle);
    }
}

#[test]
fn machine_duplicate_bus() {
    machine_err(
        "machine m\ncluster 1 1 1 8\nbus 1 1\nbus 1 1\nend\n",
        4,
        "duplicate `bus` line",
    );
}

#[test]
fn machine_bad_bus_fields() {
    machine_err(
        "machine m\nbus x 1\nend\n",
        2,
        "expected a bus count, got `x`",
    );
    machine_err(
        "machine m\nbus 1 x\nend\n",
        2,
        "expected a bus latency, got `x`",
    );
}

#[test]
fn machine_unknown_latency_class() {
    machine_err(
        "machine m\nlatency blorp 3\nend\n",
        2,
        "unknown op class `blorp` (expected int|fadd|fmul|fdiv|load|store)",
    );
}

#[test]
fn machine_bad_latency_value() {
    machine_err(
        "machine m\nlatency load x\nend\n",
        2,
        "expected a latency, got `x`",
    );
}

#[test]
fn machine_no_clusters() {
    machine_err("machine m\nend\n", 2, "machine `m` declares no clusters");
}

#[test]
fn machine_multicluster_needs_a_bus() {
    machine_err(
        "machine m\ncluster 1 1 1 8\ncluster 1 1 1 8\nbus 0 1\nend\n",
        5,
        "multi-cluster machine `m` needs at least one bus",
    );
}

#[test]
fn machine_multicluster_needs_bus_latency() {
    machine_err(
        "machine m\ncluster 1 1 1 8\ncluster 1 1 1 8\nbus 1 0\nend\n",
        5,
        "multi-cluster machine `m` needs a positive bus latency",
    );
}

// ---------------------------------------------------------------------
// `topology` stanza: one test per distinct error message.
// ---------------------------------------------------------------------

const TWO_CLUSTERS: &str = "machine m\ncluster 1 1 1 8\ncluster 1 1 1 8\n";

#[test]
fn machine_unknown_topology_kind() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology mesh 1 1\nend\n"),
        4,
        "unknown topology `mesh` (expected bus|ring|p2p)",
    );
}

#[test]
fn machine_duplicate_topology() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology ring 1 1\ntopology ring 1 1\nend\n"),
        5,
        "duplicate `topology` line",
    );
}

#[test]
fn machine_bus_conflicts_with_topology() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology ring 1 1\nbus 1 1\nend\n"),
        5,
        "`bus` conflicts with an earlier `topology` line",
    );
    machine_err(
        &format!("{TWO_CLUSTERS}bus 1 1\ntopology ring 1 1\nend\n"),
        5,
        "`topology` conflicts with an earlier `bus` line",
    );
}

#[test]
fn machine_bad_topology_fields() {
    let cases = [
        ("topology bus x 1", "expected a bus count, got `x`"),
        ("topology bus 1 x", "expected a bus latency, got `x`"),
        (
            "topology bus 1 1 turbo",
            "unexpected bus flag `turbo` (expected `pipelined`)",
        ),
        ("topology ring x 1", "expected a ring hop latency, got `x`"),
        (
            "topology ring 1 x",
            "expected a links-per-hop count, got `x`",
        ),
        ("topology p2p x", "expected a channel count, got `x`"),
        (
            "topology p2p 1 x",
            "expected a default link latency, got `x`",
        ),
        ("topology p2p 1 0", "default link latency must be positive"),
    ];
    for (line, needle) in cases {
        machine_err(&format!("{TWO_CLUSTERS}{line}\nend\n"), 4, needle);
    }
}

#[test]
fn machine_bad_link_fields() {
    let head = format!("{TWO_CLUSTERS}topology p2p 1 1\n");
    let cases = [
        ("link x 1 1", "expected a source cluster index, got `x`"),
        (
            "link 0 x 1",
            "expected a destination cluster index, got `x`",
        ),
        ("link 0 1 x", "expected a link latency, got `x`"),
    ];
    for (line, needle) in cases {
        machine_err(&format!("{head}{line}\nend\n"), 5, needle);
    }
}

#[test]
fn machine_link_needs_p2p_topology() {
    machine_err(
        &format!("{TWO_CLUSTERS}link 0 1 1\nend\n"),
        4,
        "`link` requires a preceding `topology p2p` line",
    );
    machine_err(
        &format!("{TWO_CLUSTERS}topology ring 1 1\nlink 0 1 1\nend\n"),
        5,
        "`link` requires a preceding `topology p2p` line",
    );
}

#[test]
fn machine_link_endpoints_must_differ() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology p2p 1 1\nlink 1 1 2\nend\n"),
        5,
        "`link 1 1` endpoints must differ",
    );
}

#[test]
fn machine_duplicate_link() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology p2p 1 1\nlink 0 1 2\nlink 0 1 3\nend\n"),
        6,
        "duplicate `link 0 1`",
    );
}

#[test]
fn machine_single_cluster_takes_no_interconnect() {
    // The historical `bus 1 1` placeholder on unified machines is gone:
    // any interconnect line on a single-cluster machine is an error,
    // reported on the offending line.
    machine_err(
        "machine m\ncluster 4 4 4 32\nbus 1 1\nend\n",
        3,
        "single-cluster machine `m` takes no interconnect",
    );
    machine_err(
        "machine m\ncluster 4 4 4 32\ntopology ring 1 1\nend\n",
        3,
        "single-cluster machine `m` takes no interconnect",
    );
}

#[test]
fn machine_ring_needs_positive_shape() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology ring 0 1\nend\n"),
        5,
        "ring hop latency of machine `m` must be positive",
    );
    machine_err(
        &format!("{TWO_CLUSTERS}topology ring 1 0\nend\n"),
        5,
        "ring of machine `m` needs at least one link per hop",
    );
}

#[test]
fn machine_p2p_needs_channels() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology p2p 0 1\nend\n"),
        5,
        "p2p topology of machine `m` needs at least one channel",
    );
}

#[test]
fn machine_p2p_link_out_of_range() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology p2p 1 1\nlink 0 2 1\nend\n"),
        5,
        "link 0 2 of machine `m` names a cluster out of range (2 clusters)",
    );
}

#[test]
fn machine_p2p_link_latency_must_be_positive() {
    machine_err(
        &format!("{TWO_CLUSTERS}topology p2p 1 1\nlink 0 1 0\nend\n"),
        5,
        "link 0 1 of machine `m` needs a positive latency",
    );
}

#[test]
fn machine_p2p_missing_link_latency() {
    // No default latency and an incomplete link set: the gap is named,
    // reported at the `end` line where the matrix is assembled.
    machine_err(
        &format!("{TWO_CLUSTERS}topology p2p 1\nlink 0 1 2\nend\n"),
        6,
        "p2p topology of machine `m` is missing the latency of link 1 0",
    );
}

#[test]
fn machine_pipelined_bus_flag_requires_topology_form() {
    // The legacy `bus` line takes exactly two fields; `pipelined` only
    // exists in the `topology bus` stanza.
    machine_err(
        &format!("{TWO_CLUSTERS}bus 1 1 pipelined\nend\n"),
        4,
        "expected a bus latency",
    );
}

#[test]
fn machine_unterminated_block_reports_opening_line() {
    machine_err(
        "# hdr\nmachine open\ncluster 1 1 1 4\n",
        2,
        "never closed with `end`",
    );
}

#[test]
fn machine_exactly_one_expected() {
    let e = parse_machine("# empty\n").unwrap_err();
    assert!(e
        .to_string()
        .contains("expected exactly one machine, found 0"));
    let two = "machine a\ncluster 1 1 1 4\nend\nmachine b\ncluster 1 1 1 4\nend\n";
    let e = parse_machine(two).unwrap_err();
    assert_eq!(e.line, 6);
    assert!(e.to_string().contains("found 2"));
}
