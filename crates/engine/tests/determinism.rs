//! Engine determinism: the same job spec must yield identical results —
//! and identical JSONL modulo line order — whether one worker or many run
//! the sweep.
//!
//! The comparison worker count defaults to 8 and can be pinned with
//! `GPSCHED_TEST_WORKERS` (CI runs the suite at 1 and 8 explicitly, so
//! both the degenerate single-worker path and a contended pool are
//! exercised on every push).

use gpsched_engine::{run_sweep, JobSpec, SweepOptions};
use gpsched_machine::MachineConfig;
use gpsched_sched::Algorithm;
use gpsched_workloads::{spec_suite, synth::synthesize, SynthProfile};
use std::collections::BTreeSet;

/// The "many workers" side of the comparisons (`GPSCHED_TEST_WORKERS`,
/// default 8).
fn test_workers() -> usize {
    std::env::var("GPSCHED_TEST_WORKERS")
        .ok()
        .and_then(|w| w.parse().ok())
        .unwrap_or(8)
}

fn job() -> JobSpec {
    let suite = spec_suite();
    let program = suite.iter().find(|p| p.name == "su2cor").expect("exists");
    let mut job = JobSpec::new()
        .program(program)
        .machines([
            MachineConfig::unified(32),
            MachineConfig::two_cluster(32, 1, 1),
        ])
        .algorithms(Algorithm::ALL)
        // The variant axis must be exactly as deterministic as the paper
        // algorithms.
        .algorithm(gpsched_sched::AlgorithmSpec::GP_NOREPART)
        .algorithm(gpsched_sched::AlgorithmSpec::URACAM_GREEDY);
    for seed in 0..3 {
        job = job.loop_in(
            "synth",
            synthesize(format!("s{seed}"), &SynthProfile::default(), seed),
        );
    }
    job
}

/// The order-independent, volatile-field-free view of a JSONL stream:
/// every line reduced to its canonical fields, as a set.
fn canonical_lines(jsonl: &[u8]) -> BTreeSet<String> {
    String::from_utf8_lossy(jsonl)
        .lines()
        .map(|line| {
            // Strip the volatile measurements; keep everything else.
            let cut = line
                .find(",\"cache_hit\":")
                .unwrap_or_else(|| panic!("no volatile fields in {line}"));
            line[..cut].to_string()
        })
        .collect()
}

#[test]
fn one_worker_and_many_workers_agree() {
    let job = job();
    let mut jsonl1: Vec<u8> = Vec::new();
    let mut jsonl8: Vec<u8> = Vec::new();
    let serial = run_sweep(&job, &SweepOptions::serial(), Some(&mut jsonl1));
    let parallel = run_sweep(
        &job,
        &SweepOptions {
            workers: test_workers(),
            use_cache: true,
            progress: false,
        },
        Some(&mut jsonl8),
    );

    // Returned records are already in unit order: compare directly.
    assert_eq!(serial.records.len(), parallel.records.len());
    for (a, b) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(a.unit, b.unit);
        assert_eq!(
            a.canonical_fields(),
            b.canonical_fields(),
            "unit {}",
            a.unit
        );
    }

    // The JSONL streams may interleave differently but must carry the
    // same canonical lines.
    assert_eq!(canonical_lines(&jsonl1), canonical_lines(&jsonl8));
    assert_eq!(canonical_lines(&jsonl1).len(), job.unit_count());
}

#[test]
fn racing_is_deterministic_across_worker_counts() {
    // Intra-unit II-attempt racing engages on large units when the pool
    // is parallel. Whatever the race width, the reduction is
    // lowest-II-wins — exactly the sequential answer — so the canonical
    // sweep JSONL must be byte-identical between one worker (sequential
    // ladders) and a contended pool (raced ladders).
    let suite = spec_suite();
    let mut job = JobSpec::new()
        .machines([
            MachineConfig::two_cluster(32, 1, 1),
            MachineConfig::four_cluster(64, 1, 2),
        ])
        .algorithms([Algorithm::Gp, Algorithm::Uracam]);
    for p in &suite {
        for l in &p.loops {
            if l.op_count() >= 64 {
                job = job.loop_in(p.name.to_string(), l.clone());
            }
        }
    }
    assert!(!job.loops.is_empty(), "suite must contain large loops");

    let canonical_jsonl = |r: &gpsched_engine::SweepResult| -> Vec<u8> {
        r.records
            .iter()
            .map(|rec| format!("{{\"unit\":{},{}}}\n", rec.unit, rec.canonical_fields()))
            .collect::<String>()
            .into_bytes()
    };
    let serial = run_sweep(&job, &SweepOptions::serial(), None);
    let raced = run_sweep(
        &job,
        &SweepOptions {
            workers: test_workers(),
            use_cache: true,
            progress: false,
        },
        None,
    );
    assert_eq!(canonical_jsonl(&serial), canonical_jsonl(&raced));
}

#[test]
fn portfolio_is_deterministic_across_worker_counts_and_cache_states() {
    // The portfolio race ranks candidates from DDG features and runs them
    // strictly in rank order, so its selection must not depend on the
    // worker count, the winner memo, or cache warmth. Mixed fixed +
    // portfolio specs in one job also exercise the memo keying.
    let suite = spec_suite();
    let mut job = JobSpec::new()
        .machines([
            MachineConfig::unified(32),
            MachineConfig::two_cluster(32, 1, 1),
            MachineConfig::four_cluster(64, 1, 2),
        ])
        .algorithms([Algorithm::Gp])
        .algorithm(gpsched_sched::AlgorithmSpec::PORTFOLIO)
        .algorithm(gpsched_sched::AlgorithmSpec::parse("portfolio:5:8").expect("parses"));
    let program = suite.iter().find(|p| p.name == "hydro2d").expect("exists");
    job = job.program(program);
    for seed in 0..3 {
        job = job.loop_in(
            "synth",
            synthesize(format!("p{seed}"), &SynthProfile::default(), seed),
        );
    }

    let canonical = |r: &gpsched_engine::SweepResult| -> Vec<String> {
        r.records
            .iter()
            .map(|rec| format!("{{\"unit\":{},{}}}", rec.unit, rec.canonical_fields()))
            .collect()
    };
    let serial = run_sweep(&job, &SweepOptions::serial(), None);
    let parallel = run_sweep(
        &job,
        &SweepOptions {
            workers: test_workers(),
            use_cache: true,
            progress: false,
        },
        None,
    );
    let uncached = run_sweep(
        &job,
        &SweepOptions {
            workers: 1,
            use_cache: false,
            progress: false,
        },
        None,
    );
    let reference = canonical(&serial);
    assert_eq!(
        reference,
        canonical(&parallel),
        "worker count changed portfolio results"
    );
    assert_eq!(
        reference,
        canonical(&uncached),
        "winner memo changed portfolio results"
    );
    // Every portfolio unit scheduled (none dropped to a failure record),
    // and the record keeps the portfolio display name — `Portfolio` and
    // `Portfolio:5:8` — not the selected fixed spec's.
    let portfolio_records: Vec<_> = serial
        .records
        .iter()
        .filter(|r| r.algorithm.starts_with("Portfolio"))
        .collect();
    assert_eq!(portfolio_records.len(), 2 * 3 * job.loops.len());
    assert!(portfolio_records.iter().all(|r| r.ipc > 0.0));
    assert!(portfolio_records
        .iter()
        .any(|r| r.algorithm == "Portfolio:5:8"));
}

#[test]
fn cache_does_not_change_results() {
    let job = job();
    let cached = run_sweep(&job, &SweepOptions::serial(), None);
    let uncached = run_sweep(
        &job,
        &SweepOptions {
            workers: 1,
            use_cache: false,
            progress: false,
        },
        None,
    );
    for (a, b) in cached.records.iter().zip(&uncached.records) {
        assert_eq!(
            a.canonical_fields(),
            b.canonical_fields(),
            "unit {}",
            a.unit
        );
    }
    assert!(cached.stats.cache_hits > 0);
    assert_eq!(uncached.stats.cache_hits, 0);
}

#[test]
fn repeated_sweeps_are_identical() {
    let job = job();
    let a = run_sweep(&job, &SweepOptions::default(), None);
    let b = run_sweep(&job, &SweepOptions::default(), None);
    assert_eq!(
        a.records
            .iter()
            .map(|r| r.canonical_fields())
            .collect::<Vec<_>>(),
        b.records
            .iter()
            .map(|r| r.canonical_fields())
            .collect::<Vec<_>>()
    );
}
