//! End-to-end tests of the `gpsched-serve` daemon: a real listener on an
//! ephemeral port, the std-only client from `serve::client`, and the
//! in-process batch engine as the reference answer.
//!
//! The contract under test: a daemon answer is *byte-identical* to the
//! batch answer after canonicalization (dropping the volatile
//! `cache_hit`/`sched_time_us` tail), whatever the worker count, client
//! concurrency, or cache warmth — and no request, however malformed, kills
//! the daemon.

use gpsched_engine::serve::{client, serve, ServeOptions};
use gpsched_engine::{canonical_json_line, run_sweep, JobSpec, SweepOptions};
use gpsched_machine::MachineConfig;
use gpsched_sched::Algorithm;
use gpsched_workloads::{synth::synthesize, SynthProfile};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// Worker count for the daemon side (`GPSCHED_TEST_WORKERS`, default 8) —
/// CI runs the suite at 1 and 8 so both the serial path and a contended
/// pool serve jobs.
fn test_workers() -> usize {
    std::env::var("GPSCHED_TEST_WORKERS")
        .ok()
        .and_then(|w| w.parse().ok())
        .unwrap_or(8)
}

fn start_server(opts: ServeOptions) -> (gpsched_engine::serve::Server, String) {
    let server = serve(&opts).expect("daemon must start");
    let addr = server.addr().to_string();
    (server, addr)
}

fn ephemeral(workers: usize) -> ServeOptions {
    ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServeOptions::default()
    }
}

/// A small corpus with shared structure (so the cache matters) embedded as
/// a job body, plus the equivalent [`JobSpec`] for the batch reference.
fn reference_job_and_body() -> (JobSpec, String) {
    let mut job = JobSpec::new();
    let mut ddg_text = String::new();
    for seed in 0..4u64 {
        let ddg = synthesize(format!("s{seed}"), &SynthProfile::default(), seed);
        ddg_text.push_str(&gpsched_engine::serialize_ddg(&ddg));
        job = job.loop_in("e2e", ddg);
    }
    job = job
        .machines([
            MachineConfig::unified(32),
            MachineConfig::two_cluster(32, 1, 1),
        ])
        .algorithms(Algorithm::ALL);
    let body = format!("group e2e\nmachines u-r32,c2r32b1l1\n{ddg_text}");
    (job, body)
}

/// Canonicalized, unit-sorted view of a JSONL line set.
fn canon_sorted(lines: &[String]) -> Vec<String> {
    let mut v: Vec<String> = lines.iter().map(|l| canonical_json_line(l)).collect();
    v.sort();
    v
}

#[test]
fn daemon_results_are_byte_identical_to_batch() {
    let (job, body) = reference_job_and_body();
    let mut batch_jsonl: Vec<u8> = Vec::new();
    run_sweep(&job, &SweepOptions::serial(), Some(&mut batch_jsonl));
    let batch_lines: Vec<String> = String::from_utf8(batch_jsonl)
        .expect("utf8")
        .lines()
        .map(str::to_string)
        .collect();

    let (_server, addr) = start_server(ephemeral(test_workers()));
    let id = client::submit(&addr, &body).expect("submit");
    let daemon_lines = client::results(&addr, id).expect("results");

    assert_eq!(daemon_lines.len(), job.unit_count());
    assert_eq!(
        canon_sorted(&daemon_lines),
        canon_sorted(&batch_lines),
        "daemon JSONL must be byte-identical to the batch CLI's after \
         canonicalization"
    );
    // Status reflects completion.
    let status = client::status(&addr, id).expect("status");
    assert!(status.contains("\"status\":\"done\""), "{status}");
}

#[test]
fn concurrent_clients_all_get_identical_deterministic_answers() {
    let (job, body) = reference_job_and_body();
    let (_server, addr) = start_server(ephemeral(test_workers()));

    const CLIENTS: usize = 4;
    let results: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = addr.clone();
                let body = body.clone();
                scope.spawn(move || {
                    let id = client::submit(&addr, &body).expect("submit");
                    client::results(&addr, id).expect("results")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    let first = canon_sorted(&results[0]);
    assert_eq!(first.len(), job.unit_count());
    for (i, r) in results.iter().enumerate().skip(1) {
        assert_eq!(canon_sorted(r), first, "client {i} diverged");
    }

    // The daemon pool (N workers) must agree with a 1-worker daemon.
    let (_serial_server, serial_addr) = start_server(ephemeral(1));
    let id = client::submit(&serial_addr, &body).expect("submit");
    let serial = client::results(&serial_addr, id).expect("results");
    assert_eq!(canon_sorted(&serial), first, "worker count changed results");
}

fn temp_cache(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpsched-serve-e2e-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join("seeds.cache")
}

#[test]
fn kill_and_restart_serves_warm_from_disk_cache() {
    let (job, body) = reference_job_and_body();
    let cache_path = temp_cache("warm");

    // Cold daemon: populate the disk cache.
    let cold_lines = {
        let (server, addr) = start_server(ServeOptions {
            cache_path: Some(cache_path.clone()),
            ..ephemeral(test_workers())
        });
        let id = client::submit(&addr, &body).expect("submit");
        let lines = client::results(&addr, id).expect("results");
        drop(server); // "kill" the daemon
        lines
    };
    assert!(
        cache_path.exists(),
        "daemon must have persisted its seed cache"
    );

    // Restarted daemon, same cache file: every unit's seed is served from
    // disk — the warm restart the cache exists for.
    let (_server, addr) = start_server(ServeOptions {
        cache_path: Some(cache_path.clone()),
        ..ephemeral(test_workers())
    });
    let health = client::health(&addr).expect("health");
    assert!(health.contains("\"cache_entries\":0"), "{health}");
    let id = client::submit(&addr, &body).expect("submit");
    let warm_lines = client::results(&addr, id).expect("results");

    assert_eq!(canon_sorted(&warm_lines), canon_sorted(&cold_lines));
    let hits = warm_lines
        .iter()
        .filter(|l| l.contains("\"cache_hit\":true"))
        .count();
    assert_eq!(
        hits,
        job.unit_count(),
        "every unit of the warm run must hit the restored cache"
    );
    let health = client::health(&addr).expect("health");
    assert!(
        !health.contains("\"disk_hits\":0}"),
        "disk hits must be counted: {health}"
    );
}

#[test]
fn malformed_requests_never_kill_the_daemon() {
    let (_server, addr) = start_server(ephemeral(1));

    // Raw garbage instead of HTTP.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        let _ = s.write_all(b"\x00\xff\xfe not http at all\r\n\r\n");
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
    }
    // Malformed request line.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        let _ = s.write_all(b"GET\r\n\r\n");
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }
    // Bad Content-Length.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        let _ = s.write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }
    // Oversized declared body.
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        let _ = s.write_all(b"POST /jobs HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n");
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 413"), "{out}");
    }
    // Syntactically invalid job body → 400 with a line number.
    {
        let (code, body) = client::request(
            &addr,
            "POST",
            "/jobs",
            "machines u-r32\nddg t\ntrips zap\nend\n",
        )
        .expect("request");
        assert_eq!(code, 400);
        assert!(body.contains("line 3"), "{body}");
    }
    // A job whose units are unschedulable must come back as failure
    // records, not kill the executor. daxpy needs FP units; this custom
    // machine has none.
    {
        let body = "\
machine intonly
cluster 2 0 1 16
end
ddg fpl
trips 10
op fmul 3 a
op fadd 2 b
dep 0 1 flow 3 0
end
";
        let id = client::submit(&addr, body).expect("submit");
        let lines = client::results(&addr, id).expect("results");
        assert!(!lines.is_empty());
        assert!(
            lines.iter().all(|l| l.contains("\"error\":")),
            "unschedulable units are failure records: {lines:?}"
        );
        let status = client::status(&addr, id).expect("status");
        assert!(status.contains("\"status\":\"done\""), "{status}");
    }
    // Unknown paths and jobs.
    {
        let (code, _) = client::request(&addr, "GET", "/nope", "").expect("request");
        assert_eq!(code, 404);
        let (code, _) = client::request(&addr, "GET", "/jobs/999", "").expect("request");
        assert_eq!(code, 404);
        let (code, _) = client::request(&addr, "DELETE", "/jobs", "").expect("request");
        assert_eq!(code, 405);
    }

    // After all of that, the daemon still schedules real work.
    let health = client::health(&addr).expect("health");
    assert!(health.contains("\"ok\":true"), "{health}");
    let (_, body) = reference_job_and_body();
    let id = client::submit(&addr, &body).expect("submit");
    let lines = client::results(&addr, id).expect("results");
    assert!(!lines.is_empty());
}

#[test]
fn metrics_endpoint_exports_the_live_trace_summary() {
    // Without --trace the endpoint answers, but reports tracing is off.
    {
        let (_server, addr) = start_server(ephemeral(1));
        let (code, body) = client::request(&addr, "GET", "/metrics", "").expect("request");
        assert_eq!(code, 200);
        assert!(body.contains("\"tracing\":false"), "{body}");
    }

    // A traced daemon owns the process-wide trace session for its
    // lifetime, so /metrics exports live phase and counter totals — note
    // only one test in this binary may hold the (global) session.
    let (_job, mut body) = reference_job_and_body();
    body.push_str("algos gp,portfolio\n");
    let (_server, addr) = start_server(ServeOptions {
        trace: true,
        ..ephemeral(test_workers())
    });
    let id = client::submit(&addr, &body).expect("submit");
    let lines = client::results(&addr, id).expect("results");
    assert!(lines.iter().all(|l| !l.contains("\"error\":")), "{lines:?}");

    let (code, metrics) = client::request(&addr, "GET", "/metrics", "").expect("request");
    assert_eq!(code, 200);
    assert!(metrics.starts_with('{') && metrics.trim_end().ends_with('}'));
    assert!(metrics.contains("\"phases\":["), "{metrics}");
    assert!(metrics.contains("\"wall_ns\":"), "{metrics}");
    // The request counter covers the submit + results calls above, and the
    // portfolio algorithm leaves its ranking span in the live profile.
    assert!(metrics.contains("\"serve.request\":"), "{metrics}");
    assert!(metrics.contains("\"name\":\"portfolio.rank\""), "{metrics}");
}

#[test]
fn shutdown_endpoint_stops_the_daemon_gracefully() {
    let (mut server, addr) = start_server(ephemeral(1));
    let (_, body) = reference_job_and_body();
    let id = client::submit(&addr, &body).expect("submit");
    // Results arrive even if shutdown lands while the job runs: the
    // executor drains the in-flight job before exiting.
    client::shutdown(&addr).expect("shutdown");
    let lines = client::results(&addr, id);
    // Either the stream completed (job ran first) or the connection was
    // refused post-shutdown — both are graceful; what must not happen is a
    // hang, which the join below would turn into a test timeout.
    drop(lines);
    server.join();
}
