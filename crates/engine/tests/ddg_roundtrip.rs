//! Property test of the `.ddg` interchange format: any loop the synthetic
//! generator can produce must survive serialize → parse structurally
//! intact, and the bundled suites must round-trip as corpora.

use gpsched_engine::text::{
    parse_corpus, parse_ddg, same_structure, serialize_corpus, serialize_ddg,
};
use gpsched_workloads::rng::Prng;
use gpsched_workloads::synth::{synthesize, SynthProfile};
use gpsched_workloads::{kernels, spec_suite};

/// A random but valid synthesis profile.
fn arb_profile(rng: &mut Prng) -> SynthProfile {
    SynthProfile {
        ops: rng.gen_range(1usize..60),
        mem_frac: rng.gen_f64() * 0.7,
        store_frac: rng.gen_f64() * 0.7,
        fp_frac: rng.gen_f64(),
        fpdiv_frac: rng.gen_f64() * 0.1,
        chain_bias: rng.gen_f64(),
        recurrences: rng.gen_range(0usize..5),
        max_distance: rng.gen_range(1u32..4),
        trip_range: (1, 5000),
        ..SynthProfile::default()
    }
}

#[test]
fn synth_loops_round_trip() {
    let mut rng = Prng::seed_from_u64(0x2DD6);
    for case in 0..100 {
        let profile = arb_profile(&mut rng);
        let seed = rng.next_u64();
        let ddg = synthesize(format!("case-{case}"), &profile, seed);
        let text = serialize_ddg(&ddg);
        let back =
            parse_ddg(&text).unwrap_or_else(|e| panic!("case {case} (seed {seed}): {e}\n{text}"));
        assert!(
            same_structure(&ddg, &back),
            "case {case} (seed {seed}) changed structurally:\n{text}"
        );
    }
}

#[test]
fn kernel_corpus_round_trips() {
    let corpus = kernels::all_kernels(777);
    let text = serialize_corpus(corpus.iter());
    let back = parse_corpus(&text).expect("kernel corpus parses");
    assert_eq!(back.len(), corpus.len());
    for (a, b) in corpus.iter().zip(&back) {
        assert!(same_structure(a, b), "{}", a.name());
    }
}

#[test]
fn spec_suite_round_trips() {
    // The acceptance-criteria case: a synth-generated corpus exported to
    // `.ddg` text reloads to structurally identical DDGs.
    let loops: Vec<_> = spec_suite().into_iter().flat_map(|p| p.loops).collect();
    assert_eq!(loops.len(), 70);
    let text = serialize_corpus(loops.iter());
    let back = parse_corpus(&text).expect("spec corpus parses");
    assert_eq!(back.len(), loops.len());
    for (a, b) in loops.iter().zip(&back) {
        assert!(same_structure(a, b), "{}", a.name());
    }
}

#[test]
fn double_round_trip_is_fixpoint() {
    // serialize(parse(serialize(x))) == serialize(x): the text form is
    // canonical.
    let ddg = synthesize("fixpoint", &SynthProfile::default(), 99);
    let once = serialize_ddg(&ddg);
    let twice = serialize_ddg(&parse_ddg(&once).unwrap());
    assert_eq!(once, twice);
}
