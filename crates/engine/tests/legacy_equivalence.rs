//! Refactor-neutrality pin: the four legacy algorithms must produce
//! byte-identical canonical [`RunRecord`]s forever.
//!
//! The fixture `fixtures/legacy_records.golden` was generated from the
//! pre-pipeline monolithic drivers (PR 2 state) by running this test with
//! `GPSCHED_BLESS=1`. Canonical fields contain no timing or cache state,
//! so the comparison is exact across hosts and worker counts; any
//! scheduling-behaviour change in the policy pipeline shows up here as a
//! diff, not as noise.

use gpsched_engine::{run_sweep, JobSpec, SweepOptions};
use gpsched_machine::MachineConfig;
use gpsched_sched::Algorithm;
use gpsched_workloads::{kernels, spec_suite, synth::synthesize, SynthProfile};

/// A deliberately diverse job: every hand-written kernel, one full
/// SPECfp95 program, and a handful of seeded synthetic loops, across the
/// three machine shapes, under all four legacy algorithms.
fn pinned_job() -> JobSpec {
    let suite = spec_suite();
    let program = suite.iter().find(|p| p.name == "tomcatv").expect("exists");
    let mut job = JobSpec::new().program(program);
    for ddg in kernels::all_kernels(1000) {
        job = job.loop_in("kernels", ddg);
    }
    for seed in 0..5u64 {
        job = job.loop_in(
            "synth",
            synthesize(format!("pin{seed}"), &SynthProfile::default(), seed),
        );
    }
    job.machines([
        MachineConfig::unified(32),
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::four_cluster(64, 1, 2),
    ])
    .algorithms(Algorithm::ALL)
}

#[test]
fn legacy_algorithms_match_golden_records() {
    let job = pinned_job();
    let result = run_sweep(&job, &SweepOptions::serial(), None);
    let got: String = result
        .records
        .iter()
        .map(|r| format!("{}\n", r.canonical_fields()))
        .collect();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/legacy_records.golden"
    );
    if std::env::var_os("GPSCHED_BLESS").is_some() {
        std::fs::write(path, &got).expect("write golden fixture");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden fixture exists");
    assert_eq!(
        want.lines().count(),
        job.unit_count(),
        "fixture covers every unit"
    );
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        assert_eq!(
            w, g,
            "canonical record {i} diverged from the legacy drivers"
        );
    }
    assert_eq!(want, got, "record count diverged");
}
