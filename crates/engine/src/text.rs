//! The `.ddg` textual interchange format for loop data-dependence graphs.
//!
//! A line-oriented, human-editable format so external loop corpora can be
//! fed to the engine and the bundled suites can be exported, diffed and
//! version-controlled. One file holds any number of loops:
//!
//! ```text
//! # full-line comments and blank lines are ignored
//! ddg daxpy
//! trips 1000
//! # op lines: class, result latency, then the free-form name
//! op int 1 &x[i]
//! op load 2 x[i]
//! op fmul 3 a*x
//! # dep lines: src, dst, flow|mem, latency, distance
//! dep 0 1 flow 1 0
//! dep 1 2 flow 2 0
//! end
//! ```
//!
//! Operations are implicitly numbered in order of appearance, starting at
//! 0; `dep` lines may only reference already-declared operations, which
//! makes every file trivially checkable in one pass. Names extend to the
//! end of the line and may contain spaces (they may not contain newlines,
//! which is not a restriction in practice).
//!
//! Parsing validates through [`DdgBuilder`], so a file that parses yields
//! the same invariants as a programmatically built DDG (acyclic distance-0
//! subgraph, no flow edges out of stores, positive trip count).

use gpsched_ddg::{Ddg, DdgBuilder, DdgError, OpId};
use gpsched_machine::OpClass;
use std::error::Error;
use std::fmt;

/// Errors reported while parsing `.ddg` text. Every variant carries the
/// 1-based line number it was detected on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TextError {
    /// A malformed line: unknown directive, missing or unparsable field.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A `dep` line referenced an operation index not declared yet.
    OpOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The offending index.
        index: usize,
        /// Operations declared so far.
        declared: usize,
    },
    /// The loop failed DDG validation at its `end` line.
    Invalid {
        /// 1-based line number of the `end`.
        line: usize,
        /// The underlying validation error.
        source: DdgError,
    },
    /// The text ended inside a `ddg … end` block.
    UnterminatedBlock {
        /// 1-based line number where the block started.
        start_line: usize,
        /// Name of the unterminated loop.
        name: String,
    },
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            TextError::OpOutOfRange {
                line,
                index,
                declared,
            } => write!(
                f,
                "line {line}: op index {index} out of range ({declared} ops declared so far)"
            ),
            TextError::Invalid { line, source } => {
                write!(f, "line {line}: invalid ddg: {source}")
            }
            TextError::UnterminatedBlock { start_line, name } => {
                write!(
                    f,
                    "line {start_line}: ddg `{name}` is never closed with `end`"
                )
            }
        }
    }
}

impl Error for TextError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TextError::Invalid { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Serializes one DDG as a `.ddg` block (including the trailing `end`).
pub fn serialize_ddg(ddg: &Ddg) -> String {
    let mut out = String::new();
    out.push_str(&format!("ddg {}\n", ddg.name()));
    out.push_str(&format!("trips {}\n", ddg.trip_count()));
    for id in ddg.op_ids() {
        let op = ddg.op(id);
        if op.name.is_empty() {
            out.push_str(&format!("op {} {}\n", op.class, op.latency));
        } else {
            out.push_str(&format!("op {} {} {}\n", op.class, op.latency, op.name));
        }
    }
    for e in ddg.dep_ids() {
        let (s, d) = ddg.dep_endpoints(e);
        let dep = ddg.dep(e);
        let kind = match dep.kind {
            gpsched_ddg::DepKind::Flow => "flow",
            gpsched_ddg::DepKind::Mem => "mem",
        };
        out.push_str(&format!(
            "dep {} {} {} {} {}\n",
            s.index(),
            d.index(),
            kind,
            dep.latency,
            dep.distance
        ));
    }
    out.push_str("end\n");
    out
}

/// Serializes a whole corpus: one block per DDG, blank-line separated,
/// with a header comment.
pub fn serialize_corpus<'a>(ddgs: impl IntoIterator<Item = &'a Ddg>) -> String {
    let mut out = String::from("# gpsched .ddg corpus\n");
    for ddg in ddgs {
        out.push('\n');
        out.push_str(&serialize_ddg(ddg));
    }
    out
}

use crate::textutil::token;

fn parse_num<T: std::str::FromStr>(field: &str, what: &str, line: usize) -> Result<T, TextError> {
    crate::textutil::parse_num(field, what, line, |line, msg| TextError::Syntax {
        line,
        msg,
    })
}

/// Sanity bounds on numeric `.ddg` fields. Parsed values feed `i64`
/// arithmetic throughout the timing and cost machinery ((trips−1)·II,
/// latency − II·distance, Bellman–Ford path sums); these caps keep every
/// such product orders of magnitude away from overflow while being far
/// beyond anything a real loop corpus carries. Out-of-range values are
/// line-numbered parse errors, not silent wraparound downstream.
const MAX_TRIPS: u64 = 1_000_000_000_000;
/// Maximum op or dep latency in cycles.
const MAX_LATENCY: u32 = 100_000;
/// Maximum iteration distance of a carried dependence.
const MAX_DISTANCE: u32 = 10_000;
/// Maximum operations per loop block.
const MAX_OPS: usize = 100_000;
/// Maximum dependences per loop block.
const MAX_DEPS: usize = 1_000_000;

struct Block {
    start_line: usize,
    name: String,
    builder: DdgBuilder,
    ops: Vec<OpId>,
    deps: usize,
}

/// Parses a `.ddg` corpus: every `ddg … end` block in `text`, in order.
///
/// An empty (or comment-only) file yields an empty vector.
///
/// # Errors
///
/// Returns the first [`TextError`] encountered; parsing is strict — any
/// unknown directive or malformed field fails rather than being skipped.
pub fn parse_corpus(text: &str) -> Result<Vec<Ddg>, TextError> {
    let mut out = Vec::new();
    let mut block: Option<Block> = None;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        // Comments are full-line only: free-form op/ddg names may contain
        // `#`, so a trailing comment would be ambiguous.
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (word, rest) = token(line);
        match word {
            "ddg" => {
                if let Some(b) = &block {
                    return Err(TextError::Syntax {
                        line: line_no,
                        msg: format!("`ddg` inside unterminated block `{}`", b.name),
                    });
                }
                if rest.is_empty() {
                    return Err(TextError::Syntax {
                        line: line_no,
                        msg: "`ddg` requires a name".to_string(),
                    });
                }
                block = Some(Block {
                    start_line: line_no,
                    name: rest.to_string(),
                    builder: DdgBuilder::new(rest),
                    ops: Vec::new(),
                    deps: 0,
                });
            }
            "trips" => {
                let b = block.as_mut().ok_or_else(|| outside(line_no, "trips"))?;
                let n: u64 = parse_num(rest, "a trip count", line_no)?;
                if n > MAX_TRIPS {
                    return Err(TextError::Syntax {
                        line: line_no,
                        msg: format!("trip count {n} out of range (max {MAX_TRIPS})"),
                    });
                }
                b.builder.trip_count(n);
            }
            "op" => {
                let b = block.as_mut().ok_or_else(|| outside(line_no, "op"))?;
                let (class_s, rest) = token(rest);
                let (lat_s, name) = token(rest);
                let class = OpClass::parse(class_s).ok_or_else(|| TextError::Syntax {
                    line: line_no,
                    msg: format!(
                        "unknown op class `{class_s}` (expected int|fadd|fmul|fdiv|load|store)"
                    ),
                })?;
                let latency: u32 = parse_num(lat_s, "a latency", line_no)?;
                if latency > MAX_LATENCY {
                    return Err(TextError::Syntax {
                        line: line_no,
                        msg: format!("latency {latency} out of range (max {MAX_LATENCY})"),
                    });
                }
                if b.ops.len() >= MAX_OPS {
                    return Err(TextError::Syntax {
                        line: line_no,
                        msg: format!("loop `{}` exceeds {MAX_OPS} operations", b.name),
                    });
                }
                let id = b.builder.op_with_latency(class, name, latency);
                b.ops.push(id);
            }
            "dep" => {
                let b = block.as_mut().ok_or_else(|| outside(line_no, "dep"))?;
                let (src_s, rest) = token(rest);
                let (dst_s, rest) = token(rest);
                let (kind_s, rest) = token(rest);
                let (lat_s, dist_s) = token(rest);
                let src: usize = parse_num(src_s, "a source op index", line_no)?;
                let dst: usize = parse_num(dst_s, "a destination op index", line_no)?;
                for idx in [src, dst] {
                    if idx >= b.ops.len() {
                        return Err(TextError::OpOutOfRange {
                            line: line_no,
                            index: idx,
                            declared: b.ops.len(),
                        });
                    }
                }
                let latency: u32 = parse_num(lat_s, "a latency", line_no)?;
                let distance: u32 = parse_num(dist_s.trim(), "a distance", line_no)?;
                if latency > MAX_LATENCY {
                    return Err(TextError::Syntax {
                        line: line_no,
                        msg: format!("latency {latency} out of range (max {MAX_LATENCY})"),
                    });
                }
                if distance > MAX_DISTANCE {
                    return Err(TextError::Syntax {
                        line: line_no,
                        msg: format!("distance {distance} out of range (max {MAX_DISTANCE})"),
                    });
                }
                if b.deps >= MAX_DEPS {
                    return Err(TextError::Syntax {
                        line: line_no,
                        msg: format!("loop `{}` exceeds {MAX_DEPS} dependences", b.name),
                    });
                }
                b.deps += 1;
                let dep = match kind_s {
                    "flow" => gpsched_ddg::Dep::flow(latency, distance),
                    "mem" => gpsched_ddg::Dep::mem(latency, distance),
                    other => {
                        return Err(TextError::Syntax {
                            line: line_no,
                            msg: format!("unknown dep kind `{other}` (expected flow|mem)"),
                        })
                    }
                };
                b.builder.dep(b.ops[src], b.ops[dst], dep);
            }
            "end" => {
                let b = block.take().ok_or_else(|| outside(line_no, "end"))?;
                let ddg = b.builder.build().map_err(|source| TextError::Invalid {
                    line: line_no,
                    source,
                })?;
                out.push(ddg);
            }
            other => {
                return Err(TextError::Syntax {
                    line: line_no,
                    msg: format!("unknown directive `{other}`"),
                });
            }
        }
    }
    if let Some(b) = block {
        return Err(TextError::UnterminatedBlock {
            start_line: b.start_line,
            name: b.name,
        });
    }
    Ok(out)
}

fn outside(line: usize, directive: &str) -> TextError {
    TextError::Syntax {
        line,
        msg: format!("`{directive}` outside a `ddg … end` block"),
    }
}

/// Parses text expected to contain exactly one DDG.
///
/// # Errors
///
/// [`TextError::Syntax`] (reported on the last line) when the file holds
/// zero or more than one loop, or any error of [`parse_corpus`].
pub fn parse_ddg(text: &str) -> Result<Ddg, TextError> {
    let mut v = parse_corpus(text)?;
    if v.len() != 1 {
        return Err(TextError::Syntax {
            line: text.lines().count(),
            msg: format!("expected exactly one ddg, found {}", v.len()),
        });
    }
    Ok(v.pop().expect("length checked"))
}

/// Structural equality of two DDGs: same name, trip count, operation list
/// (class, latency, label) and dependence list (endpoints, kind, latency,
/// distance), in identical order. This is the round-trip criterion of the
/// interchange format.
pub fn same_structure(a: &Ddg, b: &Ddg) -> bool {
    if a.name() != b.name()
        || a.trip_count() != b.trip_count()
        || a.op_count() != b.op_count()
        || a.dep_count() != b.dep_count()
    {
        return false;
    }
    if a.op_ids().zip(b.op_ids()).any(|(x, y)| a.op(x) != b.op(y)) {
        return false;
    }
    a.dep_ids()
        .zip(b.dep_ids())
        .all(|(x, y)| a.dep(x) == b.dep(y) && a.dep_endpoints(x) == b.dep_endpoints(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_machine::OpClass;

    fn sample() -> Ddg {
        let mut b = DdgBuilder::new("sample loop");
        let ld = b.op(OpClass::Load, "x[i]");
        let ml = b.op(OpClass::FpMul, "a*x");
        let st = b.op(OpClass::Store, "y[i]=");
        b.flow(ld, ml);
        b.flow(ml, st);
        b.mem(st, ld, 1);
        b.trip_count(128);
        b.build().unwrap()
    }

    #[test]
    fn round_trip_sample() {
        let d = sample();
        let text = serialize_ddg(&d);
        let back = parse_ddg(&text).unwrap();
        assert!(same_structure(&d, &back), "round trip changed:\n{text}");
    }

    #[test]
    fn serializer_output_is_stable() {
        let text = serialize_ddg(&sample());
        assert_eq!(
            text,
            "ddg sample loop\n\
             trips 128\n\
             op load 2 x[i]\n\
             op fmul 3 a*x\n\
             op store 1 y[i]=\n\
             dep 0 1 flow 2 0\n\
             dep 1 2 flow 3 0\n\
             dep 2 0 mem 1 1\n\
             end\n"
        );
    }

    #[test]
    fn corpus_round_trip_and_comments() {
        let a = sample();
        let mut b2 = DdgBuilder::new("two");
        b2.op(OpClass::IntAlu, "only");
        let b2 = b2.trip_count(5).build().unwrap();
        let text = serialize_corpus([&a, &b2]);
        assert!(text.starts_with("# gpsched .ddg corpus\n"));
        let back = parse_corpus(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert!(same_structure(&a, &back[0]));
        assert!(same_structure(&b2, &back[1]));
    }

    #[test]
    fn empty_input_is_empty_corpus() {
        assert!(parse_corpus("").unwrap().is_empty());
        assert!(parse_corpus("# nothing\n\n").unwrap().is_empty());
    }

    #[test]
    fn error_unknown_directive() {
        let err = parse_corpus("ddg x\nfrobnicate 3\nend\n").unwrap_err();
        assert!(matches!(err, TextError::Syntax { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn error_bad_class_and_bad_number() {
        let err = parse_corpus("ddg x\nop blorp 1 a\nend\n").unwrap_err();
        assert!(err.to_string().contains("blorp"));
        let err = parse_corpus("ddg x\ntrips minus-one\nend\n").unwrap_err();
        assert!(err.to_string().contains("trip count"));
    }

    #[test]
    fn error_dep_out_of_range() {
        let err = parse_corpus("ddg x\nop int 1 a\ndep 0 3 flow 1 0\nend\n").unwrap_err();
        assert_eq!(
            err,
            TextError::OpOutOfRange {
                line: 3,
                index: 3,
                declared: 1
            }
        );
    }

    #[test]
    fn error_directives_outside_block() {
        for bad in ["trips 3\n", "op int 1 a\n", "dep 0 0 flow 1 0\n", "end\n"] {
            let err = parse_corpus(bad).unwrap_err();
            assert!(err.to_string().contains("outside"), "{bad}: {err}");
        }
    }

    #[test]
    fn error_unterminated_block() {
        let err = parse_corpus("ddg open\nop int 1 a\n").unwrap_err();
        assert_eq!(
            err,
            TextError::UnterminatedBlock {
                start_line: 1,
                name: "open".to_string()
            }
        );
    }

    #[test]
    fn error_nested_ddg() {
        let err = parse_corpus("ddg a\nddg b\nend\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn error_invalid_ddg_carries_build_error() {
        // Distance-0 cycle: parses but cannot validate.
        let text = "ddg bad\nop int 1 a\nop int 1 b\n\
                    dep 0 1 flow 1 0\ndep 1 0 flow 1 0\nend\n";
        let err = parse_corpus(text).unwrap_err();
        match err {
            TextError::Invalid { line, source } => {
                assert_eq!(line, 6);
                assert_eq!(source, gpsched_ddg::DdgError::ZeroDistanceCycle);
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn parse_ddg_rejects_multiple() {
        let text = "ddg a\nop int 1 x\nend\nddg b\nop int 1 y\nend\n";
        assert!(parse_ddg(text)
            .unwrap_err()
            .to_string()
            .contains("exactly one"));
    }

    #[test]
    fn names_with_spaces_round_trip() {
        let d = sample();
        assert_eq!(d.name(), "sample loop");
        let back = parse_ddg(&serialize_ddg(&d)).unwrap();
        assert_eq!(back.name(), "sample loop");
    }
}
