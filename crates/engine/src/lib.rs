//! # gpsched-engine — parallel batch-scheduling engine
//!
//! The paper's evaluation is a large cross product: every loop of every
//! benchmark × every Table 1 machine × every algorithm. This crate turns
//! that shape into a first-class subsystem:
//!
//! * [`JobSpec`] — a declarative sweep: loops (tagged with aggregation
//!   groups), machines, algorithms, shared options;
//! * [`run_sweep`] — the executor: a `std::thread` worker pool with a
//!   shared work queue, a memoized MII/partition cache keyed by DDG
//!   content hash ([`cache`]), a streaming JSONL sink, and results
//!   returned in deterministic unit order regardless of worker count;
//! * [`record`] — per-unit [`RunRecord`]s, per-group aggregation and
//!   sweep-level [`SweepStats`] (aggregate IPC, scheduling time,
//!   fallback rate, throughput);
//! * [`text`] — the `.ddg` textual interchange format, so external loop
//!   corpora can be ingested and the bundled suites exported
//!   (round-trip tested);
//! * [`machine_text`] — the paired `.machine` interchange format for
//!   machine configurations, so custom machines sweep from text files
//!   too.
//!
//! The algorithm axis is open: [`JobSpec::algorithms`] holds
//! [`AlgorithmSpec`](gpsched_sched::AlgorithmSpec) values, so variants
//! like `gp:norepart` or `uracam:greedy-merit` sweep exactly like the
//! paper's four algorithms (`--algos gp,gp:norepart,…` on the CLI).
//!
//! The `gpsched-engine` binary wraps all of it in a CLI:
//!
//! ```text
//! gpsched-engine sweep --spec --workers 4 --out results.jsonl
//! gpsched-engine export --synth 100 --seed 7 --out corpus.ddg
//! gpsched-engine sweep --corpus corpus.ddg --machines c2r32b1l1,c4r64b1l2
//! gpsched-engine speedup --workers-list 1,2,4
//! ```
//!
//! # Example
//!
//! ```
//! use gpsched_engine::{run_sweep, JobSpec, SweepOptions};
//! use gpsched_machine::MachineConfig;
//! use gpsched_sched::Algorithm;
//! use gpsched_workloads::kernels;
//!
//! let job = JobSpec::new()
//!     .loop_in("demo", kernels::daxpy(1000))
//!     .machine(MachineConfig::two_cluster(32, 1, 1))
//!     .algorithms([Algorithm::Gp, Algorithm::Uracam]);
//! let result = run_sweep(&job, &SweepOptions::serial(), None);
//! assert_eq!(result.records.len(), 2);
//! assert!(result.records.iter().all(|r| r.ipc > 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod conformance;
pub mod diskcache;
pub mod gen;
pub mod job;
pub mod machine_text;
pub mod record;
pub mod serve;
pub mod sweep;
pub mod text;
mod textutil;

pub use cache::{ddg_content_hash, machine_key, popts_key, CacheKey, SweepCache};
pub use diskcache::DiskCache;
pub use gen::{generate_corpus, generate_corpus_text};
pub use job::{machine_from_short_name, JobSpec, LoopSpec};
pub use machine_text::{
    parse_machine, parse_machine_corpus, serialize_machine, serialize_machine_corpus,
    MachineTextError,
};
pub use record::{aggregate_by_group, canonical_json_line, GroupAggregate, RunRecord, SweepStats};
pub use serve::{serve, ServeOptions};
pub use sweep::{run_sweep, run_sweep_cached, SweepOptions, SweepResult, UnitFailure};
pub use text::{
    parse_corpus, parse_ddg, same_structure, serialize_corpus, serialize_ddg, TextError,
};
