//! Sweep results: per-unit records, JSONL rendering and aggregate stats.

use std::collections::BTreeMap;
use std::time::Duration;

/// The outcome of scheduling one (loop, machine, algorithm) unit.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Deterministic unit index within the job (see
    /// [`crate::JobSpec::unit`]).
    pub unit: usize,
    /// Aggregation group (program name).
    pub group: String,
    /// Loop name.
    pub loop_name: String,
    /// Machine short name.
    pub machine: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Achieved initiation interval.
    pub ii: i64,
    /// Schedule length of one iteration.
    pub length: i64,
    /// Useful ops per iteration (overhead ops excluded).
    pub ops: usize,
    /// Trip count used for the cycle accounting.
    pub trips: u64,
    /// Total cycles at that trip count.
    pub cycles: u64,
    /// Useful instructions per cycle.
    pub ipc: f64,
    /// Whether the modulo scheduler exhausted its II budget and the list
    /// fallback fired (always `false` for the List algorithm, which asks
    /// for list scheduling outright).
    pub list_fallback: bool,
    /// Times the GP driver recomputed the partition.
    pub repartitions: usize,
    /// Whether this unit's MII/partition came from the memo cache.
    pub cache_hit: bool,
    /// Wall-clock microseconds spent computing this unit's schedule
    /// (including MII/partition preprocessing when it was a cache miss).
    pub sched_time_us: u64,
}

/// Escapes a string for a JSON string literal.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RunRecord {
    /// One JSON object (no trailing newline) — the JSONL line of this
    /// record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"unit\":{},{},\"cache_hit\":{},\"sched_time_us\":{}}}",
            self.unit,
            self.canonical_fields(),
            self.cache_hit,
            self.sched_time_us
        )
    }

    /// The deterministic fields of the JSONL line — everything except the
    /// unit index and the volatile measurements (`cache_hit` depends on
    /// scheduling races between workers, `sched_time_us` on the host).
    /// Two sweeps of the same job spec produce identical canonical fields
    /// for every unit regardless of worker count.
    pub fn canonical_fields(&self) -> String {
        format!(
            "\"group\":\"{}\",\"loop\":\"{}\",\"machine\":\"{}\",\"algorithm\":\"{}\",\
             \"ii\":{},\"length\":{},\"ops\":{},\"trips\":{},\"cycles\":{},\
             \"ipc\":{:.6},\"list_fallback\":{},\"repartitions\":{}",
            esc(&self.group),
            esc(&self.loop_name),
            esc(&self.machine),
            esc(&self.algorithm),
            self.ii,
            self.length,
            self.ops,
            self.trips,
            self.cycles,
            self.ipc,
            self.list_fallback,
            self.repartitions
        )
    }
}

/// Reduces one JSONL result line to its deterministic core.
///
/// Drops the volatile tail — `cache_hit` (depends on races between
/// workers and on daemon cache warmth) and `sched_time_us` (depends on the
/// host) — keeping `{"unit":…,<canonical fields>}`. Two runs of the same
/// job produce byte-identical canonicalized lines whatever the worker
/// count, cache state, or transport (batch CLI vs daemon), which is what
/// the determinism tests and the CI serve-smoke lane compare. Lines
/// without the volatile tail (e.g. failure records) pass through
/// unchanged.
pub fn canonical_json_line(line: &str) -> String {
    match line.find(",\"cache_hit\":") {
        Some(i) => format!("{}}}", &line[..i]),
        None => line.to_string(),
    }
}

/// Aggregate statistics of one sweep.
#[derive(Clone, Debug)]
pub struct SweepStats {
    /// Units scheduled (loops × machines × algorithms).
    pub units: usize,
    /// Aggregate IPC: `Σ ops·trips / Σ cycles` over every unit.
    pub ipc: f64,
    /// Sum of per-unit scheduling time (≈ CPU time across workers).
    pub sched_time: Duration,
    /// Wall-clock time of the whole sweep.
    pub wall_time: Duration,
    /// Fraction of modulo-algorithm units that fell back to list
    /// scheduling.
    pub fallback_rate: f64,
    /// Units that could not be scheduled at all (reported as failure
    /// records, not panics — see [`crate::sweep::UnitFailure`]).
    pub failed: usize,
    /// Memo-cache hits.
    pub cache_hits: usize,
    /// Memo-cache misses.
    pub cache_misses: usize,
    /// Distinct (loop, machine, options) entries resident in the cache at
    /// sweep end.
    pub cache_entries: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Per-phase profile of this sweep, present when it ran under an
    /// active trace session (`sweep --trace` / `profile`).
    pub trace: Option<gpsched_trace::TraceSummary>,
}

impl SweepStats {
    /// Loops scheduled per wall-clock second.
    pub fn throughput(&self) -> f64 {
        self.units as f64 / self.wall_time.as_secs_f64().max(1e-9)
    }

    /// Builds stats from records plus run metadata.
    pub fn from_records(
        records: &[RunRecord],
        wall_time: Duration,
        cache_hits: usize,
        cache_misses: usize,
        workers: usize,
    ) -> Self {
        let mut total_ops: u128 = 0;
        let mut total_cycles: u128 = 0;
        let mut sched_us: u128 = 0;
        let mut modulo_units = 0usize;
        let mut fallbacks = 0usize;
        for r in records {
            total_ops += r.ops as u128 * r.trips as u128;
            total_cycles += r.cycles as u128;
            sched_us += r.sched_time_us as u128;
            if r.algorithm != "List" {
                modulo_units += 1;
                if r.list_fallback {
                    fallbacks += 1;
                }
            }
        }
        SweepStats {
            units: records.len(),
            ipc: if total_cycles == 0 {
                0.0
            } else {
                total_ops as f64 / total_cycles as f64
            },
            sched_time: Duration::from_micros(sched_us.min(u64::MAX as u128) as u64),
            wall_time,
            fallback_rate: if modulo_units == 0 {
                0.0
            } else {
                fallbacks as f64 / modulo_units as f64
            },
            failed: 0,
            cache_hits,
            cache_misses,
            cache_entries: 0,
            workers,
            trace: None,
        }
    }

    /// A one-paragraph human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} units in {:.2}s wall ({:.0} loops/s, {} workers) — aggregate IPC {:.3}, \
             sched CPU {:.2}s, fallback rate {:.2}%, cache {}/{} hits",
            self.units,
            self.wall_time.as_secs_f64(),
            self.throughput(),
            self.workers,
            self.ipc,
            self.sched_time.as_secs_f64(),
            self.fallback_rate * 100.0,
            self.cache_hits,
            self.cache_hits + self.cache_misses
        )
    }

    /// One line on memo-cache effectiveness: hit rate and resident entries,
    /// or an explicit "disabled" marker when the cache never ran.
    pub fn cache_summary(&self) -> String {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            return "cache: disabled (0 lookups)".to_string();
        }
        format!(
            "cache: {} hits / {} misses ({:.1}% hit rate), {} entries",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.cache_hits as f64 / lookups as f64,
            self.cache_entries
        )
    }
}

/// Per-(group, machine, algorithm) aggregate, weighted exactly like the
/// paper's whole-program measurement: `Σ ops·trips / Σ cycles`.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupAggregate {
    /// Group (program) name.
    pub group: String,
    /// Machine short name.
    pub machine: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Aggregate IPC over the group's loops.
    pub ipc: f64,
    /// Total scheduling time over the group's loops, microseconds.
    pub sched_time_us: u64,
    /// Loops aggregated.
    pub loops: usize,
    /// List fallbacks among them.
    pub fallbacks: usize,
}

/// Aggregation key: (group, machine, algorithm).
type GroupKey = (String, String, String);
/// Accumulator: (ops·trips, cycles, sched µs, loops, fallbacks).
type GroupAcc = (u128, u128, u64, usize, usize);

/// Aggregates records per (group, machine, algorithm), in deterministic
/// (group, machine, algorithm) order.
pub fn aggregate_by_group(records: &[RunRecord]) -> Vec<GroupAggregate> {
    let mut acc: BTreeMap<GroupKey, GroupAcc> = BTreeMap::new();
    for r in records {
        let key = (r.group.clone(), r.machine.clone(), r.algorithm.clone());
        let e = acc.entry(key).or_insert((0, 0, 0, 0, 0));
        e.0 += r.ops as u128 * r.trips as u128;
        e.1 += r.cycles as u128;
        e.2 += r.sched_time_us;
        e.3 += 1;
        e.4 += usize::from(r.list_fallback);
    }
    acc.into_iter()
        .map(
            |((group, machine, algorithm), (ops, cycles, us, loops, fallbacks))| GroupAggregate {
                group,
                machine,
                algorithm,
                ipc: if cycles == 0 {
                    0.0
                } else {
                    ops as f64 / cycles as f64
                },
                sched_time_us: us,
                loops,
                fallbacks,
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(unit: usize, group: &str, algo: &str, ops: usize, trips: u64, cycles: u64) -> RunRecord {
        RunRecord {
            unit,
            group: group.to_string(),
            loop_name: format!("l{unit}"),
            machine: "c2r32b1l1".to_string(),
            algorithm: algo.to_string(),
            ii: 2,
            length: 5,
            ops,
            trips,
            cycles,
            ipc: (ops as u64 * trips) as f64 / cycles as f64,
            list_fallback: false,
            repartitions: 0,
            cache_hit: false,
            sched_time_us: 10,
        }
    }

    #[test]
    fn json_escaping() {
        let mut r = rec(0, "g\"x", "GP", 4, 10, 50);
        r.loop_name = "a\\b\nc".to_string();
        let j = r.to_json();
        assert!(j.contains("\"group\":\"g\\\"x\""));
        assert!(j.contains("\"loop\":\"a\\\\b\\nc\""));
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn canonical_json_line_strips_only_the_volatile_tail() {
        let mut a = rec(3, "g", "GP", 4, 10, 50);
        let mut b = rec(3, "g", "GP", 4, 10, 50);
        a.cache_hit = true;
        b.sched_time_us = 123_456;
        assert_ne!(a.to_json(), b.to_json());
        assert_eq!(
            canonical_json_line(&a.to_json()),
            canonical_json_line(&b.to_json())
        );
        let canon = canonical_json_line(&a.to_json());
        assert!(canon.starts_with("{\"unit\":3,"));
        assert!(canon.ends_with("\"repartitions\":0}"));
        assert!(!canon.contains("cache_hit"));
        // A line without the tail is untouched.
        assert_eq!(
            canonical_json_line("{\"error\":\"x\"}"),
            "{\"error\":\"x\"}"
        );
    }

    #[test]
    fn canonical_fields_exclude_volatile() {
        let mut a = rec(3, "g", "GP", 4, 10, 50);
        let mut b = rec(3, "g", "GP", 4, 10, 50);
        a.sched_time_us = 1;
        b.sched_time_us = 99_999;
        a.cache_hit = true;
        b.cache_hit = false;
        assert_eq!(a.canonical_fields(), b.canonical_fields());
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn stats_aggregate_and_fallbacks() {
        let mut rs = vec![
            rec(0, "a", "GP", 10, 100, 500),
            rec(1, "a", "List", 10, 100, 2000),
            rec(2, "b", "URACAM", 5, 10, 100),
        ];
        rs[2].list_fallback = true;
        let stats = SweepStats::from_records(&rs, Duration::from_millis(100), 4, 2, 3);
        assert_eq!(stats.units, 3);
        // 10*100 + 10*100 + 5*10 ops over 500+2000+100 cycles.
        assert!((stats.ipc - 2050.0 / 2600.0).abs() < 1e-12);
        // 2 modulo units, 1 fallback.
        assert!((stats.fallback_rate - 0.5).abs() < 1e-12);
        assert_eq!(stats.cache_hits, 4);
        assert!(stats.throughput() > 0.0);
        assert!(stats.summary().contains("3 units"));
    }

    #[test]
    fn group_aggregation_is_deterministic_and_weighted() {
        let rs = vec![
            rec(0, "b", "GP", 10, 100, 500),
            rec(1, "a", "GP", 10, 100, 1000),
            rec(2, "a", "GP", 30, 100, 1000),
        ];
        let agg = aggregate_by_group(&rs);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].group, "a"); // BTreeMap order
        assert_eq!(agg[0].loops, 2);
        assert!((agg[0].ipc - 4000.0 / 2000.0).abs() < 1e-12);
        assert_eq!(agg[1].group, "b");
        assert!((agg[1].ipc - 1000.0 / 500.0).abs() < 1e-12);
    }
}
