//! `gpsched-serve` — a long-lived scheduling daemon over the sweep engine.
//!
//! Batch sweeps pay full startup cost per invocation and forget every
//! memoized seed on exit. This module keeps the engine warm: a hand-rolled
//! HTTP/1.1 server on [`std::net::TcpListener`] (std only — no external
//! crates) accepts jobs whose bodies carry `.ddg` loops and `.machine`
//! configurations, queues them FIFO with per-job ids, runs them through one
//! process-lifetime [`SweepCache`] (optionally disk-backed, so a restarted
//! daemon starts warm), and streams results back in the exact JSONL wire
//! format of `gpsched-engine sweep --out` — a daemon answer is
//! byte-identical to the batch answer modulo the volatile `cache_hit` /
//! `sched_time_us` tail (see [`canonical_json_line`]).
//!
//! # Endpoints
//!
//! | Method & path          | Behavior                                      |
//! |------------------------|-----------------------------------------------|
//! | `POST /jobs`           | Submit a job body → `202 {"job":N}`, `400` on a parse error (line-numbered), `503` when the queue is full |
//! | `GET /jobs/<id>`       | Status: `queued` / `running` / `done` / `failed` |
//! | `GET /jobs/<id>/results` | Streams the job's JSONL lines as they exist; blocks until the job finishes, then closes |
//! | `GET /healthz`         | Liveness + queue depth + cache size           |
//! | `POST /shutdown`       | Graceful stop: current job finishes, queued jobs fail |
//!
//! # Job body format
//!
//! Line-oriented, mirroring the interchange formats:
//!
//! ```text
//! group corpus.ddg        # optional: group for subsequent loops
//! machines c2r32b1l1,u-r32
//! algos gp,uracam
//! ddg tiny                # embedded .ddg block(s)
//! trips 100
//! op int 1
//! end
//! machine custom          # embedded .machine block(s), optional
//! cluster 2 1 1 16
//! bus 1 1
//! end
//! ```
//!
//! `machines` takes the CLI's short names; embedded `machine` blocks add
//! custom configurations. `algos` defaults to the paper's four. Parse
//! errors carry the *body* line number — embedded blocks are extracted as
//! shadow texts that preserve line positions.
//!
//! # Robustness
//!
//! No request may kill the daemon: oversized heads/bodies are rejected with
//! proper status codes, malformed syntax returns `400`, unschedulable units
//! become failure records (see [`UnitFailure`]), and the executor wraps
//! each job in `catch_unwind` as a last line of defense.
//!
//! [`canonical_json_line`]: crate::record::canonical_json_line
//! [`UnitFailure`]: crate::sweep::UnitFailure

use crate::cache::SweepCache;
use crate::diskcache::DiskCache;
use crate::job::{machine_from_short_name, JobSpec};
use crate::machine_text::parse_machine_corpus;
use crate::sweep::{run_sweep_cached, SweepOptions};
use crate::text::parse_corpus;
use gpsched_machine::MachineConfig;
use gpsched_sched::{Algorithm, AlgorithmSpec};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port `0` picks a free one).
    pub addr: String,
    /// Sweep worker threads per job; `0` means one per CPU.
    pub workers: usize,
    /// Bounded FIFO job queue depth; submissions beyond it get `503`.
    pub queue_capacity: usize,
    /// Persist seeds to this file so a restart starts warm.
    pub cache_path: Option<PathBuf>,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Hold a daemon-lifetime trace session so `GET /metrics` can export
    /// live phase/counter totals. Off by default: tracing is a global
    /// singleton, and a tracing daemon would starve other sessions in the
    /// same process.
    pub trace: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7733".to_string(),
            workers: 0,
            queue_capacity: 64,
            cache_path: None,
            max_body_bytes: 8 * 1024 * 1024,
            trace: false,
        }
    }
}

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Per-connection socket timeout for reads (slow-loris guard).
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Job lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobStatus {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobStatus {
    fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

struct JobInner {
    status: JobStatus,
    /// Result JSONL lines produced so far (streams grow while running).
    lines: Vec<String>,
    error: Option<String>,
}

struct JobEntry {
    inner: Mutex<JobInner>,
    cv: Condvar,
}

impl JobEntry {
    fn new() -> Self {
        JobEntry {
            inner: Mutex::new(JobInner {
                status: JobStatus::Queued,
                lines: Vec::new(),
                error: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn finish(&self, status: JobStatus, error: Option<String>) {
        let mut inner = self.inner.lock().expect("job poisoned");
        inner.status = status;
        inner.error = error;
        self.cv.notify_all();
    }
}

/// State shared by the acceptor, connection threads and the executor.
struct Shared {
    jobs: Mutex<HashMap<u64, Arc<JobEntry>>>,
    queue: Mutex<VecDeque<(u64, JobSpec)>>,
    queue_cv: Condvar,
    queue_capacity: usize,
    cache: SweepCache,
    sweep_workers: usize,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Queues a parsed job; `Err` when the bounded queue is full.
    fn try_enqueue(&self, job: JobSpec) -> Result<u64, ()> {
        let mut queue = self.queue.lock().expect("queue poisoned");
        if queue.len() >= self.queue_capacity {
            gpsched_trace::counter!("serve.reject");
            return Err(());
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.jobs
            .lock()
            .expect("jobs poisoned")
            .insert(id, Arc::new(JobEntry::new()));
        queue.push_back((id, job));
        gpsched_trace::counter!("serve.queue");
        self.queue_cv.notify_one();
        Ok(id)
    }

    fn job(&self, id: u64) -> Option<Arc<JobEntry>> {
        self.jobs.lock().expect("jobs poisoned").get(&id).cloned()
    }

    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue_cv.notify_all();
        // Poke the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon. Dropping it shuts the daemon down and joins its
/// threads.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    executor: Option<std::thread::JoinHandle<()>>,
    /// Keeps tracing enabled for the daemon's lifetime when
    /// [`ServeOptions::trace`] is set; dropping it turns tracing off.
    _trace: Option<gpsched_trace::TraceSession>,
}

impl Server {
    /// The bound address (with the real port when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests a graceful stop: the in-flight job finishes, queued jobs
    /// are failed, the acceptor closes.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until the daemon has stopped (after [`Server::shutdown`] or
    /// a `POST /shutdown`).
    pub fn join(&mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
        self.join();
    }
}

/// Starts the daemon: binds, spawns the acceptor and the job executor,
/// returns immediately. `gpsched-engine serve` starts one and joins it.
///
/// # Errors
///
/// Propagates bind/open failures (address in use, unwritable cache file).
pub fn serve(opts: &ServeOptions) -> std::io::Result<Server> {
    // Start the session before binding: TraceSession::start blocks until
    // any other session in the process ends, and a daemon that is already
    // accepting connections must not stall on that.
    let trace = opts.trace.then(gpsched_trace::TraceSession::start);
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    let cache = match &opts.cache_path {
        Some(path) => {
            let disk = Arc::new(DiskCache::open(path.clone())?);
            eprintln!(
                "gpsched-serve: seed cache {} ({} entries)",
                path.display(),
                disk.len()
            );
            SweepCache::with_disk(disk)
        }
        None => SweepCache::new(),
    };
    let shared = Arc::new(Shared {
        jobs: Mutex::new(HashMap::new()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        queue_capacity: opts.queue_capacity.max(1),
        cache,
        sweep_workers: opts.workers,
        next_id: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        addr,
    });

    let executor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-executor".to_string())
            .spawn(move || executor_loop(&shared))?
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        let max_body = opts.max_body_bytes;
        std::thread::Builder::new()
            .name("serve-acceptor".to_string())
            .spawn(move || acceptor_loop(listener, shared, max_body))?
    };
    Ok(Server {
        shared,
        acceptor: Some(acceptor),
        executor: Some(executor),
        _trace: trace,
    })
}

fn acceptor_loop(listener: TcpListener, shared: Arc<Shared>, max_body: usize) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        // Thread-per-connection: requests are short-lived except result
        // streams, and the job executor — not connection handling — is the
        // bottleneck by design.
        let _ = std::thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || {
                // A handler bug must cost one connection, never the daemon.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(stream, &shared, max_body)
                }));
                if r.is_err() {
                    eprintln!("gpsched-serve: connection handler panicked (connection dropped)");
                }
            });
    }
}

fn executor_loop(shared: &Shared) {
    gpsched_trace::set_thread_label("serve-executor");
    loop {
        let next = {
            let mut queue = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(item) = queue.pop_front() {
                    break Some(item);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared.queue_cv.wait(queue).expect("queue poisoned");
            }
        };
        let Some((id, job)) = next else { break };
        let Some(entry) = shared.job(id) else {
            continue;
        };
        entry.inner.lock().expect("job poisoned").status = JobStatus::Running;
        entry.cv.notify_all();

        let _span = gpsched_trace::span!("serve.job", "job {id}: {} units", job.unit_count());
        let sweep_opts = SweepOptions {
            workers: shared.sweep_workers,
            ..SweepOptions::default()
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sink = LineSink {
                entry: &entry,
                buf: Vec::new(),
            };
            run_sweep_cached(&job, &sweep_opts, Some(&mut sink), &shared.cache)
        }));
        match outcome {
            Ok(_result) => entry.finish(JobStatus::Done, None),
            Err(_) => entry.finish(
                JobStatus::Failed,
                Some("internal error: scheduling panicked".to_string()),
            ),
        }
    }
    // Fail whatever is still queued so result streams unblock.
    let leftover: Vec<(u64, JobSpec)> = {
        let mut queue = shared.queue.lock().expect("queue poisoned");
        queue.drain(..).collect()
    };
    for (id, _) in leftover {
        if let Some(entry) = shared.job(id) {
            entry.finish(JobStatus::Failed, Some("server shutting down".to_string()));
        }
    }
}

/// A [`Write`] sink that turns the executor's JSONL stream into per-job
/// result lines, notifying streaming readers as each completes.
struct LineSink<'a> {
    entry: &'a JobEntry,
    buf: Vec<u8>,
}

impl Write for LineSink<'_> {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=nl).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let mut inner = self.entry.inner.lock().expect("job poisoned");
            inner.lines.push(text);
            self.entry.cv.notify_all();
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// HTTP plumbing
// ---------------------------------------------------------------------------

struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request. `Err` carries a ready-to-send status +
/// message.
fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
) -> Result<Request, (u16, &'static str, String)> {
    let bad = |msg: &str| (400u16, "Bad Request", msg.to_string());
    let mut head = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err((
                431,
                "Request Header Fields Too Large",
                "request head exceeds 16 KiB".into(),
            ));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| bad(&format!("read: {e}")))?;
        if n == 0 {
            return Err(bad("connection closed mid-request"));
        }
        head.extend_from_slice(&chunk[..n]);
    };
    let (head_bytes, rest) = head.split_at(head_end);
    let mut body: Vec<u8> = rest[4..].to_vec(); // skip \r\n\r\n

    let head_text = String::from_utf8_lossy(head_bytes);
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(bad("malformed request line"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("malformed Content-Length"))?;
            }
        }
    }
    if content_length > max_body {
        return Err((
            413,
            "Payload Too Large",
            format!("body exceeds {max_body} bytes"),
        ));
    }
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| bad(&format!("read: {e}")))?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

fn json_error(msg: &str) -> String {
    format!("{{\"error\":\"{}\"}}\n", crate::record::esc(msg))
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, max_body: usize) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let request = match read_request(&mut stream, max_body) {
        Ok(r) => r,
        Err((status, reason, msg)) => {
            write_response(&mut stream, status, reason, &json_error(&msg));
            return;
        }
    };
    let _span = gpsched_trace::span!("serve.request", "{} {}", request.method, request.path);
    gpsched_trace::counter!("serve.request");
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => match parse_job_body(&request.body) {
            Ok(job) => match shared.try_enqueue(job) {
                Ok(id) => {
                    write_response(&mut stream, 202, "Accepted", &format!("{{\"job\":{id}}}\n"))
                }
                Err(()) => write_response(
                    &mut stream,
                    503,
                    "Service Unavailable",
                    &json_error("job queue is full, retry later"),
                ),
            },
            Err(msg) => write_response(&mut stream, 400, "Bad Request", &json_error(&msg)),
        },
        ("GET", "/healthz") => {
            let queued = shared.queue.lock().expect("queue poisoned").len();
            let (hits, misses) = shared.cache.stats();
            write_response(
                &mut stream,
                200,
                "OK",
                &format!(
                    "{{\"ok\":true,\"queued\":{queued},\"cache_entries\":{},\
                     \"cache_hits\":{hits},\"cache_misses\":{misses},\"disk_hits\":{}}}\n",
                    shared.cache.len(),
                    shared.cache.disk_hits()
                ),
            );
        }
        ("GET", "/metrics") => {
            // Live profile of everything the daemon has run so far, as
            // JSON: phase self-times plus counter totals (including the
            // portfolio racing counters). Requires the daemon to own the
            // trace session (`--trace`); otherwise report that plainly.
            let body = match gpsched_trace::summary_if_active() {
                Some(summary) => format!("{}\n", summary.to_json()),
                None => "{\"tracing\":false}\n".to_string(),
            };
            write_response(&mut stream, 200, "OK", &body);
        }
        ("POST", "/shutdown") => {
            write_response(&mut stream, 200, "OK", "{\"ok\":true}\n");
            shared.request_shutdown();
        }
        ("GET", path) => match parse_job_path(path) {
            Some((id, false)) => match shared.job(id) {
                Some(entry) => {
                    let inner = entry.inner.lock().expect("job poisoned");
                    let error = inner
                        .error
                        .as_ref()
                        .map(|e| format!(",\"error\":\"{}\"", crate::record::esc(e)))
                        .unwrap_or_default();
                    let body = format!(
                        "{{\"job\":{id},\"status\":\"{}\",\"lines\":{}{error}}}\n",
                        inner.status.name(),
                        inner.lines.len()
                    );
                    drop(inner);
                    write_response(&mut stream, 200, "OK", &body);
                }
                None => write_response(&mut stream, 404, "Not Found", &json_error("no such job")),
            },
            Some((id, true)) => match shared.job(id) {
                Some(entry) => stream_results(&mut stream, &entry),
                None => write_response(&mut stream, 404, "Not Found", &json_error("no such job")),
            },
            None => write_response(&mut stream, 404, "Not Found", &json_error("no such path")),
        },
        _ => write_response(
            &mut stream,
            405,
            "Method Not Allowed",
            &json_error("unsupported method"),
        ),
    }
}

/// `/jobs/<id>` → `(id, false)`; `/jobs/<id>/results` → `(id, true)`.
fn parse_job_path(path: &str) -> Option<(u64, bool)> {
    let rest = path.strip_prefix("/jobs/")?;
    if let Some(id) = rest.strip_suffix("/results") {
        Some((id.parse().ok()?, true))
    } else {
        Some((rest.parse().ok()?, false))
    }
}

/// Streams a job's JSONL lines as they are produced; returns (closing the
/// connection) once the job is done or failed. The response carries no
/// `Content-Length` — the body ends when the connection closes, which is
/// what lets the client read results while the job is still scheduling.
fn stream_results(stream: &mut TcpStream, entry: &JobEntry) {
    if write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/jsonl\r\nConnection: close\r\n\r\n"
    )
    .is_err()
    {
        return;
    }
    let mut sent = 0usize;
    loop {
        let (to_send, finished, error) = {
            let mut inner = entry.inner.lock().expect("job poisoned");
            while inner.lines.len() == sent
                && !matches!(inner.status, JobStatus::Done | JobStatus::Failed)
            {
                inner = entry.cv.wait(inner).expect("job poisoned");
            }
            (
                inner.lines[sent..].to_vec(),
                matches!(inner.status, JobStatus::Done | JobStatus::Failed),
                inner.error.clone(),
            )
        };
        for line in &to_send {
            if writeln!(stream, "{line}").is_err() {
                return; // client went away; the job keeps running
            }
        }
        sent += to_send.len();
        if finished {
            let all_sent = {
                let inner = entry.inner.lock().expect("job poisoned");
                inner.lines.len() == sent
            };
            if all_sent {
                if let Some(e) = error {
                    let _ = writeln!(stream, "{}", json_error(&e).trim_end());
                }
                let _ = stream.flush();
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Job body parsing
// ---------------------------------------------------------------------------

/// Parses a `POST /jobs` body into a [`JobSpec`].
///
/// Errors carry the offending body line number: embedded `.ddg` /
/// `.machine` blocks are extracted into shadow texts with identical line
/// positions, so the interchange parsers' line-numbered errors map
/// directly onto the submitted body.
pub fn parse_job_body(body: &str) -> Result<JobSpec, String> {
    enum In {
        None,
        Ddg,
        Machine,
    }
    let mut state = In::None;
    let mut ddg_shadow = String::new();
    let mut machine_shadow = String::new();
    let mut groups: Vec<String> = Vec::new(); // group of each embedded ddg
    let mut current_group = "job".to_string();
    let mut machine_names: Vec<(usize, String)> = Vec::new();
    let mut algo_names: Vec<(usize, String)> = Vec::new();

    for (i, raw) in body.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        let first = line.split_whitespace().next().unwrap_or_default();
        match state {
            In::None => match first {
                "" => push_shadow(&mut ddg_shadow, &mut machine_shadow, "", ""),
                _ if line.starts_with('#') => {
                    push_shadow(&mut ddg_shadow, &mut machine_shadow, "", "")
                }
                "ddg" => {
                    state = In::Ddg;
                    groups.push(current_group.clone());
                    push_shadow(&mut ddg_shadow, &mut machine_shadow, raw, "");
                }
                "machine" => {
                    state = In::Machine;
                    push_shadow(&mut ddg_shadow, &mut machine_shadow, "", raw);
                }
                "machines" => {
                    for name in line["machines".len()..].split(',') {
                        let name = name.trim();
                        if !name.is_empty() {
                            machine_names.push((line_no, name.to_string()));
                        }
                    }
                    push_shadow(&mut ddg_shadow, &mut machine_shadow, "", "");
                }
                "algos" => {
                    for name in line["algos".len()..].split(',') {
                        let name = name.trim();
                        if !name.is_empty() {
                            algo_names.push((line_no, name.to_string()));
                        }
                    }
                    push_shadow(&mut ddg_shadow, &mut machine_shadow, "", "");
                }
                "group" => {
                    let g = line["group".len()..].trim();
                    if g.is_empty() {
                        return Err(format!("line {line_no}: `group` requires a name"));
                    }
                    current_group = g.to_string();
                    push_shadow(&mut ddg_shadow, &mut machine_shadow, "", "");
                }
                other => {
                    return Err(format!(
                        "line {line_no}: unrecognized directive `{other}` (expected \
                         machines/algos/group or a ddg/machine block)"
                    ));
                }
            },
            In::Ddg => {
                push_shadow(&mut ddg_shadow, &mut machine_shadow, raw, "");
                if first == "end" {
                    state = In::None;
                }
            }
            In::Machine => {
                push_shadow(&mut ddg_shadow, &mut machine_shadow, "", raw);
                if first == "end" {
                    state = In::None;
                }
            }
        }
    }
    if !matches!(state, In::None) {
        return Err("unterminated ddg/machine block (missing `end`)".to_string());
    }

    let loops = parse_corpus(&ddg_shadow).map_err(|e| e.to_string())?;
    let embedded_machines = parse_machine_corpus(&machine_shadow).map_err(|e| e.to_string())?;

    let mut machines: Vec<MachineConfig> = Vec::new();
    for (line_no, name) in &machine_names {
        machines.push(
            machine_from_short_name(name)
                .ok_or_else(|| format!("line {line_no}: unknown machine short name `{name}`"))?,
        );
    }
    machines.extend(embedded_machines.into_iter().map(|(_, m)| m));

    let mut algorithms: Vec<AlgorithmSpec> = Vec::new();
    for (line_no, name) in &algo_names {
        algorithms.push(AlgorithmSpec::parse(name).map_err(|e| format!("line {line_no}: {e}"))?);
    }
    if algorithms.is_empty() {
        algorithms = Algorithm::ALL.iter().map(|&a| a.into()).collect();
    }

    if loops.is_empty() {
        return Err("job has no loops (add at least one ddg block)".to_string());
    }
    if machines.is_empty() {
        return Err(
            "job has no machines (add a `machines` directive or a machine block)".to_string(),
        );
    }

    let mut job = JobSpec::new();
    for (ddg, group) in loops.into_iter().zip(groups) {
        job = job.loop_in(group, ddg);
    }
    job = job.machines(machines);
    job.algorithms = algorithms;
    Ok(job)
}

/// Appends one line to each shadow text, preserving line positions.
fn push_shadow(ddg: &mut String, machine: &mut String, ddg_line: &str, machine_line: &str) {
    ddg.push_str(ddg_line);
    ddg.push('\n');
    machine.push_str(machine_line);
    machine.push('\n');
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A minimal blocking client for the daemon — what `gpsched-engine client`
/// and the tests use. All functions take `addr` as `host:port`.
pub mod client {
    use super::*;

    /// One round-trip: returns `(status_code, body)`.
    pub fn request(
        addr: &str,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        stream
            .read_to_string(&mut response)
            .map_err(|e| format!("receive: {e}"))?;
        split_response(&response)
    }

    fn split_response(response: &str) -> Result<(u16, String), String> {
        let (head, body) = response
            .split_once("\r\n\r\n")
            .ok_or_else(|| "malformed response (no header/body separator)".to_string())?;
        let status_line = head.lines().next().unwrap_or_default();
        let code = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| format!("malformed status line `{status_line}`"))?;
        Ok((code, body.to_string()))
    }

    /// Submits a job body; returns the job id.
    pub fn submit(addr: &str, job_body: &str) -> Result<u64, String> {
        let (code, body) = request(addr, "POST", "/jobs", job_body)?;
        if code != 202 {
            return Err(format!("submit rejected ({code}): {}", body.trim()));
        }
        body.trim()
            .strip_prefix("{\"job\":")
            .and_then(|r| r.strip_suffix('}'))
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("malformed submit response `{}`", body.trim()))
    }

    /// One status poll; returns the raw status JSON object.
    pub fn status(addr: &str, id: u64) -> Result<String, String> {
        let (code, body) = request(addr, "GET", &format!("/jobs/{id}"), "")?;
        if code != 200 {
            return Err(format!("status failed ({code}): {}", body.trim()));
        }
        Ok(body.trim().to_string())
    }

    /// Streams a job's results, blocking until the job completes; returns
    /// all its JSONL lines.
    pub fn results(addr: &str, id: u64) -> Result<Vec<String>, String> {
        let (code, body) = request(addr, "GET", &format!("/jobs/{id}/results"), "")?;
        if code != 200 {
            return Err(format!("results failed ({code}): {}", body.trim()));
        }
        Ok(body.lines().map(str::to_string).collect())
    }

    /// Liveness probe; returns the raw health JSON object.
    pub fn health(addr: &str) -> Result<String, String> {
        let (code, body) = request(addr, "GET", "/healthz", "")?;
        if code != 200 {
            return Err(format!("health failed ({code})"));
        }
        Ok(body.trim().to_string())
    }

    /// Asks the daemon to stop gracefully.
    pub fn shutdown(addr: &str) -> Result<(), String> {
        let (code, _) = request(addr, "POST", "/shutdown", "")?;
        if code != 200 {
            return Err(format!("shutdown failed ({code})"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_body_round_trips_to_a_job_spec() {
        let body = "\
# a job
group demo
machines u-r32,c2r32b1l1
algos gp,list
ddg tiny
trips 100
op int 1 a
op int 1 b
dep 0 1 flow 1 0
end
machine custom
cluster 2 1 1 16
cluster 2 1 1 16
bus 1 1
end
";
        let job = parse_job_body(body).expect("parse");
        assert_eq!(job.loops.len(), 1);
        assert_eq!(job.loops[0].group, "demo");
        assert_eq!(job.loops[0].ddg.name(), "tiny");
        assert_eq!(job.machines.len(), 3, "two named + one embedded");
        assert_eq!(job.algorithms.len(), 2);
        assert_eq!(job.unit_count(), 6);
    }

    #[test]
    fn job_body_errors_carry_body_line_numbers() {
        // Bad op class inside the ddg block: line 4 of the body.
        let body = "machines u-r32\nddg t\ntrips 10\nop bogus 1\nend\n";
        let err = parse_job_body(body).unwrap_err();
        assert!(err.contains("line 4"), "{err}");
        // Bad machine short name, with its directive line.
        let err =
            parse_job_body("machines not-a-machine\nddg t\ntrips 1\nop int 1\nend\n").unwrap_err();
        assert!(
            err.contains("line 1") && err.contains("not-a-machine"),
            "{err}"
        );
        // Bad cluster stanza inside an embedded machine block: line 3.
        let body =
            "machines u-r32\nmachine m\ncluster 0 0 0 16\nend\nddg t\ntrips 1\nop int 1\nend\n";
        let err = parse_job_body(body).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        // Unknown directive.
        let err = parse_job_body("frobnicate now\n").unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
        // Missing pieces.
        assert!(parse_job_body("machines u-r32\n")
            .unwrap_err()
            .contains("no loops"));
        assert!(parse_job_body("ddg t\ntrips 1\nop int 1\nend\n")
            .unwrap_err()
            .contains("no machines"));
        assert!(parse_job_body("ddg t\ntrips 1\n")
            .unwrap_err()
            .contains("unterminated"));
    }

    #[test]
    fn algos_default_to_the_paper_four() {
        let job = parse_job_body("machines u-r32\nddg t\ntrips 1\nop int 1\nend\n").expect("parse");
        assert_eq!(job.algorithms.len(), Algorithm::ALL.len());
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let shared = Shared {
            jobs: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_capacity: 2,
            cache: SweepCache::new(),
            sweep_workers: 1,
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            addr: "127.0.0.1:0".parse().expect("addr"),
        };
        assert!(shared.try_enqueue(JobSpec::new()).is_ok());
        assert!(shared.try_enqueue(JobSpec::new()).is_ok());
        assert!(
            shared.try_enqueue(JobSpec::new()).is_err(),
            "third must 503"
        );
    }

    #[test]
    fn job_paths_parse() {
        assert_eq!(parse_job_path("/jobs/7"), Some((7, false)));
        assert_eq!(parse_job_path("/jobs/7/results"), Some((7, true)));
        assert_eq!(parse_job_path("/jobs/x"), None);
        assert_eq!(parse_job_path("/nope"), None);
    }
}
