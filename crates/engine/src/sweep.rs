//! The batch sweep executor: a worker pool over the units of a
//! [`JobSpec`].
//!
//! Workers are plain `std::thread`s claiming units off a shared atomic
//! counter; finished records stream back over an `mpsc` channel to the
//! caller's thread, which forwards each JSONL line to the optional sink
//! in completion order and finally sorts the collected records by unit
//! index — so the returned vector is deterministic however many workers
//! ran, while the sink observes results as soon as they exist.

use crate::cache::{compute_seed, ddg_content_hash, SweepCache};
use crate::job::JobSpec;
use crate::record::{esc, RunRecord, SweepStats};
use gpsched_sched::{schedule_loop_spec_seeded, ScheduledWith};
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// A unit that could not be scheduled at all.
///
/// A sweep over external `.ddg`/`.machine` input can legitimately pair a
/// loop with a machine that cannot run it (an FP loop on an integer-only
/// cluster machine). That is a property of the *input*, not a bug in the
/// engine, so it must not panic a worker (and with it the whole sweep, or
/// the daemon): the unit becomes a failure record, the other units finish
/// normally.
#[derive(Clone, Debug)]
pub struct UnitFailure {
    /// Deterministic unit index within the job.
    pub unit: usize,
    /// Aggregation group (program name).
    pub group: String,
    /// Loop name.
    pub loop_name: String,
    /// Machine short name.
    pub machine: String,
    /// Algorithm display name.
    pub algorithm: String,
    /// Why the unit could not be scheduled.
    pub error: String,
}

impl UnitFailure {
    /// The JSONL line of this failure (no trailing newline). Distinguished
    /// from success records by the `"error"` key.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"unit\":{},\"group\":\"{}\",\"loop\":\"{}\",\"machine\":\"{}\",\
             \"algorithm\":\"{}\",\"error\":\"{}\"}}",
            self.unit,
            esc(&self.group),
            esc(&self.loop_name),
            esc(&self.machine),
            esc(&self.algorithm),
            esc(&self.error)
        )
    }
}

/// Executor options.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads; `0` means one per available CPU.
    pub workers: usize,
    /// Serve MII/partition preprocessing from the content-hash memo cache.
    /// Disable for timing studies (Table 2) where every unit must pay its
    /// full algorithmic cost.
    pub use_cache: bool,
    /// Print a periodic progress line (units done/total, loops/s, ETA) to
    /// stderr. Never mixed into the JSONL sink.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            workers: 0,
            use_cache: true,
            progress: false,
        }
    }
}

impl SweepOptions {
    /// A single-threaded run (the determinism baseline).
    pub fn serial() -> Self {
        SweepOptions {
            workers: 1,
            ..SweepOptions::default()
        }
    }

    /// Resolves `workers == 0` to the host's parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Result of [`run_sweep`]: records in unit order plus aggregate stats.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// One record per successfully scheduled unit, sorted by unit index
    /// (deterministic).
    pub records: Vec<RunRecord>,
    /// Units that could not be scheduled, sorted by unit index. Empty for
    /// well-formed jobs.
    pub failures: Vec<UnitFailure>,
    /// Aggregate statistics.
    pub stats: SweepStats,
}

/// Runs every unit of `job` against a fresh cache, streaming JSONL lines
/// to `sink` (if any) as units complete.
///
/// A unit that cannot be scheduled (a machine with zero units of a kind
/// the loop needs) becomes a [`UnitFailure`] record — it does not panic
/// and does not abort the other units.
pub fn run_sweep(job: &JobSpec, opts: &SweepOptions, sink: Option<&mut dyn Write>) -> SweepResult {
    run_sweep_cached(job, opts, sink, &SweepCache::new())
}

/// [`run_sweep`] against a caller-owned cache, so consecutive jobs share
/// memoized seeds. This is the daemon's entry point: `gpsched-serve` keeps
/// one (optionally disk-backed) [`SweepCache`] for its whole lifetime and
/// runs every accepted job through it. Reported cache stats are this
/// call's delta, not the cache's lifetime totals.
pub fn run_sweep_cached(
    job: &JobSpec,
    opts: &SweepOptions,
    mut sink: Option<&mut dyn Write>,
    cache: &SweepCache,
) -> SweepResult {
    let t0 = Instant::now();
    let nunits = job.unit_count();
    let workers = opts.effective_workers().max(1).min(nunits.max(1));
    let (hits0, misses0) = cache.stats();
    // Hash every loop once, up front.
    let hashes: Vec<u64> = job.loops.iter().map(|l| ddg_content_hash(&l.ddg)).collect();

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Result<RunRecord, Box<UnitFailure>>>();

    let mut records: Vec<RunRecord> = Vec::with_capacity(nunits);
    let mut failures: Vec<UnitFailure> = Vec::new();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let hashes = &hashes;
            scope.spawn(move || {
                gpsched_trace::set_thread_label(format!("worker-{w}"));
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= nunits {
                        break;
                    }
                    let outcome = run_unit(job, k, hashes, cache, opts.use_cache, workers);
                    if tx.send(outcome).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Drain in completion order, streaming to the sink; progress goes
        // to stderr only, so the JSONL stream stays clean.
        let mut last_progress = Instant::now();
        for outcome in rx {
            match outcome {
                Ok(record) => {
                    if let Some(w) = sink.as_deref_mut() {
                        let _ = writeln!(w, "{}", record.to_json());
                    }
                    records.push(record);
                }
                Err(failure) => {
                    if let Some(w) = sink.as_deref_mut() {
                        let _ = writeln!(w, "{}", failure.to_json());
                    }
                    failures.push(*failure);
                }
            }
            let done = records.len() + failures.len();
            if opts.progress && last_progress.elapsed().as_millis() >= 250 {
                last_progress = Instant::now();
                eprintln!("{}", progress_line(done, nunits, t0));
            }
        }
    });
    if opts.progress && nunits > 0 {
        eprintln!(
            "{}",
            progress_line(records.len() + failures.len(), nunits, t0)
        );
    }

    records.sort_by_key(|r| r.unit);
    failures.sort_by_key(|f| f.unit);
    let (hits, misses) = cache.stats();
    let mut stats = SweepStats::from_records(
        &records,
        t0.elapsed(),
        hits - hits0,
        misses - misses0,
        workers,
    );
    stats.failed = failures.len();
    stats.cache_entries = cache.len();
    // When this sweep runs inside a trace session, embed the per-phase
    // profile collected so far (non-destructively — the session owner
    // still finishes and exports the full trace).
    stats.trace = gpsched_trace::summary_if_active();
    SweepResult {
        records,
        failures,
        stats,
    }
}

/// Formats one stderr progress line: units done/total, current rate, ETA.
fn progress_line(done: usize, total: usize, t0: Instant) -> String {
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let rate = done as f64 / elapsed;
    let eta = if done > 0 {
        (total - done) as f64 / rate
    } else {
        f64::INFINITY
    };
    format!(
        "sweep: {done}/{total} units ({:.0}%), {rate:.0} loops/s, ETA {:.1}s",
        100.0 * done as f64 / total.max(1) as f64,
        eta
    )
}

/// Ops at or above this count make a unit "large" enough for intra-unit
/// II-attempt racing: the tail of a sweep is dominated by a few big loops
/// whose II ladders are climbed one failed attempt at a time, so idle
/// pool parallelism is spent inside those units.
const RACE_OP_THRESHOLD: usize = 64;

/// Cap on the raced ladder width. The winner is almost always within a
/// few rungs of the first failure; wider batches only add speculative
/// attempts beyond it.
const RACE_MAX_WIDTH: usize = 4;

/// Floor for queue-drain widening: below this many ops a single II
/// attempt costs about as much as spawning the threads to race it, so a
/// drained queue widens only units at least this large.
const RACE_QUEUE_OP_FLOOR: usize = RACE_OP_THRESHOLD / 4;

/// The II-attempt race width for a unit of `ops` operations in a pool of
/// `workers` workers with `pending` units (this one included) still
/// unclaimed. 1 (sequential) unless the pool is parallel and either the
/// unit is large or the queue has drained below the worker count — at the
/// tail of a sweep most workers sit parked, so their parallelism is spent
/// *inside* the remaining units (down to [`RACE_QUEUE_OP_FLOOR`], below
/// which an attempt is cheaper than the spawn). Results are identical
/// either way — racing reduces lowest-II-wins, which is exactly the
/// sequential answer — so the width can depend on anything, including
/// racy queue-depth observations, without moving a byte of output.
fn race_width_for(workers: usize, ops: usize, pending: usize) -> usize {
    let by_size = if workers > 1 && ops >= RACE_OP_THRESHOLD {
        workers.min(RACE_MAX_WIDTH)
    } else {
        1
    };
    let by_queue = if workers > 1 && ops >= RACE_QUEUE_OP_FLOOR && pending > 0 && pending < workers
    {
        (workers / pending).min(RACE_MAX_WIDTH)
    } else {
        1
    };
    by_size.max(by_queue)
}

/// Schedules unit `k` of `job`; unschedulable units come back as
/// [`UnitFailure`]s rather than panics (boxed: the failure record is an
/// order of magnitude larger than the worker channel's happy path needs).
fn run_unit(
    job: &JobSpec,
    k: usize,
    hashes: &[u64],
    cache: &SweepCache,
    use_cache: bool,
    workers: usize,
) -> Result<RunRecord, Box<UnitFailure>> {
    let (li, mi, ai) = job.unit(k);
    let spec = &job.loops[li];
    let machine = &job.machines[mi];
    let algorithm = job.algorithms[ai];
    let fail = |error: String| {
        Box::new(UnitFailure {
            unit: k,
            group: spec.group.clone(),
            loop_name: spec.ddg.name().to_string(),
            machine: machine.short_name(),
            algorithm: algorithm.name(),
            error,
        })
    };
    // Feasibility gate BEFORE the seed: computing the MII of a loop on a
    // machine lacking a required unit kind is undefined (and the seed would
    // poison the shared cache). Mirrors the scheduler's own pre-check.
    for kind in gpsched_machine::ResourceKind::ALL {
        if spec.ddg.ops_using(kind) > 0 && machine.total_units(kind) == 0 {
            return Err(fail(format!("machine has no {kind} units")));
        }
    }
    let mut cfg = job.cfg;
    let pending = job.unit_count().saturating_sub(k);
    cfg.race_width = cfg
        .race_width
        .max(race_width_for(workers, spec.ddg.op_count(), pending));

    let _span = gpsched_trace::span!(
        "engine.unit",
        "{}@{}/{}",
        spec.ddg.name(),
        machine.short_name(),
        algorithm.name()
    );
    let t0 = Instant::now();
    let (seed, cache_hit) = {
        let _seed_span = gpsched_trace::span!("engine.seed");
        if use_cache {
            cache.seed(hashes[li], &spec.ddg, machine, &job.popts)
        } else {
            (compute_seed(&spec.ddg, machine, &job.popts), false)
        }
    };
    // A hit can still have *blocked* on a concurrent miss computing the
    // same entry; that wait is the miss's cost, not this unit's.
    let t0 = if cache_hit { Instant::now() } else { t0 };
    // Portfolio units consult the winner memo: a repeat of the same race
    // schedules only the memoized winning spec, which reproduces the
    // raced result exactly (the race is pure and a completed winner is
    // cutoff-independent). The record still reports the portfolio's name.
    let memo_key = (use_cache && algorithm.is_portfolio()).then(|| {
        (
            hashes[li],
            crate::cache::machine_key(machine),
            crate::cache::popts_key(&job.popts),
        )
    });
    let memo_winner = memo_key.and_then(|key| cache.portfolio_winner(key, &job.cfg, algorithm));
    if memo_winner.is_some() {
        gpsched_trace::counter!("portfolio.winner_memo_hits");
    }
    let effective = memo_winner.unwrap_or(algorithm);
    let r = schedule_loop_spec_seeded(&spec.ddg, machine, effective, &job.popts, &cfg, &seed)
        .map_err(|e| fail(e.to_string()))?;
    let sched_time_us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
    if let (Some(key), Some(winner)) = (memo_key, r.selected) {
        cache.record_portfolio_winner(key, &job.cfg, algorithm, winner);
    }

    let repartitions = match r.method {
        ScheduledWith::Modulo { repartitions } => repartitions,
        _ => 0,
    };
    Ok(RunRecord {
        unit: k,
        group: spec.group.clone(),
        loop_name: r.name.clone(),
        machine: machine.short_name(),
        algorithm: algorithm.name(),
        ii: r.schedule.ii(),
        length: r.schedule.length(),
        ops: r.ops,
        trips: r.trips,
        cycles: r.cycles(),
        ipc: r.ipc(),
        list_fallback: matches!(r.method, ScheduledWith::ListFallback),
        repartitions,
        cache_hit,
        sched_time_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_machine::MachineConfig;
    use gpsched_sched::Algorithm;
    use gpsched_workloads::kernels;

    fn small_job() -> JobSpec {
        JobSpec::new()
            .loop_in("k", kernels::daxpy(100))
            .loop_in("k", kernels::dot_product(100))
            .loop_in("k", kernels::fir(100, 4))
            .machines([
                MachineConfig::unified(32),
                MachineConfig::two_cluster(32, 1, 1),
            ])
            .algorithms(Algorithm::ALL)
    }

    #[test]
    fn race_width_only_for_large_units_in_parallel_pools() {
        // Deep queue: width is governed by op count alone.
        assert_eq!(race_width_for(1, 1000, 100), 1);
        assert_eq!(race_width_for(8, RACE_OP_THRESHOLD - 1, 100), 1);
        assert_eq!(race_width_for(2, RACE_OP_THRESHOLD, 100), 2);
        assert_eq!(race_width_for(16, RACE_OP_THRESHOLD, 100), RACE_MAX_WIDTH);
    }

    #[test]
    fn race_width_widens_when_the_queue_drains() {
        // Fewer pending units than workers: idle workers race inside the
        // remaining mid-size units well below RACE_OP_THRESHOLD.
        assert_eq!(race_width_for(8, RACE_QUEUE_OP_FLOOR, 2), RACE_MAX_WIDTH);
        assert_eq!(race_width_for(8, RACE_QUEUE_OP_FLOOR, 4), 2);
        assert_eq!(
            race_width_for(8, RACE_QUEUE_OP_FLOOR, 8),
            1,
            "full queue: no widening"
        );
        assert_eq!(
            race_width_for(1, RACE_QUEUE_OP_FLOOR, 1),
            1,
            "serial pool never races"
        );
        // Tiny units never race: a thread spawn costs about as much as
        // the attempt it would speculate on.
        assert_eq!(race_width_for(8, RACE_QUEUE_OP_FLOOR - 1, 1), 1);
        // Large unit at the tail: both rules agree on the cap.
        assert_eq!(race_width_for(16, RACE_OP_THRESHOLD, 1), RACE_MAX_WIDTH);
    }

    #[test]
    fn forced_racing_matches_serial_results() {
        // An explicit race width in the job config races every unit's II
        // ladder even on a one-worker pool; results must not move.
        let mut job = small_job();
        job.cfg.race_width = 4;
        let forced = run_sweep(&job, &SweepOptions::serial(), None);
        let plain = run_sweep(&small_job(), &SweepOptions::serial(), None);
        let canon = |r: &SweepResult| -> Vec<String> {
            r.records.iter().map(RunRecord::canonical_fields).collect()
        };
        assert_eq!(canon(&forced), canon(&plain));
    }

    #[test]
    fn records_cover_every_unit_in_order() {
        let job = small_job();
        let r = run_sweep(&job, &SweepOptions::serial(), None);
        assert_eq!(r.records.len(), job.unit_count());
        for (k, rec) in r.records.iter().enumerate() {
            assert_eq!(rec.unit, k);
            let (li, mi, ai) = job.unit(k);
            assert_eq!(rec.loop_name, job.loops[li].ddg.name());
            assert_eq!(rec.machine, job.machines[mi].short_name());
            assert_eq!(rec.algorithm, job.algorithms[ai].name());
            assert!(rec.ipc > 0.0);
        }
        assert_eq!(r.stats.units, job.unit_count());
    }

    #[test]
    fn parallel_equals_serial_canonically() {
        let job = small_job();
        let serial = run_sweep(&job, &SweepOptions::serial(), None);
        let parallel = run_sweep(
            &job,
            &SweepOptions {
                workers: 4,
                use_cache: true,
                progress: false,
            },
            None,
        );
        let canon = |r: &SweepResult| -> Vec<String> {
            r.records.iter().map(RunRecord::canonical_fields).collect()
        };
        assert_eq!(canon(&serial), canon(&parallel));
    }

    #[test]
    fn cache_dedupes_shared_preprocessing() {
        let job = small_job(); // 3 loops × 2 machines, 4 algos each
        let r = run_sweep(&job, &SweepOptions::serial(), None);
        // One miss per (loop, machine); the other algorithm units hit.
        assert_eq!(r.stats.cache_misses, 6);
        assert_eq!(r.stats.cache_hits, job.unit_count() - 6);
    }

    #[test]
    fn no_cache_mode_counts_nothing() {
        let job = small_job();
        let r = run_sweep(
            &job,
            &SweepOptions {
                workers: 2,
                use_cache: false,
                progress: false,
            },
            None,
        );
        assert_eq!(r.stats.cache_hits + r.stats.cache_misses, 0);
        assert_eq!(r.records.len(), job.unit_count());
    }

    #[test]
    fn sink_receives_one_json_line_per_unit() {
        let job = small_job();
        let mut buf: Vec<u8> = Vec::new();
        let r = run_sweep(&job, &SweepOptions::serial(), Some(&mut buf));
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), r.records.len());
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
            assert!(l.contains("\"ipc\":"));
        }
    }

    #[test]
    fn empty_job_is_fine() {
        let job = JobSpec::new();
        let r = run_sweep(&job, &SweepOptions::default(), None);
        assert!(r.records.is_empty());
        assert!(r.failures.is_empty());
        assert_eq!(r.stats.units, 0);
    }

    /// An integer-only machine: an FP loop on it is unschedulable.
    fn int_only_machine() -> MachineConfig {
        use gpsched_machine::{ClusterConfig, Interconnect, LatencyModel};
        MachineConfig::custom(
            vec![ClusterConfig {
                int_units: 2,
                fp_units: 0,
                mem_units: 1,
                registers: 32,
            }],
            Interconnect::None,
            LatencyModel::default(),
        )
    }

    #[test]
    fn unschedulable_units_become_failures_not_panics() {
        // daxpy uses FP units; pairing it with an int-only machine used to
        // panic the worker (and the whole sweep). The unified machine in
        // the same job must still produce its records.
        let job = JobSpec::new()
            .loop_in("k", kernels::daxpy(100))
            .machines([int_only_machine(), MachineConfig::unified(32)])
            .algorithms(Algorithm::ALL);
        let mut buf: Vec<u8> = Vec::new();
        let r = run_sweep(
            &job,
            &SweepOptions {
                workers: 2,
                ..SweepOptions::default()
            },
            Some(&mut buf),
        );
        let nalgos = Algorithm::ALL.len();
        assert_eq!(r.failures.len(), nalgos, "every algo unit fails");
        assert_eq!(r.records.len(), nalgos, "unified units still succeed");
        assert_eq!(r.stats.failed, nalgos);
        for f in &r.failures {
            assert!(f.error.contains("no fp units"), "{}", f.error);
            assert_eq!(f.loop_name, "daxpy");
        }
        // The sink saw one line per unit, failures included, each valid.
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), job.unit_count());
        assert_eq!(
            text.lines().filter(|l| l.contains("\"error\":")).count(),
            nalgos
        );
    }

    #[test]
    fn failures_do_not_poison_the_cache() {
        // The infeasible pairing must not insert a seed that a later
        // feasible sweep could pick up; the shared-cache path is what the
        // daemon runs.
        let cache = SweepCache::new();
        let bad = JobSpec::new()
            .loop_in("k", kernels::daxpy(64))
            .machine(int_only_machine())
            .algorithms([Algorithm::Gp]);
        let r = run_sweep_cached(&bad, &SweepOptions::serial(), None, &cache);
        assert_eq!(r.failures.len(), 1);
        assert_eq!(cache.stats(), (0, 0), "gate fires before the cache");
    }

    #[test]
    fn shared_cache_reports_per_call_deltas() {
        let cache = SweepCache::new();
        let job = small_job();
        let first = run_sweep_cached(&job, &SweepOptions::serial(), None, &cache);
        assert_eq!(first.stats.cache_misses, 6);
        let second = run_sweep_cached(&job, &SweepOptions::serial(), None, &cache);
        // Second run over the same job: everything hits the shared cache,
        // and the reported stats are this call's delta.
        assert_eq!(second.stats.cache_misses, 0);
        assert_eq!(second.stats.cache_hits, job.unit_count());
        assert!(second.records.iter().all(|r| r.cache_hit));
        let canon = |r: &SweepResult| -> Vec<String> {
            r.records.iter().map(RunRecord::canonical_fields).collect()
        };
        assert_eq!(canon(&first), canon(&second));
    }
}
