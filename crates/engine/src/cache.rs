//! Content-addressed memoization of per-(loop, machine) preprocessing.
//!
//! Scheduling one unit starts with two pure computations that are shared
//! by every algorithm and by every re-occurrence of the same loop body:
//! the MII and the initial partition. The cache keys them by a content
//! hash of the DDG (FNV-1a over structure — the loop *name* is excluded,
//! so corpora with duplicated bodies hit the cache), a structural hash of
//! the machine, and a hash of the [`PartitionOptions`] in force (two sweeps
//! with different refinement knobs compute different partitions — they must
//! not share entries). Seeds are served to all workers through per-key
//! [`OnceLock`]s so a miss never serializes unrelated work.
//!
//! A cache may additionally be backed by a [`DiskCache`]: on a memory miss
//! the persistent store is consulted before computing, and freshly computed
//! seeds are appended to it. This is what lets `gpsched-serve` restart warm.
//!
//! [`DiskCache`]: crate::diskcache::DiskCache

use crate::diskcache::DiskCache;
use gpsched_ddg::Ddg;
use gpsched_machine::MachineConfig;
use gpsched_partition::{partition_ddg, MatchStrategy, PartitionOptions, PartitionResult};
use gpsched_sched::drivers::DriverConfig;
use gpsched_sched::{AlgorithmSpec, SchedSeed};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The full memo-cache key:
/// ([`ddg_content_hash`], [`machine_key`], [`popts_key`]).
pub type CacheKey = (u64, u64, u64);

/// FNV-1a content hash of a DDG's structure.
///
/// Covers trip count, every op's `(class, latency)` and every dep's
/// `(src, dst, kind, latency, distance)` in graph order; excludes the loop
/// and op names so renamed copies of the same body share cache entries.
pub fn ddg_content_hash(ddg: &Ddg) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(ddg.trip_count());
    mix(ddg.op_count() as u64);
    for id in ddg.op_ids() {
        let op = ddg.op(id);
        mix(op.class as u64);
        mix(op.latency as u64);
    }
    mix(ddg.dep_count() as u64);
    for e in ddg.dep_ids() {
        let (s, d) = ddg.dep_endpoints(e);
        let dep = ddg.dep(e);
        mix(s.index() as u64);
        mix(d.index() as u64);
        mix(match dep.kind {
            gpsched_ddg::DepKind::Flow => 0,
            gpsched_ddg::DepKind::Mem => 1,
        });
        mix(dep.latency as u64);
        mix(dep.distance as u64);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice (the disk cache uses this as its line checksum).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a hash of every [`PartitionOptions`] field that changes the
/// computed partition. Two sweeps over the same loop and machine but with
/// different matching or refinement knobs produce different seeds, so the
/// options must be part of the cache key — keying on (loop, machine) alone
/// silently serves one configuration's partition to the other.
pub fn popts_key(popts: &PartitionOptions) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    match popts.strategy {
        MatchStrategy::Exact => mix(0),
        MatchStrategy::Greedy => mix(1),
        MatchStrategy::Auto(limit) => {
            mix(2);
            mix(limit as u64);
        }
    }
    let r = &popts.refine;
    mix(r.balance as u64);
    mix(r.cut as u64);
    mix(r.max_moves as u64);
    mix(r.swap_candidates as u64);
    mix(r.eval_candidates as u64);
    h
}

/// FNV-1a hash of every [`DriverConfig`] knob that can change a schedule.
/// The portfolio winner memo keys on it: a race run under a different
/// merit threshold or II cap may crown a different winner, so the two
/// configurations must not share memo entries. `race_width` is excluded —
/// it never changes results, only how fast they arrive.
pub fn cfg_key(cfg: &DriverConfig) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(cfg.merit_threshold.to_bits());
    mix(cfg.ii_cap.map_or(u64::MAX, |c| c as u64));
    mix(cfg.race_cutoff.map_or(u64::MAX, |c| c as u64));
    mix(cfg.attempt_budget.map_or(u64::MAX, |b| b as u64));
    h
}

/// FNV-1a hash of everything that distinguishes one machine from another
/// for scheduling purposes: per-cluster unit mix and registers, the
/// interconnect topology and the latency model. `short_name` is *not*
/// sufficient as a cache key — custom machines with different unit mixes
/// (or different p2p latency matrices) can share a short name.
pub fn machine_key(machine: &MachineConfig) -> u64 {
    use gpsched_machine::Interconnect;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(machine.cluster_count() as u64);
    for c in machine.clusters() {
        mix(c.int_units as u64);
        mix(c.fp_units as u64);
        mix(c.mem_units as u64);
        mix(c.registers as u64);
    }
    match machine.interconnect() {
        Interconnect::None => mix(0),
        Interconnect::SharedBus {
            count,
            latency,
            pipelined,
        } => {
            mix(1);
            mix(*count as u64);
            mix(*latency as u64);
            mix(*pipelined as u64);
        }
        Interconnect::PointToPoint { channels, latency } => {
            mix(2);
            mix(*channels as u64);
            for &l in latency {
                mix(l as u64);
            }
        }
        Interconnect::Ring {
            hop_latency,
            links_per_hop,
        } => {
            mix(3);
            mix(*hop_latency as u64);
            mix(*links_per_hop as u64);
        }
    }
    let l = &machine.latencies;
    for lat in [l.int_alu, l.fp_add, l.fp_mul, l.fp_div, l.load, l.store] {
        mix(lat as u64);
    }
    h
}

/// A lazily computed cache slot, shared across workers.
type SeedCell = Arc<OnceLock<SchedSeed>>;

/// Shared memo cache for one sweep (or one daemon lifetime), keyed by
/// ([`ddg_content_hash`], [`machine_key`], [`popts_key`]).
pub struct SweepCache {
    entries: Mutex<HashMap<CacheKey, SeedCell>>,
    /// Memoized portfolio race winners, keyed by the seed key plus the
    /// driver-config hash and the portfolio's `(k, budget)` knobs.
    winners: Mutex<HashMap<(CacheKey, u64, usize, usize), AlgorithmSpec>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_hits: AtomicUsize,
    disk: Option<Arc<DiskCache>>,
}

impl SweepCache {
    /// An empty in-memory cache.
    pub fn new() -> Self {
        SweepCache {
            entries: Mutex::new(HashMap::new()),
            winners: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            disk_hits: AtomicUsize::new(0),
            disk: None,
        }
    }

    /// An in-memory cache backed by a persistent store: memory misses
    /// consult `disk` before computing, and freshly computed seeds are
    /// appended to it (append failures degrade to a warning — the sweep
    /// still completes with correct results).
    pub fn with_disk(disk: Arc<DiskCache>) -> Self {
        let mut cache = Self::new();
        cache.disk = Some(disk);
        cache
    }

    /// The seed (MII + initial partition) for scheduling `ddg` on
    /// `machine` under `popts`, computing it on first request. `hash` must
    /// be [`ddg_content_hash`]`(ddg)` (precomputed once per loop by the
    /// executor). The boolean is `true` on a cache hit — from memory or
    /// from the backing disk store.
    pub fn seed(
        &self,
        hash: u64,
        ddg: &Ddg,
        machine: &MachineConfig,
        popts: &PartitionOptions,
    ) -> (SchedSeed, bool) {
        let key = (hash, machine_key(machine), popts_key(popts));
        let cell = {
            let mut map = self.entries.lock().expect("cache poisoned");
            Arc::clone(map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        #[derive(PartialEq)]
        enum Origin {
            Memory,
            Disk,
            Computed,
        }
        let mut origin = Origin::Memory;
        let seed = cell.get_or_init(|| {
            if let Some(found) = self.disk.as_ref().and_then(|d| d.get(key)) {
                origin = Origin::Disk;
                return found;
            }
            origin = Origin::Computed;
            let computed = compute_seed(ddg, machine, popts);
            if let Some(disk) = &self.disk {
                if let Err(e) = disk.append(key, &computed) {
                    eprintln!(
                        "warning: seed cache append to {} failed: {e}",
                        disk.path().display()
                    );
                }
            }
            computed
        });
        match origin {
            Origin::Computed => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                gpsched_trace::counter!("cache.miss");
                gpsched_trace::counter!("cache.insert");
            }
            Origin::Disk => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                gpsched_trace::counter!("cache.hit");
                gpsched_trace::counter!("cache.disk_hit");
            }
            Origin::Memory => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                gpsched_trace::counter!("cache.hit");
            }
        }
        (seed.clone(), origin != Origin::Computed)
    }

    /// The memoized winner of a portfolio race over the same
    /// (loop, machine, partition options, driver config, k, budget), if
    /// this cache has seen it. Sound to replay because the race is a pure
    /// function of exactly those inputs and re-running the winning spec
    /// alone reproduces the raced winner's schedule byte for byte (a
    /// cutoff only aborts runs that cannot win — see DESIGN.md §12) — so
    /// a memo hit schedules one spec instead of racing `k`.
    pub fn portfolio_winner(
        &self,
        key: CacheKey,
        cfg: &DriverConfig,
        spec: AlgorithmSpec,
    ) -> Option<AlgorithmSpec> {
        self.winners
            .lock()
            .expect("cache poisoned")
            .get(&(
                key,
                cfg_key(cfg),
                spec.portfolio_k(),
                spec.portfolio_budget(),
            ))
            .copied()
    }

    /// Records the winner of a completed portfolio race for
    /// [`Self::portfolio_winner`] to replay.
    pub fn record_portfolio_winner(
        &self,
        key: CacheKey,
        cfg: &DriverConfig,
        spec: AlgorithmSpec,
        winner: AlgorithmSpec,
    ) {
        self.winners.lock().expect("cache poisoned").insert(
            (
                key,
                cfg_key(cfg),
                spec.portfolio_k(),
                spec.portfolio_budget(),
            ),
            winner,
        );
    }

    /// `(hits, misses)` so far. Disk hits count as hits.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// How many hits were served from the backing disk store rather than
    /// memory. Always 0 for a cache without one.
    pub fn disk_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Distinct (loop, machine) entries resident in the cache.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// `true` if no entry has been created yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SweepCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Computes a seed directly (the cache-off path uses this too).
pub fn compute_seed(ddg: &Ddg, machine: &MachineConfig, popts: &PartitionOptions) -> SchedSeed {
    let start_ii = gpsched_ddg::mii::mii(ddg, machine);
    let partition: Option<PartitionResult> = if machine.cluster_count() > 1 {
        Some(partition_ddg(ddg, machine, start_ii, popts))
    } else {
        None
    };
    SchedSeed {
        start_ii,
        partition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::kernels;

    #[test]
    fn hash_ignores_names_but_not_structure() {
        let a = kernels::daxpy(100);
        let b = kernels::daxpy(100);
        assert_eq!(ddg_content_hash(&a), ddg_content_hash(&b));
        // Different trip count → different hash.
        let c = kernels::daxpy(101);
        assert_ne!(ddg_content_hash(&a), ddg_content_hash(&c));
        // Different body → different hash.
        let d = kernels::dot_product(100);
        assert_ne!(ddg_content_hash(&a), ddg_content_hash(&d));
    }

    #[test]
    fn cache_hits_on_repeat_and_counts() {
        let cache = SweepCache::new();
        let ddg = kernels::fir(50, 4);
        let m = MachineConfig::two_cluster(32, 1, 1);
        let h = ddg_content_hash(&ddg);
        let popts = PartitionOptions::default();
        let (s1, hit1) = cache.seed(h, &ddg, &m, &popts);
        let (s2, hit2) = cache.seed(h, &ddg, &m, &popts);
        assert!(!hit1 && hit2);
        assert_eq!(s1.start_ii, s2.start_ii);
        assert_eq!(cache.stats(), (1, 1));
        // A different machine is a different entry.
        let m4 = MachineConfig::four_cluster(32, 1, 1);
        let _ = cache.seed(h, &ddg, &m4, &popts);
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn seed_matches_direct_computation() {
        let ddg = kernels::stencil5(200);
        let m = MachineConfig::four_cluster(64, 1, 2);
        let popts = PartitionOptions::default();
        let direct = compute_seed(&ddg, &m, &popts);
        let cache = SweepCache::new();
        let (cached, _) = cache.seed(ddg_content_hash(&ddg), &ddg, &m, &popts);
        assert_eq!(direct.start_ii, cached.start_ii);
        assert_eq!(
            direct
                .partition
                .as_ref()
                .map(|p| p.partition.assignment().to_vec()),
            cached
                .partition
                .as_ref()
                .map(|p| p.partition.assignment().to_vec())
        );
    }

    #[test]
    fn machines_with_same_short_name_do_not_collide() {
        use gpsched_machine::{ClusterConfig, LatencyModel};
        // Two custom 2-cluster machines: same short name (c2r32b1l1),
        // different unit mixes — must occupy distinct cache entries.
        let mk = |units: [(u32, u32, u32); 2]| {
            MachineConfig::custom(
                units
                    .iter()
                    .map(|&(i, f, m)| ClusterConfig {
                        int_units: i,
                        fp_units: f,
                        mem_units: m,
                        registers: 16,
                    })
                    .collect(),
                gpsched_machine::Interconnect::legacy_bus(1, 1),
                LatencyModel::default(),
            )
        };
        let a = mk([(4, 1, 1), (4, 1, 1)]);
        let b = mk([(1, 4, 1), (1, 4, 1)]);
        assert_eq!(a.short_name(), b.short_name());
        assert_ne!(machine_key(&a), machine_key(&b));

        let ddg = kernels::daxpy(64);
        let cache = SweepCache::new();
        let h = ddg_content_hash(&ddg);
        let popts = PartitionOptions::default();
        let (_, hit_a) = cache.seed(h, &ddg, &a, &popts);
        let (_, hit_b) = cache.seed(h, &ddg, &b, &popts);
        assert!(!hit_a && !hit_b, "distinct machines must both miss");
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn unified_machines_need_no_partition() {
        let ddg = kernels::daxpy(10);
        let m = MachineConfig::unified(32);
        let seed = compute_seed(&ddg, &m, &PartitionOptions::default());
        assert!(seed.partition.is_none());
        assert!(seed.start_ii >= 1);
    }

    #[test]
    fn differing_partition_options_do_not_share_entries() {
        // Regression: the key used to be (ddg, machine) only, so a sweep
        // with refinement disabled could be served the refined partition
        // computed by an earlier sweep (or vice versa) — a stale-cache bug.
        let ddg = kernels::stencil5(120);
        let m = MachineConfig::four_cluster(32, 1, 1);
        let h = ddg_content_hash(&ddg);
        let refined = PartitionOptions::default();
        let raw = PartitionOptions {
            refine: gpsched_partition::refine::RefineOptions {
                balance: false,
                cut: false,
                ..refined.refine
            },
            ..refined
        };
        assert_ne!(popts_key(&refined), popts_key(&raw));

        let cache = SweepCache::new();
        let (s_refined, hit1) = cache.seed(h, &ddg, &m, &refined);
        let (s_raw, hit2) = cache.seed(h, &ddg, &m, &raw);
        assert!(!hit1 && !hit2, "distinct options must both miss");
        assert_eq!(cache.stats(), (0, 2));
        // Each entry matches its own direct computation, not the other's.
        let direct_raw = compute_seed(&ddg, &m, &raw);
        let direct_refined = compute_seed(&ddg, &m, &refined);
        let asg = |s: &SchedSeed| {
            s.partition
                .as_ref()
                .map(|p| p.partition.assignment().to_vec())
        };
        assert_eq!(asg(&s_raw), asg(&direct_raw));
        assert_eq!(asg(&s_refined), asg(&direct_refined));
    }

    #[test]
    fn popts_key_covers_every_knob() {
        let base = PartitionOptions::default();
        let mut variants = vec![
            PartitionOptions {
                strategy: MatchStrategy::Exact,
                ..base
            },
            PartitionOptions {
                strategy: MatchStrategy::Greedy,
                ..base
            },
            PartitionOptions {
                strategy: MatchStrategy::Auto(7),
                ..base
            },
        ];
        let r = base.refine;
        for refine in [
            gpsched_partition::refine::RefineOptions {
                balance: !r.balance,
                ..r
            },
            gpsched_partition::refine::RefineOptions { cut: !r.cut, ..r },
            gpsched_partition::refine::RefineOptions {
                max_moves: r.max_moves + 1,
                ..r
            },
            gpsched_partition::refine::RefineOptions {
                swap_candidates: r.swap_candidates + 1,
                ..r
            },
            gpsched_partition::refine::RefineOptions {
                eval_candidates: r.eval_candidates + 1,
                ..r
            },
        ] {
            variants.push(PartitionOptions { refine, ..base });
        }
        let base_key = popts_key(&base);
        for v in &variants {
            assert_ne!(popts_key(v), base_key, "{v:?} must change the key");
        }
    }
}
