//! Persistent, append-only seed cache backing [`SweepCache`].
//!
//! `gpsched-serve` runs for days; the expensive part of every job is the
//! per-(loop, machine, options) preprocessing seed — MII plus the initial
//! partition. This module persists those seeds to a human-inspectable text
//! file so a restarted daemon starts warm instead of recomputing its whole
//! working set.
//!
//! # File format
//!
//! Line-oriented text. The first line is the header `gpsched-diskcache v1`;
//! every further line is one entry:
//!
//! ```text
//! <dhash> <mkey> <pkey> <start_ii> none <crc>
//! <dhash> <mkey> <pkey> <start_ii> part <levels> <nclusters> \
//!     <comm_count> <ii_bus> <ii_effective> <max_path> <exec_time> \
//!     <cut_slack> <cut_size> <nops> <a0> ... <aN-1> <crc>
//! ```
//!
//! (shown wrapped; real entries are one line). The three key fields and
//! the checksum are 16-digit lowercase hex; everything else is decimal.
//! `<crc>` is FNV-1a over the entry's payload — every byte before the final
//! space — so a torn write, a flipped bit, or a hand-edit is detected.
//!
//! # Corruption tolerance
//!
//! Loading never fails on bad content and never panics: the valid prefix is
//! kept, and the file is truncated at the first malformed, checksum-failing,
//! or newline-less (torn) line with a warning on stderr. A file whose header
//! is wrong is discarded entirely (warned, then rewritten). This makes the
//! cache safe against the realistic failure mode — a daemon killed mid-append.
//!
//! [`SweepCache`]: crate::cache::SweepCache

use crate::cache::{fnv1a, CacheKey};
use gpsched_partition::{Partition, PartitionCost, PartitionResult};
use gpsched_sched::SchedSeed;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const HEADER: &str = "gpsched-diskcache v1";

/// Refuse to allocate assignment vectors beyond this when loading: no
/// parseable `.ddg` exceeds the engine's op cap, so a larger count is
/// corruption even if the checksum were somehow forged.
const MAX_LOAD_OPS: usize = 1_000_000;

/// An on-disk seed store: an in-memory index over an append-only file.
///
/// `get` is lock-cheap (one `Mutex`-guarded map probe); `append` writes and
/// flushes one line under a second lock, so concurrent sweep workers never
/// interleave partial lines.
pub struct DiskCache {
    path: PathBuf,
    entries: Mutex<HashMap<CacheKey, SchedSeed>>,
    file: Mutex<File>,
}

impl DiskCache {
    /// Opens (or creates) the store at `path` and loads every valid entry.
    ///
    /// Corrupt content is recovered from, not propagated: the file is
    /// truncated to its longest valid prefix (with an `eprintln` warning)
    /// and loading continues. Only real I/O errors — unreadable file,
    /// uncreatable parent — are returned.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<DiskCache> {
        let path = path.into();
        let mut entries = HashMap::new();
        let mut keep_bytes: Option<u64> = None; // Some(n) → truncate to n.

        match std::fs::read(&path) {
            Ok(bytes) => {
                let text = String::from_utf8_lossy(&bytes);
                let mut offset = 0usize;
                let mut lineno = 0usize;
                for line in text.split_inclusive('\n') {
                    lineno += 1;
                    let content = line.strip_suffix('\n').map(|c| c.trim_end_matches('\r'));
                    let valid = match content {
                        // A line without a trailing newline is a torn write.
                        None => false,
                        Some(c) if lineno == 1 => c == HEADER,
                        Some("") => true,
                        Some(c) => match parse_entry(c) {
                            Some((key, seed)) => {
                                entries.insert(key, seed);
                                true
                            }
                            None => false,
                        },
                    };
                    if !valid {
                        if lineno == 1 {
                            eprintln!(
                                "warning: seed cache {}: unrecognized header, discarding file",
                                path.display()
                            );
                            entries.clear();
                            keep_bytes = Some(0);
                        } else {
                            eprintln!(
                                "warning: seed cache {}: corrupt entry at line {lineno}, \
                                 truncating ({} entries kept)",
                                path.display(),
                                entries.len()
                            );
                            keep_bytes = Some(offset as u64);
                        }
                        break;
                    }
                    offset += line.len();
                }
                // `from_utf8_lossy` may change byte lengths; a replacement
                // character only ever appears in an invalid (dropped) line,
                // so offsets of kept lines are exact. Guard anyway.
                if let Some(n) = keep_bytes {
                    let keep = (n as usize).min(bytes.len()) as u64;
                    OpenOptions::new().write(true).open(&path)?.set_len(keep)?;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }

        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{HEADER}")?;
            file.flush()?;
        }
        Ok(DiskCache {
            path,
            entries: Mutex::new(entries),
            file: Mutex::new(file),
        })
    }

    /// The file this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Looks up a seed loaded at open time or appended since.
    pub fn get(&self, key: CacheKey) -> Option<SchedSeed> {
        self.entries
            .lock()
            .expect("disk cache poisoned")
            .get(&key)
            .cloned()
    }

    /// Appends one entry and flushes it. A key already present is a no-op
    /// (the line would be redundant; first write wins on reload anyway —
    /// entries are pure functions of their key).
    pub fn append(&self, key: CacheKey, seed: &SchedSeed) -> std::io::Result<()> {
        {
            let mut map = self.entries.lock().expect("disk cache poisoned");
            if map.contains_key(&key) {
                return Ok(());
            }
            map.insert(key, seed.clone());
        }
        let payload = render_payload(key, seed);
        let crc = fnv1a(payload.as_bytes());
        let mut file = self.file.lock().expect("disk cache poisoned");
        writeln!(file, "{payload} {crc:016x}")?;
        file.flush()
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("disk cache poisoned").len()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn render_payload(key: CacheKey, seed: &SchedSeed) -> String {
    let (d, m, p) = key;
    let mut s = format!("{d:016x} {m:016x} {p:016x} {}", seed.start_ii);
    match &seed.partition {
        None => s.push_str(" none"),
        Some(pr) => {
            let c = &pr.cost;
            s.push_str(&format!(
                " part {} {} {} {} {} {} {} {} {} {}",
                pr.levels,
                pr.partition.cluster_count(),
                c.comm_count,
                c.ii_bus,
                c.ii_effective,
                c.max_path,
                c.exec_time,
                c.cut_slack,
                c.cut_size,
                pr.partition.assignment().len(),
            ));
            for &a in pr.partition.assignment() {
                s.push_str(&format!(" {a}"));
            }
        }
    }
    s
}

/// Parses one entry line (without its newline). `None` means corrupt.
fn parse_entry(line: &str) -> Option<(CacheKey, SchedSeed)> {
    let (payload, crc_text) = line.rsplit_once(' ')?;
    if crc_text.len() != 16 {
        return None;
    }
    let crc = u64::from_str_radix(crc_text, 16).ok()?;
    if fnv1a(payload.as_bytes()) != crc {
        return None;
    }
    let mut t = payload.split(' ');
    let hex = |t: &mut std::str::Split<'_, char>| -> Option<u64> {
        let f = t.next()?;
        if f.len() != 16 {
            return None;
        }
        u64::from_str_radix(f, 16).ok()
    };
    let key = (hex(&mut t)?, hex(&mut t)?, hex(&mut t)?);
    let start_ii: i64 = t.next()?.parse().ok()?;
    let partition = match t.next()? {
        "none" => None,
        "part" => {
            let levels: usize = t.next()?.parse().ok()?;
            let nclusters: usize = t.next()?.parse().ok()?;
            if levels == 0 || nclusters == 0 {
                return None;
            }
            let cost = PartitionCost {
                comm_count: t.next()?.parse().ok()?,
                ii_bus: t.next()?.parse().ok()?,
                ii_effective: t.next()?.parse().ok()?,
                max_path: t.next()?.parse().ok()?,
                exec_time: t.next()?.parse().ok()?,
                cut_slack: t.next()?.parse().ok()?,
                cut_size: t.next()?.parse().ok()?,
            };
            let nops: usize = t.next()?.parse().ok()?;
            if nops > MAX_LOAD_OPS {
                return None;
            }
            let mut assignment = Vec::with_capacity(nops);
            for _ in 0..nops {
                let a: usize = t.next()?.parse().ok()?;
                // Validate here so `Partition::new` cannot panic on a
                // forged or hand-edited line.
                if a >= nclusters {
                    return None;
                }
                assignment.push(a);
            }
            Some(PartitionResult {
                partition: Partition::new(assignment, nclusters),
                cost,
                levels,
            })
        }
        _ => return None,
    };
    if t.next().is_some() {
        return None;
    }
    Some((
        key,
        SchedSeed {
            start_ii,
            partition,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gpsched-diskcache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join("cache.txt")
    }

    fn sample_seed(nops: usize) -> SchedSeed {
        SchedSeed {
            start_ii: 7,
            partition: Some(PartitionResult {
                partition: Partition::new((0..nops).map(|i| i % 2).collect(), 2),
                cost: PartitionCost {
                    comm_count: 3,
                    ii_bus: 2,
                    ii_effective: 7,
                    max_path: 19,
                    exec_time: 705,
                    cut_slack: -4,
                    cut_size: 5,
                },
                levels: 3,
            }),
        }
    }

    #[test]
    fn round_trips_across_reopen() {
        let path = tmp("roundtrip");
        let k1 = (1u64, 2u64, 3u64);
        let k2 = (4u64, 5u64, 6u64);
        let s1 = sample_seed(9);
        let s2 = SchedSeed {
            start_ii: 11,
            partition: None,
        };
        {
            let cache = DiskCache::open(&path).expect("open");
            assert!(cache.is_empty());
            cache.append(k1, &s1).expect("append");
            cache.append(k2, &s2).expect("append");
            assert_eq!(cache.len(), 2);
        }
        let reopened = DiskCache::open(&path).expect("reopen");
        assert_eq!(reopened.len(), 2);
        let r1 = reopened.get(k1).expect("k1");
        assert_eq!(r1.start_ii, 7);
        let p = r1.partition.expect("partitioned");
        assert_eq!(p.levels, 3);
        assert_eq!(p.cost.cut_slack, -4);
        assert_eq!(
            p.partition.assignment(),
            sample_seed(9).partition.unwrap().partition.assignment()
        );
        let r2 = reopened.get(k2).expect("k2");
        assert_eq!(r2.start_ii, 11);
        assert!(r2.partition.is_none());
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_load() {
        let path = tmp("torn");
        {
            let cache = DiskCache::open(&path).expect("open");
            cache.append((1, 1, 1), &sample_seed(4)).expect("append");
            cache
                .append(
                    (2, 2, 2),
                    &SchedSeed {
                        start_ii: 3,
                        partition: None,
                    },
                )
                .expect("append");
        }
        // Simulate a daemon killed mid-append: chop the last line in half.
        let text = std::fs::read_to_string(&path).expect("read");
        let torn = &text[..text.len() - 10];
        std::fs::write(&path, torn).expect("write torn");

        let reopened = DiskCache::open(&path).expect("reopen torn");
        assert_eq!(reopened.len(), 1, "torn entry dropped, first kept");
        assert!(reopened.get((1, 1, 1)).is_some());
        assert!(reopened.get((2, 2, 2)).is_none());
        // The file was physically truncated: a third reopen is clean and
        // appending works again.
        reopened
            .append((3, 3, 3), &sample_seed(2))
            .expect("append after recovery");
        let again = DiskCache::open(&path).expect("third open");
        assert_eq!(again.len(), 2);
    }

    #[test]
    fn flipped_bit_fails_checksum_and_is_dropped() {
        let path = tmp("bitflip");
        {
            let cache = DiskCache::open(&path).expect("open");
            cache.append((1, 1, 1), &sample_seed(4)).expect("append");
        }
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a digit inside the entry line's start_ii field.
        let entry_start = HEADER.len() + 1;
        let pos = entry_start + 51; // inside the decimal fields
        bytes[pos] = if bytes[pos] == b'7' { b'8' } else { b'7' };
        std::fs::write(&path, &bytes).expect("write");
        let reopened = DiskCache::open(&path).expect("reopen");
        assert!(reopened.is_empty(), "checksum must catch the flip");
    }

    #[test]
    fn out_of_range_assignment_is_rejected_not_panicking() {
        let path = tmp("forged");
        {
            DiskCache::open(&path).expect("open");
        }
        // Forge an entry whose assignment exceeds nclusters, with a VALID
        // checksum — the loader must still reject it (else Partition::new
        // would panic).
        let payload = format!(
            "{:016x} {:016x} {:016x} 5 part 1 2 0 1 5 9 50 0 0 3 0 1 9",
            1u64, 2u64, 3u64
        );
        let crc = fnv1a(payload.as_bytes());
        let mut f = OpenOptions::new().append(true).open(&path).expect("open");
        writeln!(f, "{payload} {crc:016x}").expect("write");
        drop(f);
        let reopened = DiskCache::open(&path).expect("reopen");
        assert!(reopened.is_empty());
    }

    #[test]
    fn wrong_header_discards_file() {
        let path = tmp("header");
        std::fs::write(&path, "some other format v9\ngarbage\n").expect("write");
        let cache = DiskCache::open(&path).expect("open");
        assert!(cache.is_empty());
        cache.append((1, 1, 1), &sample_seed(2)).expect("append");
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.starts_with(HEADER), "file was rewritten fresh");
        assert_eq!(DiskCache::open(&path).expect("reopen").len(), 1);
    }

    #[test]
    fn duplicate_append_is_a_noop() {
        let path = tmp("dup");
        let cache = DiskCache::open(&path).expect("open");
        let seed = sample_seed(4);
        cache.append((9, 9, 9), &seed).expect("append");
        cache.append((9, 9, 9), &seed).expect("append dup");
        let lines = std::fs::read_to_string(&path).expect("read");
        assert_eq!(lines.lines().count(), 2, "header + one entry");
    }
}
