//! Line-oriented parsing helpers shared by the `.ddg` ([`crate::text`])
//! and `.machine` ([`crate::machine_text`]) interchange parsers.

/// Splits one leading whitespace-delimited token off `s`.
pub(crate) fn token(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

/// Parses a numeric field, mapping failure through `err` to the format's
/// line-numbered error type.
pub(crate) fn parse_num<T: std::str::FromStr, E>(
    field: &str,
    what: &str,
    line: usize,
    err: impl FnOnce(usize, String) -> E,
) -> Result<T, E> {
    field
        .parse()
        .map_err(|_| err(line, format!("expected {what}, got `{field}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_splits_and_trims() {
        assert_eq!(token("op int 1"), ("op", "int 1"));
        assert_eq!(token("  spaced   out  "), ("spaced", "out  "));
        assert_eq!(token("single"), ("single", ""));
        assert_eq!(token(""), ("", ""));
    }

    #[test]
    fn parse_num_maps_errors() {
        let ok: Result<u32, String> = parse_num("17", "a count", 3, |l, m| format!("{l}: {m}"));
        assert_eq!(ok.unwrap(), 17);
        let e: Result<u32, String> = parse_num("x", "a count", 3, |l, m| format!("{l}: {m}"));
        assert_eq!(e.unwrap_err(), "3: expected a count, got `x`");
    }
}
