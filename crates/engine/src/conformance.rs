//! Differential conformance harness: the shared test spine that runs
//! every [`AlgorithmSpec`] in the catalog over generated corpora and
//! audits every schedule with the cycle-accurate simulator.
//!
//! The module is product code (the `eval::stress` report is built on it)
//! but its main consumers are tests: `tests/synth_conformance.rs` at the
//! workspace root drives [`conformance_corpus`] → [`check_case`] across
//! the whole catalog, and any future scheduling change that breaks a
//! cross-spec invariant fails there with a *minimized* reproducer — a
//! small `.ddg` the failure still fires on, plus the generator seed that
//! produced the original loop — printed in the panic message (and written
//! to `GPSCHED_REPRO_DIR` when set, which CI uploads as an artifact).
//!
//! Invariants audited per (loop, machine, spec) unit:
//!
//! * the spec schedules the loop at all (fallback allowed, errors not);
//! * `II ≥ MII` for every modulo schedule;
//! * `0 < IPC ≤ issue width`;
//! * spill accounting: spills name valid clusters, carry at least one
//!   reload, and `nospill` variants spill nothing;
//! * the scheduler's per-cluster `MaxLive` fits the register files;
//! * the simulator replays the schedule with no resource, bus, dataflow
//!   or pressure violation, and its observed span matches the closed
//!   form `(trips − 1)·II + SL`.
//!
//! Corpus size is controlled by `GPSCHED_SYNTH_BUDGET` (total loops
//! across all generator presets), so CI lanes can pin their time budget.

use crate::gen::generate_corpus;
use crate::text::serialize_ddg;
use gpsched_ddg::{mii, Ddg, DdgBuilder};
use gpsched_machine::MachineConfig;
use gpsched_sched::{schedule_loop_spec, AlgorithmSpec, ScheduledWith};
use gpsched_sim::simulate;
use gpsched_workloads::{preset, PRESET_NAMES};

/// One generated loop of the conformance corpus, tagged with everything
/// needed to regenerate it standalone.
#[derive(Clone, Debug)]
pub struct SynthCase {
    /// Generator preset the loop came from.
    pub preset: &'static str,
    /// Base seed of the corpus; the loop itself used
    /// [`derive_seed`](gpsched_workloads::synth::derive_seed)`(base_seed, index)`.
    pub base_seed: u64,
    /// Index within the preset's corpus.
    pub index: usize,
    /// The loop.
    pub ddg: Ddg,
}

/// Reads the corpus budget from `GPSCHED_SYNTH_BUDGET` (total loops
/// across presets), falling back to `default`.
pub fn synth_budget(default: usize) -> usize {
    std::env::var("GPSCHED_SYNTH_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the conformance corpus: `total` loops spread evenly over every
/// generator preset, seeded from `base_seed`. Deterministic — the same
/// arguments always produce the same corpus.
pub fn conformance_corpus(total: usize, base_seed: u64) -> Vec<SynthCase> {
    let presets = PRESET_NAMES.len();
    let (base, rem) = (total / presets, total % presets);
    let mut out = Vec::with_capacity(total);
    for (p, name) in PRESET_NAMES.into_iter().enumerate() {
        let count = base + usize::from(p < rem);
        let profile = preset(name).expect("bundled presets resolve");
        for (index, ddg) in generate_corpus(name, &profile, base_seed, count, 1)
            .into_iter()
            .enumerate()
        {
            out.push(SynthCase {
                preset: name,
                base_seed,
                index,
                ddg,
            });
        }
    }
    out
}

/// Metrics of one clean unit: what [`audit_unit`] measured on the way
/// through the invariants.
#[derive(Clone, Debug)]
pub struct UnitAudit {
    /// Achieved initiation interval.
    pub ii: i64,
    /// The loop's MII on the machine.
    pub mii: i64,
    /// Total cycles at the loop's trip count.
    pub cycles: u64,
    /// Useful instructions per cycle.
    pub ipc: f64,
    /// Useful ops per iteration.
    pub ops: usize,
    /// Trip count used for the accounting.
    pub trips: u64,
    /// Whether the II budget was exhausted and the list fallback fired.
    pub fallback: bool,
    /// Spilled values in the schedule.
    pub spills: usize,
    /// Times the GP driver recomputed the partition.
    pub repartitions: usize,
}

/// Schedules one unit and audits every conformance invariant.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn audit_unit(
    ddg: &Ddg,
    machine: &MachineConfig,
    spec: AlgorithmSpec,
) -> Result<UnitAudit, String> {
    let r =
        schedule_loop_spec(ddg, machine, spec).map_err(|e| format!("scheduling failed: {e}"))?;
    let sched = &r.schedule;
    let mii_v = mii::mii(ddg, machine);
    if sched.ii() < 1 {
        return Err(format!("II {} below 1", sched.ii()));
    }
    if matches!(r.method, ScheduledWith::Modulo { .. }) && sched.ii() < mii_v {
        return Err(format!(
            "modulo schedule at II {} beats the MII lower bound {mii_v}",
            sched.ii()
        ));
    }
    let ipc = r.ipc();
    if ipc <= 0.0 {
        return Err(format!("non-positive IPC {ipc}"));
    }
    let width = machine.issue_width() as f64;
    if ipc > width + 1e-9 {
        return Err(format!("IPC {ipc:.4} exceeds the issue width {width}"));
    }
    for (si, s) in sched.spills().iter().enumerate() {
        if s.cluster >= machine.cluster_count() {
            return Err(format!("spill {si} names cluster {} of none", s.cluster));
        }
        if s.loads.is_empty() {
            return Err(format!(
                "spill {si} (producer {}) has no reloads",
                s.producer
            ));
        }
    }
    // NoSpill binds the modulo pipeline; the list fallback sits outside
    // it and may spill for register feasibility.
    if spec.spec_string().contains("nospill")
        && matches!(r.method, ScheduledWith::Modulo { .. })
        && !sched.spills().is_empty()
    {
        return Err(format!(
            "`{spec}` spilled {} values despite NoSpill",
            sched.spills().len()
        ));
    }
    for (c, &live) in sched.max_live().iter().enumerate() {
        let regs = machine.cluster(c).registers as i64;
        if live > regs {
            return Err(format!(
                "MaxLive {live} exceeds {regs} registers on cluster {c}"
            ));
        }
    }
    let trips = ddg.trip_count().clamp(1, 40);
    let report =
        simulate(ddg, machine, sched, trips).map_err(|e| format!("simulator audit: {e}"))?;
    if report.cycles != sched.cycles(trips) {
        return Err(format!(
            "simulator observed {} cycles but the closed form predicts {}",
            report.cycles,
            sched.cycles(trips)
        ));
    }
    Ok(UnitAudit {
        ii: sched.ii(),
        mii: mii_v,
        cycles: r.cycles(),
        ipc,
        ops: r.ops,
        trips: r.trips,
        fallback: matches!(r.method, ScheduledWith::ListFallback),
        spills: sched.spills().len(),
        repartitions: match r.method {
            ScheduledWith::Modulo { repartitions } => repartitions,
            _ => 0,
        },
    })
}

/// Greedily shrinks `ddg` while `still_fails` holds: ops are dropped
/// (with their incident dependences) first, then individual dependences,
/// to a fixpoint. The result still satisfies `still_fails` and is usually
/// far smaller than the input — the reproducer printed by [`check_case`].
///
/// Shrinking preserves DDG validity by construction (removals cannot
/// introduce distance-0 cycles or flow edges out of stores), but note the
/// shrunk loop may fail with a *different* message than the original —
/// the guarantee is "still fails", not "fails identically".
pub fn minimize_with(ddg: &Ddg, mut still_fails: impl FnMut(&Ddg) -> bool) -> Ddg {
    let mut cur = ddg.clone();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.op_count() && cur.op_count() > 1 {
            match without_op(&cur, i) {
                Some(cand) if still_fails(&cand) => {
                    cur = cand;
                    shrunk = true;
                }
                _ => i += 1,
            }
        }
        let mut j = 0;
        while j < cur.dep_count() {
            match without_dep(&cur, j) {
                Some(cand) if still_fails(&cand) => {
                    cur = cand;
                    shrunk = true;
                }
                _ => j += 1,
            }
        }
        if !shrunk {
            return cur;
        }
    }
}

/// Rebuilds `ddg` without op `skip` (and every dependence touching it).
fn without_op(ddg: &Ddg, skip: usize) -> Option<Ddg> {
    let mut b = DdgBuilder::new(ddg.name());
    b.trip_count(ddg.trip_count());
    let mut map = Vec::with_capacity(ddg.op_count());
    for id in ddg.op_ids() {
        if id.index() == skip {
            map.push(None);
        } else {
            let op = ddg.op(id);
            map.push(Some(b.op_with_latency(
                op.class,
                op.name.clone(),
                op.latency,
            )));
        }
    }
    for e in ddg.dep_ids() {
        let (s, d) = ddg.dep_endpoints(e);
        if let (Some(ns), Some(nd)) = (map[s.index()], map[d.index()]) {
            b.dep(ns, nd, *ddg.dep(e));
        }
    }
    b.build().ok()
}

/// Rebuilds `ddg` without dependence `skip`.
fn without_dep(ddg: &Ddg, skip: usize) -> Option<Ddg> {
    let mut b = DdgBuilder::new(ddg.name());
    b.trip_count(ddg.trip_count());
    let mut map = Vec::with_capacity(ddg.op_count());
    for id in ddg.op_ids() {
        let op = ddg.op(id);
        map.push(b.op_with_latency(op.class, op.name.clone(), op.latency));
    }
    for (k, e) in ddg.dep_ids().enumerate() {
        if k == skip {
            continue;
        }
        let (s, d) = ddg.dep_endpoints(e);
        b.dep(map[s.index()], map[d.index()], *ddg.dep(e));
    }
    b.build().ok()
}

/// Audits one corpus case, panicking with a minimized reproducer on any
/// violated invariant.
///
/// The panic message carries everything needed to replay the failure
/// offline: the preset and per-loop seed (so the original regenerates
/// via `synthesize(preset(..), seed)` or `gpsched-engine gen`), the
/// machine and spec, and the shrunk loop as `.ddg` text ready for
/// `gpsched-engine sweep --corpus`. When `GPSCHED_REPRO_DIR` is set the
/// `.ddg` is also written there (CI uploads the directory on failure).
///
/// # Panics
///
/// On any audit failure; clean units return their [`UnitAudit`].
pub fn check_case(case: &SynthCase, machine: &MachineConfig, spec: AlgorithmSpec) -> UnitAudit {
    match audit_unit(&case.ddg, machine, spec) {
        Ok(audit) => audit,
        Err(first) => {
            let minimized =
                minimize_with(&case.ddg, |cand| audit_unit(cand, machine, spec).is_err());
            let text = serialize_ddg(&minimized);
            let written = write_repro(case, machine, spec, &text)
                .map(|p| format!("\nreproducer written to {p}"))
                .unwrap_or_default();
            panic!(
                "conformance failure: loop `{}` (preset `{}`, seed {}) \
                 on {} with `{}`:\n  {first}\n\
                 minimized reproducer ({} ops, {} deps; regenerate the original with \
                 synthesize(preset(\"{}\"), seed {})):{written}\n{text}",
                case.ddg.name(),
                case.preset,
                gpsched_workloads::synth::derive_seed(case.base_seed, case.index as u64),
                machine.short_name(),
                spec.spec_string(),
                minimized.op_count(),
                minimized.dep_count(),
                case.preset,
                gpsched_workloads::synth::derive_seed(case.base_seed, case.index as u64),
            );
        }
    }
}

/// Writes a reproducer `.ddg` into `GPSCHED_REPRO_DIR`, if set. The
/// file name carries preset, per-loop seed, machine *and* spec, so two
/// specs failing on the same unit keep distinct reproducers.
fn write_repro(
    case: &SynthCase,
    machine: &MachineConfig,
    spec: AlgorithmSpec,
    text: &str,
) -> Option<String> {
    let dir = std::env::var("GPSCHED_REPRO_DIR").ok()?;
    std::fs::create_dir_all(&dir).ok()?;
    let path = format!(
        "{dir}/{}-{}-{}-{}.ddg",
        case.preset,
        gpsched_workloads::synth::derive_seed(case.base_seed, case.index as u64),
        machine.short_name(),
        spec.spec_string().replace(':', "-")
    );
    std::fs::write(&path, text).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::kernels;

    #[test]
    fn corpus_covers_every_preset_and_respects_total() {
        let corpus = conformance_corpus(13, 5);
        assert_eq!(corpus.len(), 13);
        for name in PRESET_NAMES {
            assert!(corpus.iter().any(|c| c.preset == name), "{name} missing");
        }
        // Deterministic.
        let again = conformance_corpus(13, 5);
        for (a, b) in corpus.iter().zip(&again) {
            assert_eq!(a.ddg.name(), b.ddg.name());
            assert_eq!(a.ddg.dep_count(), b.ddg.dep_count());
        }
    }

    #[test]
    fn audit_passes_on_known_good_units() {
        let machine = MachineConfig::two_cluster(32, 1, 1);
        for spec in ["gp", "uracam", "list", "gp:nospill"] {
            let spec = AlgorithmSpec::parse(spec).unwrap();
            let audit = audit_unit(&kernels::daxpy(100), &machine, spec).unwrap();
            assert!(audit.ii >= 1 && audit.ipc > 0.0);
        }
    }

    #[test]
    fn minimizer_shrinks_to_the_failing_core() {
        // Shrink against a synthetic predicate: "has a recurrence" (RecMII
        // > 1). The minimum is the 2-op cycle the recurrence needs.
        let profile = preset("recurrence-heavy").unwrap();
        let ddg = gpsched_workloads::synthesize("shrink-me", &profile, 3);
        assert!(mii::rec_mii(&ddg) > 1, "corpus loop has a recurrence");
        let small = minimize_with(&ddg, |d| mii::rec_mii(d) > 1);
        assert!(mii::rec_mii(&small) > 1, "shrunk loop kept the property");
        assert!(
            small.op_count() <= 2,
            "kept {} ops for a 2-op property",
            small.op_count()
        );
    }

    #[test]
    fn budget_env_parses_and_falls_back() {
        // Can't set env safely in parallel tests; just exercise the
        // fallback path (the variable is unset under `cargo test`).
        if std::env::var_os("GPSCHED_SYNTH_BUDGET").is_none() {
            assert_eq!(synth_budget(42), 42);
        }
    }
}
