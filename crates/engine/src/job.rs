//! Job specifications: what a batch sweep should schedule.

use gpsched_ddg::Ddg;
use gpsched_machine::{table1_configs, MachineConfig};
use gpsched_partition::PartitionOptions;
use gpsched_sched::{drivers::DriverConfig, Algorithm, AlgorithmSpec};
use gpsched_workloads::Program;

/// One loop in a job, tagged with the group (program / corpus) it belongs
/// to so results can be aggregated the way the paper aggregates whole
/// benchmarks.
#[derive(Clone, Debug)]
pub struct LoopSpec {
    /// Aggregation group (benchmark/program name; `"corpus"` for loose
    /// corpora).
    pub group: String,
    /// The loop itself.
    pub ddg: Ddg,
}

/// A batch sweep: the cross product of loops × machines × algorithms.
///
/// Units are enumerated loop-major, then machine, then algorithm, and the
/// unit index is the deterministic identity of each result — however many
/// workers execute the sweep, record `k` is always the same (loop,
/// machine, algorithm) triple.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Loops to schedule.
    pub loops: Vec<LoopSpec>,
    /// Machines to schedule on.
    pub machines: Vec<MachineConfig>,
    /// Algorithm specs to schedule with. Any [`AlgorithmSpec`] variant is
    /// sweepable; legacy [`Algorithm`] values convert via `Into`.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Partitioner options shared by every unit.
    pub popts: PartitionOptions,
    /// Driver options shared by every unit.
    pub cfg: DriverConfig,
}

impl JobSpec {
    /// An empty job with default options.
    pub fn new() -> Self {
        JobSpec {
            loops: Vec::new(),
            machines: Vec::new(),
            algorithms: Vec::new(),
            popts: PartitionOptions::default(),
            cfg: DriverConfig::default(),
        }
    }

    /// Adds one loop under a group label (builder-style).
    pub fn loop_in(mut self, group: impl Into<String>, ddg: Ddg) -> Self {
        self.loops.push(LoopSpec {
            group: group.into(),
            ddg,
        });
        self
    }

    /// Adds every loop of a workload [`Program`] under the program's name.
    pub fn program(mut self, program: &Program) -> Self {
        for l in &program.loops {
            self.loops.push(LoopSpec {
                group: program.name.to_string(),
                ddg: l.clone(),
            });
        }
        self
    }

    /// Adds every program of a suite.
    pub fn programs(mut self, suite: &[Program]) -> Self {
        for p in suite {
            self = self.program(p);
        }
        self
    }

    /// Adds a generated synthetic corpus under `group`: `count` loops from
    /// `profile`, named and seeded exactly like
    /// [`gen::generate_corpus`](crate::gen::generate_corpus), so a sweep
    /// over a generated corpus reproduces from `(group, base_seed, count)`
    /// alone.
    pub fn synth_corpus(
        mut self,
        group: impl Into<String>,
        profile: &gpsched_workloads::SynthProfile,
        base_seed: u64,
        count: usize,
    ) -> Self {
        let group = group.into();
        for ddg in crate::gen::generate_corpus(&group, profile, base_seed, count, 1) {
            self.loops.push(LoopSpec {
                group: group.clone(),
                ddg,
            });
        }
        self
    }

    /// Adds a machine (builder-style).
    pub fn machine(mut self, m: MachineConfig) -> Self {
        self.machines.push(m);
        self
    }

    /// Adds several machines.
    pub fn machines(mut self, ms: impl IntoIterator<Item = MachineConfig>) -> Self {
        self.machines.extend(ms);
        self
    }

    /// Adds an algorithm spec (builder-style). Accepts both
    /// [`AlgorithmSpec`] values and legacy [`Algorithm`] names.
    pub fn algorithm(mut self, a: impl Into<AlgorithmSpec>) -> Self {
        self.algorithms.push(a.into());
        self
    }

    /// Adds several algorithm specs.
    pub fn algorithms<A: Into<AlgorithmSpec>>(
        mut self,
        algos: impl IntoIterator<Item = A>,
    ) -> Self {
        self.algorithms.extend(algos.into_iter().map(Into::into));
        self
    }

    /// Number of units (loops × machines × algorithms).
    pub fn unit_count(&self) -> usize {
        self.loops.len() * self.machines.len() * self.algorithms.len()
    }

    /// The (loop, machine, algorithm) indices of unit `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= unit_count()`.
    pub fn unit(&self, k: usize) -> (usize, usize, usize) {
        assert!(k < self.unit_count(), "unit index out of range");
        let per_loop = self.machines.len() * self.algorithms.len();
        let li = k / per_loop;
        let rest = k % per_loop;
        (
            li,
            rest / self.algorithms.len(),
            rest % self.algorithms.len(),
        )
    }

    /// The full paper evaluation: SPECfp95 suite × Table 1 machines × all
    /// four algorithms.
    pub fn paper_sweep() -> Self {
        JobSpec::new()
            .programs(&gpsched_workloads::spec_suite())
            .machines(table1_configs().into_iter().map(|(_, m)| m))
            .algorithms(Algorithm::ALL)
    }
}

impl Default for JobSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// Parses a machine short name back into a configuration — the inverse of
/// [`MachineConfig::short_name`] for the homogeneous shapes the reports
/// use: `u-r32`, shared buses (`c2r32b1l1`), pipelined buses
/// (`c2r32pb1l2`), rings (`c4r64ring2x1`) and uniform point-to-point
/// meshes (`c4r64p2p1x1`).
pub fn machine_from_short_name(s: &str) -> Option<MachineConfig> {
    use gpsched_machine::Interconnect;
    if let Some(regs) = s.strip_prefix("u-r") {
        return Some(MachineConfig::unified(regs.parse().ok()?));
    }
    let rest = s.strip_prefix('c')?;
    let (clusters, rest) = rest.split_once('r')?;
    let clusters: u32 = clusters.parse().ok()?;
    // Registers are the leading digits; the interconnect tag follows.
    let digits = rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    let (regs, tag) = rest.split_at(digits);
    let regs: u32 = regs.parse().ok()?;
    if regs == 0 || clusters == 0 || regs % clusters != 0 {
        return None;
    }
    let units = match clusters {
        2 => (2, 2, 2),
        4 => (1, 1, 1),
        _ => return None,
    };
    let two = |s: &str, sep: char| -> Option<(u32, u32)> {
        let (a, b) = s.split_once(sep)?;
        Some((a.parse().ok()?, b.parse().ok()?))
    };
    let interconnect = if let Some(rest) = tag.strip_prefix("pb") {
        let (count, latency) = two(rest, 'l')?;
        Interconnect::SharedBus {
            count,
            latency,
            pipelined: true,
        }
    } else if let Some(rest) = tag.strip_prefix("b") {
        let (count, latency) = two(rest, 'l')?;
        Interconnect::legacy_bus(count, latency)
    } else if let Some(rest) = tag.strip_prefix("ring") {
        let (hop_latency, links_per_hop) = two(rest, 'x')?;
        Interconnect::Ring {
            hop_latency,
            links_per_hop,
        }
    } else if let Some(rest) = tag.strip_prefix("p2p") {
        let (latency, channels) = two(rest, 'x')?;
        if latency == 0 {
            return None;
        }
        Interconnect::uniform_point_to_point(clusters as usize, latency, channels)
    } else {
        return None;
    };
    match &interconnect {
        Interconnect::SharedBus { count, latency, .. } if *count == 0 || *latency == 0 => {
            return None
        }
        Interconnect::Ring {
            hop_latency,
            links_per_hop,
        } if *hop_latency == 0 || *links_per_hop == 0 => return None,
        Interconnect::PointToPoint { channels, .. } if *channels == 0 => return None,
        _ => {}
    }
    Some(MachineConfig::homogeneous_with(
        clusters,
        units,
        regs,
        interconnect,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_workloads::kernels;

    #[test]
    fn unit_enumeration_is_loop_major() {
        let job = JobSpec::new()
            .loop_in("g", kernels::daxpy(10))
            .loop_in("g", kernels::dot_product(10))
            .machine(MachineConfig::unified(32))
            .machine(MachineConfig::two_cluster(32, 1, 1))
            .algorithms([Algorithm::Gp, Algorithm::Uracam]);
        assert_eq!(job.unit_count(), 8);
        assert_eq!(job.unit(0), (0, 0, 0));
        assert_eq!(job.unit(1), (0, 0, 1));
        assert_eq!(job.unit(2), (0, 1, 0));
        assert_eq!(job.unit(5), (1, 0, 1));
        assert_eq!(job.unit(7), (1, 1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn unit_bounds_checked() {
        JobSpec::new().unit(0);
    }

    #[test]
    fn paper_sweep_shape() {
        let job = JobSpec::paper_sweep();
        assert_eq!(job.machines.len(), 10);
        assert_eq!(job.algorithms.len(), 4);
        assert_eq!(job.loops.len(), 70); // 10 programs, 70 loops total
        assert_eq!(job.unit_count(), 70 * 10 * 4);
    }

    #[test]
    fn short_name_round_trips() {
        for (_, m) in table1_configs() {
            let back = machine_from_short_name(&m.short_name()).unwrap();
            assert_eq!(back, m, "{}", m.short_name());
        }
        for m in gpsched_machine::topology_presets() {
            let back = machine_from_short_name(&m.short_name()).unwrap();
            assert_eq!(back, m, "{}", m.short_name());
        }
        assert!(machine_from_short_name("c3r30b1l1").is_none());
        assert!(machine_from_short_name("c2r32ring0x1").is_none());
        assert!(machine_from_short_name("c2r32p2p1x0").is_none());
        assert!(machine_from_short_name("garbage").is_none());
    }
}
