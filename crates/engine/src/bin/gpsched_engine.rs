//! The `gpsched-engine` CLI: batch sweeps, corpus export and scaling
//! measurements from the command line.
//!
//! ```text
//! gpsched-engine sweep    [--spec] [--kernels] [--corpus FILE] [--gen SPECS]
//!                         [--machines table1|clustered|topologies|NAMES|FILE.machine]
//!                         [--algos all|modulo|extended|SPECS]
//!                         [--workers N] [--no-cache] [--out FILE] [--quiet]
//!                         [--trace] [--trace-out FILE] [--progress]
//! gpsched-engine profile  [sweep selection flags] [--top N] [--trace-out FILE]
//! gpsched-engine trace-check --file FILE [--expect NAME,NAME,…]
//! gpsched-engine gen      --preset NAME [--seed S] [--count N] [--ops K]
//!                         [--workers N] [--out FILE]
//! gpsched-engine export   [--spec] [--kernels] [--synth N [--seed S] [--ops K]]
//!                         [--out FILE]
//! gpsched-engine machines [--machines table1|clustered|NAMES] [--out FILE]
//! gpsched-engine speedup  [--workers-list 1,2,4] [sweep selection flags]
//! ```
//!
//! `sweep` with no source flag defaults to the full SPECfp95 suite on all
//! Table 1 machines with all four algorithms — the paper's entire
//! evaluation in one invocation. `--algos` accepts any algorithm spec
//! (`gp:norepart`, `uracam:greedy-merit`, …), so variants sweep exactly
//! like the paper's algorithms. `gen` emits a synthetic corpus from a
//! named generator preset; the output is byte-identical for any seed
//! regardless of `--workers`, and `sweep --gen preset:count:seed` ingests
//! the same corpora without going through a file.

use gpsched_engine::{
    aggregate_by_group, generate_corpus_text, machine_from_short_name, parse_corpus,
    parse_machine_corpus, run_sweep, serialize_corpus, serialize_machine_corpus, serve, JobSpec,
    ServeOptions, SweepOptions,
};
use gpsched_machine::{table1_configs, topology_presets, MachineConfig};
use gpsched_sched::{Algorithm, AlgorithmSpec};
use gpsched_workloads::{kernels, spec_suite, synth, SynthProfile, PRESET_NAMES};
use std::io::Write;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("trace-check") => cmd_trace_check(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("machines") => cmd_machines(&args[1..]),
        Some("speedup") => cmd_speedup(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            exit(2);
        }
    }
}

const USAGE: &str = "\
gpsched-engine — parallel batch-scheduling engine

USAGE:
  gpsched-engine sweep    [--spec] [--kernels] [--corpus FILE]
                          [--gen PRESET[:COUNT[:SEED]],…]
                          [--machines table1|clustered|topologies|NAME,NAME,…|FILE.machine]
                          [--algos all|modulo|extended|SPEC,SPEC,…]
                          [--workers N] [--no-cache] [--out FILE] [--quiet]
                          [--trace] [--trace-out FILE] [--progress]
  gpsched-engine profile  [sweep selection flags] [--top N] [--trace-out FILE]
  gpsched-engine trace-check --file FILE [--expect NAME,NAME,…]
  gpsched-engine gen      --preset NAME [--seed S] [--count N] [--ops K]
                          [--workers N] [--out FILE]
  gpsched-engine export   [--spec] [--kernels] [--synth N [--seed S] [--ops K]]
                          [--out FILE]
  gpsched-engine machines [--machines table1|clustered|topologies|NAME,NAME,…]
                          [--out FILE]
  gpsched-engine speedup  [--workers-list 1,2,4] [sweep selection flags]
  gpsched-engine serve    [--addr HOST:PORT] [--workers N] [--queue N]
                          [--cache-file FILE] [--max-body-kb N] [--trace]
  gpsched-engine client   submit|status|results|health|shutdown
                          [--addr HOST:PORT] [--job ID] [--corpus FILE]
                          [--gen SPECS] [--machines NAMES|FILE.machine]
                          [--algos SPECS] [--group NAME] [--out FILE] [--wait]

With no source flags, `sweep` runs the full SPECfp95 suite across all
Table 1 machines with all four algorithms (URACAM, Fixed, GP, List).
Machine names use the short form from reports (u-r32, c2r32b1l1, and the
topology forms c2r32pb1l2, c4r64ring1x1, c4r64p2p1x1); `topologies`
selects one reference machine per interconnect shape, and `--machines`
also accepts a `.machine` interchange file (see `machines` to export
one, including `topology` stanzas). Algorithm specs compose policy
modifiers onto a base:
gp, gp:norepart, uracam:greedy-merit, gp:linear-ii, gp:nospill, …;
`extended` selects the paper's four plus every bundled variant, and
`portfolio[:K[:BUDGET]]` ranks the catalog per loop by cheap DDG
features and races the top K with a failure budget, keeping the best
schedule found.
Generator presets (for `gen --preset` and `sweep --gen`):
recurrence-heavy, wide-ilp, mem-bound, chain-deep, fanout-hub,
long-distance. `gen` output is byte-identical for a given preset, seed
and count, whatever `--workers` says.
`sweep --trace` records per-phase spans and counters (profile report on
stderr; `--trace-out` additionally writes Chrome Trace Event JSON for
chrome://tracing / Perfetto). `profile` runs a traced sweep and prints
the top phases by self-time to stdout. `trace-check` validates a trace
JSON file and optionally asserts that named spans are present (CI).
`serve` starts the long-lived scheduling daemon (HTTP/1.1, bounded FIFO
job queue, streaming JSONL results; `--cache-file` persists seeds so a
restart starts warm; `--trace` holds a daemon-lifetime trace session so
`GET /metrics` returns live phase and counter totals as JSON). `client`
talks to it: `submit` builds a job body
from the sweep selection flags (`--wait` blocks and prints the results),
`status`/`results` poll a job by `--job ID`, `health` probes liveness,
`shutdown` stops the daemon gracefully.
";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n{USAGE}");
    exit(2)
}

/// Pulls the value of a `--flag VALUE` option out of `args`.
fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return Some(
                it.next()
                    .unwrap_or_else(|| fail(&format!("{flag} needs a value"))),
            );
        }
    }
    None
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Validates that every `--flag` in `args` is known.
fn check_flags(args: &[String], known: &[&str]) {
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            if !known.contains(&a.as_str()) {
                fail(&format!("unknown option `{a}`"));
            }
            // Every known flag except the booleans consumes a value.
            skip = !matches!(
                a.as_str(),
                "--spec"
                    | "--kernels"
                    | "--no-cache"
                    | "--quiet"
                    | "--trace"
                    | "--progress"
                    | "--wait"
            );
        } else {
            fail(&format!("unexpected argument `{a}`"));
        }
    }
}

fn parse_machines(spec: &str) -> Vec<MachineConfig> {
    match spec {
        "table1" => table1_configs().into_iter().map(|(_, m)| m).collect(),
        "clustered" => table1_configs()
            .into_iter()
            .map(|(_, m)| m)
            .filter(|m| !m.is_unified())
            .collect(),
        // One reference machine per interconnect topology (shared bus,
        // pipelined bus, ring, point-to-point).
        "topologies" => topology_presets(),
        // A `.machine` interchange file: every machine in the corpus.
        path if path.ends_with(".machine") => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let machines =
                parse_machine_corpus(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            if machines.is_empty() {
                fail(&format!("{path}: corpus holds no machines"));
            }
            // Records label machines by their shape-derived short name,
            // so two *different* machines sharing one short name (same
            // totals, different unit mixes) would silently merge in every
            // report. Refuse the ambiguity up front.
            let mut seen: std::collections::BTreeMap<String, (String, &MachineConfig)> =
                std::collections::BTreeMap::new();
            for (name, m) in &machines {
                let short = m.short_name();
                if let Some((prev_name, prev_m)) = seen.get(&short) {
                    if *prev_m != m {
                        fail(&format!(
                            "{path}: machines `{prev_name}` and `{name}` are different \
                             configurations but share the short name `{short}`; sweep records \
                             could not tell them apart"
                        ));
                    }
                }
                seen.insert(short, (name.clone(), m));
            }
            machines.into_iter().map(|(_, m)| m).collect()
        }
        list => list
            .split(',')
            .map(|name| {
                machine_from_short_name(name.trim())
                    .unwrap_or_else(|| fail(&format!("unknown machine `{name}`")))
            })
            .collect(),
    }
}

fn parse_algos(spec: &str) -> Vec<AlgorithmSpec> {
    match spec {
        "all" => Algorithm::ALL.iter().map(|&a| a.into()).collect(),
        "modulo" => Algorithm::MODULO.iter().map(|&a| a.into()).collect(),
        "extended" => AlgorithmSpec::CATALOG.to_vec(),
        list => list
            .split(',')
            .map(|name| AlgorithmSpec::parse(name.trim()).unwrap_or_else(|e| fail(&e.to_string())))
            .collect(),
    }
}

/// Builds the job selected by the common sweep flags.
fn job_from_args(args: &[String]) -> JobSpec {
    let mut job = JobSpec::new();
    let mut any_source = false;
    if has_flag(args, "--spec") {
        job = job.programs(&spec_suite());
        any_source = true;
    }
    if has_flag(args, "--kernels") {
        for ddg in kernels::all_kernels(1000) {
            job = job.loop_in("kernels", ddg);
        }
        any_source = true;
    }
    if let Some(path) = opt_value(args, "--corpus") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let loops = parse_corpus(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        if loops.is_empty() {
            fail(&format!("{path}: corpus holds no loops"));
        }
        let group = path.rsplit('/').next().unwrap_or(path).to_string();
        for ddg in loops {
            job = job.loop_in(group.clone(), ddg);
        }
        any_source = true;
    }
    if let Some(list) = opt_value(args, "--gen") {
        for spec in list.split(',') {
            let (preset_name, count, seed) = parse_gen_spec(spec.trim());
            let profile = resolve_preset(preset_name);
            job = job.synth_corpus(preset_name, &profile, seed, count);
        }
        any_source = true;
    }
    if !any_source {
        job = job.programs(&spec_suite());
    }
    job = job.machines(parse_machines(
        opt_value(args, "--machines").unwrap_or("table1"),
    ));
    job = job.algorithms(parse_algos(opt_value(args, "--algos").unwrap_or("all")));
    job
}

const SWEEP_FLAGS: &[&str] = &[
    "--spec",
    "--kernels",
    "--corpus",
    "--gen",
    "--machines",
    "--algos",
    "--workers",
    "--no-cache",
    "--out",
    "--quiet",
    "--trace",
    "--trace-out",
    "--progress",
];

/// Resolves a generator preset name, failing with the known names.
fn resolve_preset(name: &str) -> SynthProfile {
    gpsched_workloads::preset(name).unwrap_or_else(|| {
        fail(&format!(
            "unknown preset `{name}` (expected one of: {})",
            PRESET_NAMES.join(", ")
        ))
    })
}

/// Parses a `preset[:count[:seed]]` selector of `sweep --gen`.
fn parse_gen_spec(spec: &str) -> (&str, usize, u64) {
    let mut parts = spec.split(':');
    let preset_name = parts.next().unwrap_or("");
    let count = parts.next().map_or(50, |c| {
        c.parse()
            .unwrap_or_else(|_| fail(&format!("`{spec}`: count must be a number")))
    });
    let seed = parts.next().map_or(0, |s| {
        s.parse()
            .unwrap_or_else(|_| fail(&format!("`{spec}`: seed must be a number")))
    });
    if parts.next().is_some() {
        fail(&format!("`{spec}`: expected preset[:count[:seed]]"));
    }
    (preset_name, count, seed)
}

fn cmd_sweep(args: &[String]) {
    check_flags(args, SWEEP_FLAGS);
    let job = job_from_args(args);
    let opts = SweepOptions {
        workers: opt_value(args, "--workers")
            .map(|w| {
                w.parse()
                    .unwrap_or_else(|_| fail("--workers needs a number"))
            })
            .unwrap_or(0),
        use_cache: !has_flag(args, "--no-cache"),
        progress: has_flag(args, "--progress"),
    };
    let trace_out = opt_value(args, "--trace-out");
    let tracing = has_flag(args, "--trace") || trace_out.is_some();
    let session = tracing.then(gpsched_trace::TraceSession::start);
    eprintln!(
        "sweep: {} loops × {} machines × {} algorithms = {} units on {} workers",
        job.loops.len(),
        job.machines.len(),
        job.algorithms.len(),
        job.unit_count(),
        opts.effective_workers()
    );

    let mut file = opt_value(args, "--out").map(|path| {
        std::io::BufWriter::new(
            std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}"))),
        )
    });
    let result = run_sweep(&job, &opts, file.as_mut().map(|f| f as &mut dyn Write));
    if let Some(f) = file.as_mut() {
        f.flush()
            .unwrap_or_else(|e| fail(&format!("flushing --out file: {e}")));
    }

    if !has_flag(args, "--quiet") {
        // One column per algorithm spec of the job, in job order — so
        // variant sweeps (gp vs gp:norepart, …) land in the table exactly
        // like the paper's algorithms.
        let mut columns: Vec<String> = Vec::new();
        for a in &job.algorithms {
            let name = a.name();
            if !columns.contains(&name) {
                columns.push(name);
            }
        }
        let width = columns.iter().map(|c| c.len().max(8)).collect::<Vec<_>>();
        print!("{:<10} {:<12}", "group", "machine");
        for (c, w) in columns.iter().zip(&width) {
            print!(" {c:>w$}");
        }
        println!();
        let agg = aggregate_by_group(&result.records);
        let mut by_gm: std::collections::BTreeMap<(String, String), Vec<Option<f64>>> =
            std::collections::BTreeMap::new();
        for a in &agg {
            let Some(slot) = columns.iter().position(|c| *c == a.algorithm) else {
                continue;
            };
            by_gm
                .entry((a.group.clone(), a.machine.clone()))
                .or_insert_with(|| vec![None; columns.len()])[slot] = Some(a.ipc);
        }
        for ((g, m), row) in by_gm {
            print!("{g:<10} {m:<12}");
            for (v, w) in row.iter().zip(&width) {
                match v {
                    Some(x) => print!(" {x:>w$.3}"),
                    None => print!(" {:>w$}", "-"),
                }
            }
            println!();
        }
        println!("{}", result.stats.cache_summary());
    }
    // Trace reporting stays on stderr (and the --trace-out file), so
    // stdout is byte-identical with and without --trace.
    if let Some(session) = session {
        let trace = session.finish();
        eprintln!("{}", trace.summary().render(15));
        if let Some(path) = trace_out {
            gpsched_trace::chrome::write_chrome_json(std::path::Path::new(path), &trace)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            eprintln!(
                "trace: wrote {} spans ({} dropped) to {path}",
                trace.spans.len(),
                trace.dropped
            );
        }
    }
    eprintln!("{}", result.stats.summary());
}

/// Runs a traced sweep and prints the hottest phases by self-time.
fn cmd_profile(args: &[String]) {
    let mut known = SWEEP_FLAGS.to_vec();
    known.push("--top");
    check_flags(args, &known);
    let job = job_from_args(args);
    let top: usize = opt_value(args, "--top")
        .map(|n| n.parse().unwrap_or_else(|_| fail("--top needs a number")))
        .unwrap_or(20);
    let opts = SweepOptions {
        // Serial by default: with one worker, self-time fractions of the
        // wall clock are directly meaningful.
        workers: opt_value(args, "--workers")
            .map(|w| {
                w.parse()
                    .unwrap_or_else(|_| fail("--workers needs a number"))
            })
            .unwrap_or(1),
        use_cache: !has_flag(args, "--no-cache"),
        progress: has_flag(args, "--progress"),
    };
    eprintln!(
        "profile: {} units ({} loops × {} machines × {} algorithms) on {} workers",
        job.unit_count(),
        job.loops.len(),
        job.machines.len(),
        job.algorithms.len(),
        opts.effective_workers()
    );
    let session = gpsched_trace::TraceSession::start();
    let result = run_sweep(&job, &opts, None);
    let trace = session.finish();
    println!("{}", trace.summary().render(top));
    println!("{}", result.stats.cache_summary());
    if let Some(path) = opt_value(args, "--trace-out") {
        gpsched_trace::chrome::write_chrome_json(std::path::Path::new(path), &trace)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!(
            "trace: wrote {} spans ({} dropped) to {path}",
            trace.spans.len(),
            trace.dropped
        );
    }
    eprintln!("{}", result.stats.summary());
}

const TRACE_CHECK_FLAGS: &[&str] = &["--file", "--expect"];

/// Validates a Chrome trace JSON file; with `--expect`, asserts that the
/// named spans occur. Exit 0 on success, 1 on failure — the CI smoke lane
/// gates on this.
fn cmd_trace_check(args: &[String]) {
    check_flags(args, TRACE_CHECK_FLAGS);
    let path =
        opt_value(args, "--file").unwrap_or_else(|| fail("trace-check requires --file FILE"));
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let names = gpsched_trace::chrome::span_names_in_chrome_json(&text).unwrap_or_else(|e| {
        eprintln!("trace-check: {path}: {e}");
        exit(1)
    });
    eprintln!(
        "trace-check: {path}: valid Chrome trace, {} distinct span names",
        names.len()
    );
    if let Some(list) = opt_value(args, "--expect") {
        let missing: Vec<&str> = list
            .split(',')
            .map(str::trim)
            .filter(|want| !want.is_empty() && !names.iter().any(|n| n == want))
            .collect();
        if !missing.is_empty() {
            eprintln!(
                "trace-check: {path}: missing expected span(s): {} (present: {})",
                missing.join(", "),
                names.join(", ")
            );
            exit(1);
        }
        eprintln!("trace-check: all expected spans present");
    }
}

const MACHINES_FLAGS: &[&str] = &["--machines", "--out"];

/// Exports machine configurations to the `.machine` interchange format.
fn cmd_machines(args: &[String]) {
    check_flags(args, MACHINES_FLAGS);
    let machines = parse_machines(opt_value(args, "--machines").unwrap_or("table1"));
    let text = serialize_machine_corpus(machines.iter());
    match opt_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &text)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {} machines to {path}", machines.len());
        }
        None => print!("{text}"),
    }
}

const GEN_FLAGS: &[&str] = &[
    "--preset",
    "--seed",
    "--count",
    "--ops",
    "--workers",
    "--out",
];

/// Emits a synthetic corpus from a named preset as `.ddg` text.
fn cmd_gen(args: &[String]) {
    check_flags(args, GEN_FLAGS);
    let preset_name =
        opt_value(args, "--preset").unwrap_or_else(|| fail("gen requires --preset NAME"));
    let mut profile = resolve_preset(preset_name);
    if let Some(k) = opt_value(args, "--ops") {
        profile.ops = k.parse().unwrap_or_else(|_| fail("--ops needs a count"));
    }
    let seed: u64 = opt_value(args, "--seed")
        .map(|s| s.parse().unwrap_or_else(|_| fail("--seed needs a number")))
        .unwrap_or(0);
    let count: usize = opt_value(args, "--count")
        .map(|c| c.parse().unwrap_or_else(|_| fail("--count needs a number")))
        .unwrap_or(50);
    let workers: usize = opt_value(args, "--workers")
        .map(|w| {
            w.parse()
                .unwrap_or_else(|_| fail("--workers needs a number"))
        })
        .unwrap_or(0);
    let text = generate_corpus_text(preset_name, &profile, seed, count, workers);
    match opt_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &text)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {count} `{preset_name}` loops (seed {seed}) to {path}");
        }
        None => print!("{text}"),
    }
}

const EXPORT_FLAGS: &[&str] = &["--spec", "--kernels", "--synth", "--seed", "--ops", "--out"];

fn cmd_export(args: &[String]) {
    check_flags(args, EXPORT_FLAGS);
    let mut loops = Vec::new();
    if has_flag(args, "--spec") {
        for p in spec_suite() {
            loops.extend(p.loops);
        }
    }
    if has_flag(args, "--kernels") {
        loops.extend(kernels::all_kernels(1000));
    }
    if let Some(n) = opt_value(args, "--synth") {
        let n: usize = n.parse().unwrap_or_else(|_| fail("--synth needs a count"));
        let seed: u64 = opt_value(args, "--seed")
            .map(|s| s.parse().unwrap_or_else(|_| fail("--seed needs a number")))
            .unwrap_or(0);
        let profile = match opt_value(args, "--ops") {
            Some(k) => SynthProfile {
                ops: k.parse().unwrap_or_else(|_| fail("--ops needs a count")),
                ..SynthProfile::default()
            },
            None => SynthProfile::default(),
        };
        for i in 0..n {
            loops.push(synth::synthesize(
                format!("synth-{seed}-{i}"),
                &profile,
                synth::derive_seed(seed, i as u64),
            ));
        }
    }
    if loops.is_empty() {
        fail("export needs a source: --spec, --kernels and/or --synth N");
    }
    let text = serialize_corpus(loops.iter());
    match opt_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &text)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {} loops to {path}", loops.len());
        }
        None => print!("{text}"),
    }
}

fn cmd_speedup(args: &[String]) {
    let mut known = SWEEP_FLAGS.to_vec();
    known.push("--workers-list");
    check_flags(args, &known);
    let job = job_from_args(args);
    let list = opt_value(args, "--workers-list").unwrap_or("1,2,4");
    let workers: Vec<usize> = list
        .split(',')
        .map(|w| {
            w.trim()
                .parse()
                .unwrap_or_else(|_| fail("--workers-list needs numbers"))
        })
        .collect();
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "speedup: {} units ({} loops × {} machines × {} algorithms); host has {host} CPU(s)",
        job.unit_count(),
        job.loops.len(),
        job.machines.len(),
        job.algorithms.len()
    );
    if host == 1 {
        eprintln!("note: single-CPU host — worker counts above 1 can only add overhead");
    }
    let mut base: Option<f64> = None;
    println!(
        "{:>8} {:>10} {:>12} {:>9}",
        "workers", "wall (s)", "loops/s", "speedup"
    );
    for &w in &workers {
        let opts = SweepOptions {
            workers: w,
            use_cache: !has_flag(args, "--no-cache"),
            progress: has_flag(args, "--progress"),
        };
        let r = run_sweep(&job, &opts, None);
        let wall = r.stats.wall_time.as_secs_f64();
        let b = *base.get_or_insert(wall);
        println!(
            "{w:>8} {wall:>10.2} {:>12.0} {:>8.2}x",
            r.stats.throughput(),
            b / wall
        );
    }
}

fn cmd_serve(args: &[String]) {
    check_flags(
        args,
        &[
            "--addr",
            "--workers",
            "--queue",
            "--cache-file",
            "--max-body-kb",
            "--trace",
        ],
    );
    let mut opts = ServeOptions::default();
    if let Some(addr) = opt_value(args, "--addr") {
        opts.addr = addr.to_string();
    }
    if let Some(w) = opt_value(args, "--workers") {
        opts.workers = w
            .parse()
            .unwrap_or_else(|_| fail("--workers needs a number"));
    }
    if let Some(q) = opt_value(args, "--queue") {
        opts.queue_capacity = q.parse().unwrap_or_else(|_| fail("--queue needs a number"));
    }
    if let Some(path) = opt_value(args, "--cache-file") {
        opts.cache_path = Some(path.into());
    }
    if let Some(kb) = opt_value(args, "--max-body-kb") {
        let kb: usize = kb
            .parse()
            .unwrap_or_else(|_| fail("--max-body-kb needs a number"));
        opts.max_body_bytes = kb * 1024;
    }
    opts.trace = has_flag(args, "--trace");
    let mut server = serve(&opts)
        .unwrap_or_else(|e| fail(&format!("cannot start daemon on {}: {e}", opts.addr)));
    eprintln!(
        "gpsched-serve: listening on {} (queue {}, POST /shutdown to stop)",
        server.addr(),
        opts.queue_capacity
    );
    server.join();
    eprintln!("gpsched-serve: stopped");
}

/// Builds a `POST /jobs` body from the client's selection flags.
fn job_body_from_args(args: &[String]) -> String {
    let mut body = String::new();
    let machines_spec = opt_value(args, "--machines").unwrap_or("table1");
    match machines_spec {
        // Named sets expand client-side to short names the daemon resolves.
        "table1" => {
            let names: Vec<String> = gpsched_machine::table1_configs()
                .iter()
                .map(|(_, m)| m.short_name())
                .collect();
            body.push_str(&format!("machines {}\n", names.join(",")));
        }
        path if path.ends_with(".machine") => {
            // Embed the file's machine blocks verbatim.
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            body.push_str(&text);
            if !text.ends_with('\n') {
                body.push('\n');
            }
        }
        list => body.push_str(&format!("machines {list}\n")),
    }
    if let Some(algos) = opt_value(args, "--algos") {
        body.push_str(&format!("algos {algos}\n"));
    }
    let mut any_source = false;
    if let Some(path) = opt_value(args, "--corpus") {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        // Group like `sweep --corpus` does (the file's basename), so the
        // daemon's records are byte-identical to the batch CLI's.
        let group =
            opt_value(args, "--group").unwrap_or_else(|| path.rsplit('/').next().unwrap_or(path));
        body.push_str(&format!("group {group}\n"));
        body.push_str(&text);
        if !text.ends_with('\n') {
            body.push('\n');
        }
        any_source = true;
    }
    if let Some(list) = opt_value(args, "--gen") {
        for spec in list.split(',') {
            let (preset_name, count, seed) = parse_gen_spec(spec.trim());
            let profile = resolve_preset(preset_name);
            body.push_str(&format!("group {preset_name}\n"));
            body.push_str(&generate_corpus_text(preset_name, &profile, seed, count, 0));
        }
        any_source = true;
    }
    if !any_source {
        fail("client submit needs a source: --corpus FILE and/or --gen SPECS");
    }
    body
}

fn cmd_client(args: &[String]) {
    let Some(action) = args.first().map(String::as_str) else {
        fail("client needs an action: submit|status|results|health|shutdown");
    };
    let rest = &args[1..];
    check_flags(
        rest,
        &[
            "--addr",
            "--job",
            "--corpus",
            "--gen",
            "--machines",
            "--algos",
            "--group",
            "--out",
            "--wait",
        ],
    );
    let default_addr = ServeOptions::default().addr;
    let addr = opt_value(rest, "--addr").unwrap_or(&default_addr);
    let job_id = || -> u64 {
        opt_value(rest, "--job")
            .unwrap_or_else(|| fail("--job ID is required for this action"))
            .parse()
            .unwrap_or_else(|_| fail("--job needs a number"))
    };
    let write_lines = |lines: &[String]| match opt_value(rest, "--out") {
        Some(path) => {
            let mut text = lines.join("\n");
            text.push('\n');
            std::fs::write(path, text)
                .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {} lines to {path}", lines.len());
        }
        None => {
            for l in lines {
                println!("{l}");
            }
        }
    };
    match action {
        "submit" => {
            let body = job_body_from_args(rest);
            let id = serve::client::submit(addr, &body).unwrap_or_else(|e| fail(&e));
            if has_flag(rest, "--wait") {
                // The results stream blocks until the job completes.
                let lines = serve::client::results(addr, id).unwrap_or_else(|e| fail(&e));
                write_lines(&lines);
            } else {
                println!("{id}");
            }
        }
        "status" => println!(
            "{}",
            serve::client::status(addr, job_id()).unwrap_or_else(|e| fail(&e))
        ),
        "results" => {
            let lines = serve::client::results(addr, job_id()).unwrap_or_else(|e| fail(&e));
            write_lines(&lines);
        }
        "health" => println!(
            "{}",
            serve::client::health(addr).unwrap_or_else(|e| fail(&e))
        ),
        "shutdown" => {
            serve::client::shutdown(addr).unwrap_or_else(|e| fail(&e));
            eprintln!("daemon at {addr} is shutting down");
        }
        other => fail(&format!(
            "unknown client action `{other}` (expected submit|status|results|health|shutdown)"
        )),
    }
}
