//! The `.machine` textual interchange format for machine configurations.
//!
//! Pairs with the `.ddg` loop format ([`crate::text`]) so a whole sweep —
//! loops *and* machines — can live in version-controlled text files (the
//! machine-config interchange format named in DESIGN.md §9). One file
//! holds any number of machines:
//!
//! ```text
//! # full-line comments and blank lines are ignored
//! machine c2r32b1l1
//! # cluster lines: int units, fp units, mem ports, registers
//! cluster 2 2 2 16
//! cluster 2 2 2 16
//! # bus: count, per-transfer latency (optional; clustered machines
//! # default to 1 non-pipelined bus of latency 1)
//! bus 1 1
//! # latency lines: op class, cycles (optional; defaults per DESIGN.md §4)
//! latency load 2
//! end
//! ```
//!
//! The interconnect is an open axis: instead of (or as the general form
//! of) the `bus` line, a `topology` stanza selects any
//! [`gpsched_machine::Interconnect`]:
//!
//! ```text
//! topology bus 1 2 pipelined      # count, latency[, pipelined]
//! topology ring 2 1               # hop latency, links per hop
//! topology p2p 1 3                # channels per link[, default latency]
//! link 0 2 5                      # per-ordered-pair override (p2p only)
//! ```
//!
//! Single-cluster machines have no interconnect
//! ([`gpsched_machine::Interconnect::None`]) and reject `bus`,
//! `topology` and `link` lines outright — the historical placeholder
//! `bus 1 1` on unified machines is gone.
//!
//! The `machine` name is informational (reports derive short names from
//! the shape); the serializer writes [`MachineConfig::short_name`].
//! Parsing is strict and every error carries its 1-based line number,
//! exactly like the `.ddg` parser. Validation mirrors the panics of
//! [`MachineConfig::custom`] but reports them as errors instead.

use gpsched_machine::{ClusterConfig, Interconnect, LatencyModel, MachineConfig, OpClass};
use std::error::Error;
use std::fmt;

/// An error reported while parsing `.machine` text, with the 1-based line
/// number it was detected on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineTextError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for MachineTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for MachineTextError {}

/// Serializes one machine as a `.machine` block (including the trailing
/// `end`), named by its short name. The paper's shared bus keeps the
/// compact `bus N L` line; other topologies get a `topology` stanza; a
/// single-cluster machine writes no interconnect line at all.
pub fn serialize_machine(machine: &MachineConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!("machine {}\n", machine.short_name()));
    for c in machine.clusters() {
        out.push_str(&format!(
            "cluster {} {} {} {}\n",
            c.int_units, c.fp_units, c.mem_units, c.registers
        ));
    }
    match machine.interconnect() {
        Interconnect::None => {}
        Interconnect::SharedBus {
            count,
            latency,
            pipelined: false,
        } => out.push_str(&format!("bus {count} {latency}\n")),
        Interconnect::SharedBus {
            count,
            latency,
            pipelined: true,
        } => out.push_str(&format!("topology bus {count} {latency} pipelined\n")),
        Interconnect::Ring {
            hop_latency,
            links_per_hop,
        } => out.push_str(&format!("topology ring {hop_latency} {links_per_hop}\n")),
        Interconnect::PointToPoint { channels, latency } => {
            let n = machine.cluster_count();
            out.push_str(&format!("topology p2p {channels}\n"));
            for from in 0..n {
                for to in 0..n {
                    if from != to {
                        out.push_str(&format!("link {from} {to} {}\n", latency[from * n + to]));
                    }
                }
            }
        }
    }
    let l = &machine.latencies;
    for (class, lat) in [
        (OpClass::IntAlu, l.int_alu),
        (OpClass::FpAdd, l.fp_add),
        (OpClass::FpMul, l.fp_mul),
        (OpClass::FpDiv, l.fp_div),
        (OpClass::Load, l.load),
        (OpClass::Store, l.store),
    ] {
        out.push_str(&format!("latency {class} {lat}\n"));
    }
    out.push_str("end\n");
    out
}

/// Serializes a whole corpus: one block per machine, blank-line separated,
/// with a header comment.
pub fn serialize_machine_corpus<'a>(
    machines: impl IntoIterator<Item = &'a MachineConfig>,
) -> String {
    let mut out = String::from("# gpsched .machine corpus\n");
    for m in machines {
        out.push('\n');
        out.push_str(&serialize_machine(m));
    }
    out
}

use crate::textutil::token;

fn parse_num<T: std::str::FromStr>(
    field: &str,
    what: &str,
    line: usize,
) -> Result<T, MachineTextError> {
    crate::textutil::parse_num(field, what, line, |line, msg| MachineTextError {
        line,
        msg,
    })
}

/// An interconnect selection as parsed, before end-of-block validation.
enum TopoSpec {
    Bus {
        count: u32,
        latency: u32,
        pipelined: bool,
    },
    Ring {
        hop_latency: u32,
        links_per_hop: u32,
    },
    P2p {
        channels: u32,
        default_latency: Option<u32>,
    },
}

/// Sanity bounds on `.machine` numeric fields — same rationale as the
/// `.ddg` caps: parsed values feed `i64` scheduling arithmetic and
/// per-cluster table allocations, so wild values are parse errors, not
/// downstream overflow or OOM.
const MAX_CLUSTERS: usize = 256;
/// Maximum functional units of one kind per cluster.
const MAX_UNITS: u32 = 1024;
/// Maximum registers per cluster.
const MAX_REGISTERS: u32 = 1_000_000;
/// Maximum latency (op classes, bus transfers, ring hops, p2p links).
const MAX_LATENCY: u32 = 100_000;
/// Maximum bus count / channels per link.
const MAX_CHANNELS: u32 = 4096;

struct Block {
    start_line: usize,
    name: String,
    clusters: Vec<ClusterConfig>,
    /// The `bus`/`topology` line: (line number, legacy `bus` syntax?, spec).
    topology: Option<(usize, bool, TopoSpec)>,
    /// `link` lines: (line number, from, to, latency).
    links: Vec<(usize, u32, u32, u32)>,
    latencies: LatencyModel,
}

/// Parses a `.machine` corpus: every `machine … end` block in `text`, in
/// order, as `(name, config)` pairs.
///
/// An empty (or comment-only) file yields an empty vector.
///
/// # Errors
///
/// Returns the first [`MachineTextError`] encountered; parsing is strict —
/// any unknown directive, malformed field or invalid shape (no clusters,
/// multi-cluster machine without a usable bus) fails rather than being
/// skipped.
pub fn parse_machine_corpus(text: &str) -> Result<Vec<(String, MachineConfig)>, MachineTextError> {
    let mut out = Vec::new();
    let mut block: Option<Block> = None;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (word, rest) = token(line);
        match word {
            "machine" => {
                if let Some(b) = &block {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: format!("`machine` inside unterminated block `{}`", b.name),
                    });
                }
                if rest.is_empty() {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: "`machine` requires a name".to_string(),
                    });
                }
                block = Some(Block {
                    start_line: line_no,
                    name: rest.to_string(),
                    clusters: Vec::new(),
                    topology: None,
                    links: Vec::new(),
                    latencies: LatencyModel::default(),
                });
            }
            "cluster" => {
                let b = block.as_mut().ok_or_else(|| outside(line_no, "cluster"))?;
                let (int_s, rest) = token(rest);
                let (fp_s, rest) = token(rest);
                let (mem_s, regs_s) = token(rest);
                let cluster = ClusterConfig {
                    int_units: parse_num(int_s, "an integer-unit count", line_no)?,
                    fp_units: parse_num(fp_s, "an fp-unit count", line_no)?,
                    mem_units: parse_num(mem_s, "a memory-port count", line_no)?,
                    registers: parse_num(regs_s.trim(), "a register count", line_no)?,
                };
                if b.clusters.len() >= MAX_CLUSTERS {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: format!("machine `{}` exceeds {MAX_CLUSTERS} clusters", b.name),
                    });
                }
                for (units, what) in [
                    (cluster.int_units, "integer-unit"),
                    (cluster.fp_units, "fp-unit"),
                    (cluster.mem_units, "memory-port"),
                ] {
                    if units > MAX_UNITS {
                        return Err(MachineTextError {
                            line: line_no,
                            msg: format!("{what} count {units} out of range (max {MAX_UNITS})"),
                        });
                    }
                }
                if cluster.int_units == 0 && cluster.fp_units == 0 && cluster.mem_units == 0 {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: "cluster has no functional units at all".to_string(),
                    });
                }
                if cluster.registers == 0 {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: "cluster needs at least one register".to_string(),
                    });
                }
                if cluster.registers > MAX_REGISTERS {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: format!(
                            "register count {} out of range (max {MAX_REGISTERS})",
                            cluster.registers
                        ),
                    });
                }
                b.clusters.push(cluster);
            }
            "bus" => {
                let b = block.as_mut().ok_or_else(|| outside(line_no, "bus"))?;
                match &b.topology {
                    Some((_, true, _)) => {
                        return Err(MachineTextError {
                            line: line_no,
                            msg: "duplicate `bus` line".to_string(),
                        });
                    }
                    Some((_, false, _)) => {
                        return Err(MachineTextError {
                            line: line_no,
                            msg: "`bus` conflicts with an earlier `topology` line".to_string(),
                        });
                    }
                    None => {}
                }
                let (count_s, lat_s) = token(rest);
                b.topology = Some((
                    line_no,
                    true,
                    TopoSpec::Bus {
                        count: parse_num(count_s, "a bus count", line_no)?,
                        latency: parse_num(lat_s.trim(), "a bus latency", line_no)?,
                        pipelined: false,
                    },
                ));
            }
            "topology" => {
                let b = block.as_mut().ok_or_else(|| outside(line_no, "topology"))?;
                if let Some((_, legacy, _)) = &b.topology {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: if *legacy {
                            "`topology` conflicts with an earlier `bus` line".to_string()
                        } else {
                            "duplicate `topology` line".to_string()
                        },
                    });
                }
                let (kind_s, rest) = token(rest);
                let spec = match kind_s {
                    "bus" => {
                        let (count_s, rest) = token(rest);
                        let (lat_s, flag_s) = token(rest);
                        let pipelined = match flag_s.trim() {
                            "" => false,
                            "pipelined" => true,
                            other => {
                                return Err(MachineTextError {
                                    line: line_no,
                                    msg: format!(
                                        "unexpected bus flag `{other}` (expected `pipelined`)"
                                    ),
                                });
                            }
                        };
                        TopoSpec::Bus {
                            count: parse_num(count_s, "a bus count", line_no)?,
                            latency: parse_num(lat_s, "a bus latency", line_no)?,
                            pipelined,
                        }
                    }
                    "ring" => {
                        let (hop_s, links_s) = token(rest);
                        TopoSpec::Ring {
                            hop_latency: parse_num(hop_s, "a ring hop latency", line_no)?,
                            links_per_hop: parse_num(
                                links_s.trim(),
                                "a links-per-hop count",
                                line_no,
                            )?,
                        }
                    }
                    "p2p" => {
                        let (ch_s, lat_s) = token(rest);
                        let default_latency = match lat_s.trim() {
                            "" => None,
                            s => {
                                let lat: u32 = parse_num(s, "a default link latency", line_no)?;
                                if lat == 0 {
                                    return Err(MachineTextError {
                                        line: line_no,
                                        msg: "default link latency must be positive".to_string(),
                                    });
                                }
                                Some(lat)
                            }
                        };
                        TopoSpec::P2p {
                            channels: parse_num(ch_s, "a channel count", line_no)?,
                            default_latency,
                        }
                    }
                    other => {
                        return Err(MachineTextError {
                            line: line_no,
                            msg: format!("unknown topology `{other}` (expected bus|ring|p2p)"),
                        });
                    }
                };
                b.topology = Some((line_no, false, spec));
            }
            "link" => {
                let b = block.as_mut().ok_or_else(|| outside(line_no, "link"))?;
                if !matches!(&b.topology, Some((_, _, TopoSpec::P2p { .. }))) {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: "`link` requires a preceding `topology p2p` line".to_string(),
                    });
                }
                let (from_s, rest) = token(rest);
                let (to_s, lat_s) = token(rest);
                let from: u32 = parse_num(from_s, "a source cluster index", line_no)?;
                let to: u32 = parse_num(to_s, "a destination cluster index", line_no)?;
                let lat: u32 = parse_num(lat_s.trim(), "a link latency", line_no)?;
                if from == to {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: format!("`link {from} {to}` endpoints must differ"),
                    });
                }
                if b.links.iter().any(|&(_, f, t, _)| f == from && t == to) {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: format!("duplicate `link {from} {to}`"),
                    });
                }
                b.links.push((line_no, from, to, lat));
            }
            "latency" => {
                let b = block.as_mut().ok_or_else(|| outside(line_no, "latency"))?;
                let (class_s, lat_s) = token(rest);
                let class = OpClass::parse(class_s).ok_or_else(|| MachineTextError {
                    line: line_no,
                    msg: format!(
                        "unknown op class `{class_s}` (expected int|fadd|fmul|fdiv|load|store)"
                    ),
                })?;
                let lat: u32 = parse_num(lat_s.trim(), "a latency", line_no)?;
                if lat > MAX_LATENCY {
                    return Err(MachineTextError {
                        line: line_no,
                        msg: format!("latency {lat} out of range (max {MAX_LATENCY})"),
                    });
                }
                let slot = match class {
                    OpClass::IntAlu => &mut b.latencies.int_alu,
                    OpClass::FpAdd => &mut b.latencies.fp_add,
                    OpClass::FpMul => &mut b.latencies.fp_mul,
                    OpClass::FpDiv => &mut b.latencies.fp_div,
                    OpClass::Load => &mut b.latencies.load,
                    OpClass::Store => &mut b.latencies.store,
                };
                *slot = lat;
            }
            "end" => {
                let b = block.take().ok_or_else(|| outside(line_no, "end"))?;
                out.push((b.name.clone(), finish(b, line_no)?));
            }
            other => {
                return Err(MachineTextError {
                    line: line_no,
                    msg: format!("unknown directive `{other}`"),
                });
            }
        }
    }
    if let Some(b) = block {
        return Err(MachineTextError {
            line: b.start_line,
            msg: format!("machine `{}` is never closed with `end`", b.name),
        });
    }
    Ok(out)
}

fn outside(line: usize, directive: &str) -> MachineTextError {
    MachineTextError {
        line,
        msg: format!("`{directive}` outside a `machine … end` block"),
    }
}

/// Validates a finished block and builds the configuration.
fn finish(b: Block, end_line: usize) -> Result<MachineConfig, MachineTextError> {
    let err = |msg: String| MachineTextError {
        line: end_line,
        msg,
    };
    if b.clusters.is_empty() {
        return Err(err(format!("machine `{}` declares no clusters", b.name)));
    }
    let n = b.clusters.len();
    if n == 1 {
        // The unified wart is gone: single-cluster machines carry no
        // interconnect and must not pretend to configure one.
        if let Some((line, _, _)) = b.topology {
            return Err(MachineTextError {
                line,
                msg: format!("single-cluster machine `{}` takes no interconnect", b.name),
            });
        }
        return Ok(MachineConfig::custom(
            b.clusters,
            Interconnect::None,
            b.latencies,
        ));
    }
    let interconnect = match b.topology {
        None => Interconnect::legacy_bus(1, 1),
        Some((
            _,
            _,
            TopoSpec::Bus {
                count,
                latency,
                pipelined,
            },
        )) => {
            if count == 0 {
                return Err(err(format!(
                    "multi-cluster machine `{}` needs at least one bus",
                    b.name
                )));
            }
            if latency == 0 {
                return Err(err(format!(
                    "multi-cluster machine `{}` needs a positive bus latency",
                    b.name
                )));
            }
            if count > MAX_CHANNELS {
                return Err(err(format!(
                    "bus count {count} out of range (max {MAX_CHANNELS})"
                )));
            }
            if latency > MAX_LATENCY {
                return Err(err(format!(
                    "bus latency {latency} out of range (max {MAX_LATENCY})"
                )));
            }
            Interconnect::SharedBus {
                count,
                latency,
                pipelined,
            }
        }
        Some((
            _,
            _,
            TopoSpec::Ring {
                hop_latency,
                links_per_hop,
            },
        )) => {
            if hop_latency == 0 {
                return Err(err(format!(
                    "ring hop latency of machine `{}` must be positive",
                    b.name
                )));
            }
            if links_per_hop == 0 {
                return Err(err(format!(
                    "ring of machine `{}` needs at least one link per hop",
                    b.name
                )));
            }
            if hop_latency > MAX_LATENCY {
                return Err(err(format!(
                    "ring hop latency {hop_latency} out of range (max {MAX_LATENCY})"
                )));
            }
            if links_per_hop > MAX_CHANNELS {
                return Err(err(format!(
                    "links per hop {links_per_hop} out of range (max {MAX_CHANNELS})"
                )));
            }
            Interconnect::Ring {
                hop_latency,
                links_per_hop,
            }
        }
        Some((
            _,
            _,
            TopoSpec::P2p {
                channels,
                default_latency,
            },
        )) => {
            if channels == 0 {
                return Err(err(format!(
                    "p2p topology of machine `{}` needs at least one channel",
                    b.name
                )));
            }
            if channels > MAX_CHANNELS {
                return Err(err(format!(
                    "channel count {channels} out of range (max {MAX_CHANNELS})"
                )));
            }
            if let Some(lat) = default_latency {
                if lat > MAX_LATENCY {
                    return Err(err(format!(
                        "default link latency {lat} out of range (max {MAX_LATENCY})"
                    )));
                }
            }
            // 0 marks "unset" below; an explicit default fills everything.
            let mut matrix = vec![default_latency.unwrap_or(0); n * n];
            for i in 0..n {
                matrix[i * n + i] = 0;
            }
            for (line, from, to, lat) in &b.links {
                let (from, to) = (*from as usize, *to as usize);
                if from >= n || to >= n {
                    return Err(MachineTextError {
                        line: *line,
                        msg: format!(
                            "link {from} {to} of machine `{}` names a cluster out of range \
                             ({n} clusters)",
                            b.name
                        ),
                    });
                }
                if *lat == 0 {
                    return Err(MachineTextError {
                        line: *line,
                        msg: format!(
                            "link {from} {to} of machine `{}` needs a positive latency",
                            b.name
                        ),
                    });
                }
                if *lat > MAX_LATENCY {
                    return Err(MachineTextError {
                        line: *line,
                        msg: format!("link latency {lat} out of range (max {MAX_LATENCY})"),
                    });
                }
                matrix[from * n + to] = *lat;
            }
            for from in 0..n {
                for to in 0..n {
                    if from != to && matrix[from * n + to] == 0 {
                        return Err(err(format!(
                            "p2p topology of machine `{}` is missing the latency of link \
                             {from} {to}",
                            b.name
                        )));
                    }
                }
            }
            Interconnect::PointToPoint {
                channels,
                latency: matrix,
            }
        }
    };
    Ok(MachineConfig::custom(b.clusters, interconnect, b.latencies))
}

/// Parses text expected to contain exactly one machine.
///
/// # Errors
///
/// [`MachineTextError`] (reported on the last line) when the file holds
/// zero or more than one machine, or any error of
/// [`parse_machine_corpus`].
pub fn parse_machine(text: &str) -> Result<(String, MachineConfig), MachineTextError> {
    let mut v = parse_machine_corpus(text)?;
    if v.len() != 1 {
        return Err(MachineTextError {
            line: text.lines().count(),
            msg: format!("expected exactly one machine, found {}", v.len()),
        });
    }
    Ok(v.pop().expect("length checked"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_machine::table1_configs;

    #[test]
    fn table1_round_trips() {
        for (_, m) in table1_configs() {
            let text = serialize_machine(&m);
            let (name, back) = parse_machine(&text).unwrap();
            assert_eq!(name, m.short_name());
            assert_eq!(back, m, "{text}");
        }
    }

    #[test]
    fn corpus_round_trips() {
        let machines: Vec<MachineConfig> = table1_configs().into_iter().map(|(_, m)| m).collect();
        let text = serialize_machine_corpus(machines.iter());
        assert!(text.starts_with("# gpsched .machine corpus\n"));
        let back = parse_machine_corpus(&text).unwrap();
        assert_eq!(back.len(), machines.len());
        for ((_, b), m) in back.iter().zip(&machines) {
            assert_eq!(b, m);
        }
    }

    #[test]
    fn serializer_output_is_stable() {
        let m = MachineConfig::two_cluster(32, 1, 2);
        assert_eq!(
            serialize_machine(&m),
            "machine c2r32b1l2\n\
             cluster 2 2 2 16\n\
             cluster 2 2 2 16\n\
             bus 1 2\n\
             latency int 1\n\
             latency fadd 3\n\
             latency fmul 3\n\
             latency fdiv 8\n\
             latency load 2\n\
             latency store 1\n\
             end\n"
        );
    }

    #[test]
    fn defaults_apply_when_omitted() {
        // Single cluster, no latency lines: no interconnect, §4 model.
        let text = "machine tiny\ncluster 1 1 1 8\nend\n";
        let (_, m) = parse_machine(text).unwrap();
        assert_eq!(*m.interconnect(), Interconnect::None);
        assert_eq!(m.latencies, LatencyModel::default());
        assert_eq!(m.cluster_count(), 1);
        // Clustered machines default to the paper's 1 bus of latency 1.
        let text = "machine duo\ncluster 1 1 1 8\ncluster 1 1 1 8\nend\n";
        let (_, m) = parse_machine(text).unwrap();
        assert_eq!(*m.interconnect(), Interconnect::legacy_bus(1, 1));
    }

    #[test]
    fn latency_overrides_apply() {
        let text = "machine x\ncluster 1 1 1 8\nlatency load 5\nlatency fdiv 20\nend\n";
        let (_, m) = parse_machine(text).unwrap();
        assert_eq!(m.latencies.load, 5);
        assert_eq!(m.latencies.fp_div, 20);
        assert_eq!(m.latencies.int_alu, 1);
    }

    #[test]
    fn heterogeneous_clusters_round_trip() {
        let m = MachineConfig::custom(
            vec![
                ClusterConfig {
                    int_units: 3,
                    fp_units: 1,
                    mem_units: 2,
                    registers: 24,
                },
                ClusterConfig {
                    int_units: 1,
                    fp_units: 3,
                    mem_units: 2,
                    registers: 40,
                },
            ],
            Interconnect::legacy_bus(2, 2),
            LatencyModel::default(),
        );
        let (_, back) = parse_machine(&serialize_machine(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn topology_machines_round_trip() {
        for m in gpsched_machine::topology_presets() {
            let text = serialize_machine(&m);
            let (name, back) = parse_machine(&text).unwrap();
            assert_eq!(name, m.short_name());
            assert_eq!(back, m, "{text}");
        }
        // Non-uniform p2p matrix survives the link lines.
        let m = MachineConfig::homogeneous_with(
            3,
            (2, 1, 1),
            48,
            Interconnect::PointToPoint {
                channels: 2,
                latency: vec![0, 1, 4, 2, 0, 1, 1, 3, 0],
            },
        );
        let (_, back) = parse_machine(&serialize_machine(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn topology_stanza_parses_each_kind() {
        let ring = "machine r\ncluster 1 1 1 8\ncluster 1 1 1 8\ntopology ring 2 3\nend\n";
        let (_, m) = parse_machine(ring).unwrap();
        assert_eq!(
            *m.interconnect(),
            Interconnect::Ring {
                hop_latency: 2,
                links_per_hop: 3
            }
        );
        let pb = "machine b\ncluster 1 1 1 8\ncluster 1 1 1 8\ntopology bus 2 3 pipelined\nend\n";
        let (_, m) = parse_machine(pb).unwrap();
        assert_eq!(
            *m.interconnect(),
            Interconnect::SharedBus {
                count: 2,
                latency: 3,
                pipelined: true
            }
        );
        // p2p with a default latency and one override.
        let p2p = "machine p\ncluster 1 1 1 8\ncluster 1 1 1 8\n\
                   topology p2p 1 2\nlink 1 0 5\nend\n";
        let (_, m) = parse_machine(p2p).unwrap();
        assert_eq!(m.transfer_latency(0, 1), 2);
        assert_eq!(m.transfer_latency(1, 0), 5);
    }

    #[test]
    fn errors_carry_line_numbers() {
        for (text, line, needle) in [
            ("cluster 1 1 1 8\n", 1, "outside"),
            ("machine x\nfrobnicate\nend\n", 2, "frobnicate"),
            ("machine x\ncluster 1 1 one 8\nend\n", 2, "memory-port"),
            (
                "machine x\ncluster 1 1 1 8\nbus 1 1\nbus 1 1\nend\n",
                4,
                "duplicate",
            ),
            ("machine x\nlatency blorp 3\nend\n", 2, "blorp"),
            ("machine x\nend\n", 2, "no clusters"),
            (
                "machine x\ncluster 1 1 1 8\ncluster 1 1 1 8\nbus 0 1\nend\n",
                5,
                "at least one bus",
            ),
            (
                "machine x\ncluster 1 1 1 8\ncluster 1 1 1 8\nbus 1 0\nend\n",
                5,
                "positive bus latency",
            ),
            ("machine\n", 1, "requires a name"),
            ("machine x\nmachine y\nend\n", 2, "unterminated"),
        ] {
            let e = parse_machine_corpus(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}: {e}");
            assert!(e.to_string().contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn unterminated_block_reports_start_line() {
        let e = parse_machine_corpus("# header\nmachine open\ncluster 1 1 1 4\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("never closed"));
    }

    #[test]
    fn parse_machine_rejects_multiple() {
        let text = "machine a\ncluster 1 1 1 4\nend\nmachine b\ncluster 1 1 1 4\nend\n";
        assert!(parse_machine(text)
            .unwrap_err()
            .to_string()
            .contains("exactly one"));
    }
}
