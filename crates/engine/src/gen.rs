//! Deterministic generation of synthetic loop corpora, wired for the
//! engine: parallel workers, `.ddg` text output, and [`JobSpec`]
//! ingestion via [`crate::JobSpec::synth_corpus`].
//!
//! Output is a pure function of `(prefix, profile, base_seed, count)` —
//! loop `i` is always synthesized from seed
//! [`derive_seed`]`(base_seed, i)`
//! (`base_seed + i` whenever that doesn't overflow) and named
//! `{prefix}-{base_seed}-{i}` — so however many workers generate the
//! corpus, the assembled vector (and its serialized `.ddg` text) is
//! byte-identical. The `gpsched-engine gen` subcommand and the
//! conformance harness both build their corpora here.
//!
//! [`JobSpec`]: crate::JobSpec

use crate::text::serialize_corpus;
use gpsched_ddg::Ddg;
use gpsched_workloads::synth::{derive_seed, synthesize, SynthProfile};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Generates `count` loops from `profile`, optionally in parallel.
///
/// `workers == 0` uses one worker per available CPU. Any worker count
/// produces the identical vector: each loop is an independent function of
/// its index, and results are reassembled in index order.
pub fn generate_corpus(
    prefix: &str,
    profile: &SynthProfile,
    base_seed: u64,
    count: usize,
    workers: usize,
) -> Vec<Ddg> {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    }
    .min(count.max(1));
    if workers <= 1 {
        return gpsched_workloads::synth::corpus(prefix, profile, base_seed, count);
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Ddg)>();
    let mut slots: Vec<Option<Ddg>> = (0..count).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let ddg = synthesize(
                    format!("{prefix}-{base_seed}-{i}"),
                    profile,
                    derive_seed(base_seed, i as u64),
                );
                if tx.send((i, ddg)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, ddg) in rx {
            slots[i] = Some(ddg);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index generated"))
        .collect()
}

/// [`generate_corpus`] serialized to `.ddg` corpus text — what
/// `gpsched-engine gen` writes. Byte-identical for any worker count.
pub fn generate_corpus_text(
    prefix: &str,
    profile: &SynthProfile,
    base_seed: u64,
    count: usize,
    workers: usize,
) -> String {
    let loops = generate_corpus(prefix, profile, base_seed, count, workers);
    serialize_corpus(loops.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::same_structure;
    use gpsched_workloads::preset;

    #[test]
    fn parallel_generation_matches_serial() {
        let profile = preset("recurrence-heavy").expect("bundled preset");
        let serial = generate_corpus("recurrence-heavy", &profile, 7, 20, 1);
        let parallel = generate_corpus("recurrence-heavy", &profile, 7, 20, 8);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert!(same_structure(a, b), "{}", a.name());
        }
    }

    #[test]
    fn corpus_text_is_byte_identical_across_worker_counts() {
        let profile = preset("mem-bound").expect("bundled preset");
        let one = generate_corpus_text("mem-bound", &profile, 3, 16, 1);
        for workers in [2, 4, 8] {
            assert_eq!(
                one,
                generate_corpus_text("mem-bound", &profile, 3, 16, workers),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn zero_workers_means_host_parallelism() {
        let profile = SynthProfile::default();
        let auto = generate_corpus_text("x", &profile, 0, 4, 0);
        let serial = generate_corpus_text("x", &profile, 0, 4, 1);
        assert_eq!(auto, serial);
    }
}
