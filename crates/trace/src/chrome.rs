//! Chrome Trace Event Format export.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) understood by
//! `chrome://tracing` and Perfetto: one complete event (`"ph": "X"`) per
//! span with microsecond timestamps, `"M"` metadata events naming each
//! thread, and a `"C"` counter sample carrying the session's counter
//! totals. Also provides a minimal std-only JSON parser so tests (and the
//! CI trace smoke lane via `gpsched-engine trace-check`) can validate a
//! round trip without external dependencies.

use crate::session::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a trace to Chrome Trace Event JSON.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(128 + trace.spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
    };

    // Process + thread metadata first, as Chrome expects.
    sep(&mut out);
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"gpsched\"}}",
    );
    let mut threads: BTreeMap<u32, &str> = BTreeMap::new();
    for ev in &trace.spans {
        threads.entry(ev.tid).or_insert(ev.thread.as_str());
    }
    for (tid, label) in &threads {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            escape(label)
        );
    }

    for ev in &trace.spans {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"ts\":{},\"dur\":{}",
            ev.tid,
            escape(&ev.name),
            us(ev.ts_ns),
            us(ev.dur_ns),
        );
        if let Some(detail) = &ev.detail {
            let _ = write!(out, ",\"args\":{{\"detail\":{}}}", escape(detail));
        }
        out.push('}');
    }

    if !trace.counters.is_empty() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"counters\",\"ts\":{},\"args\":{{",
            us(trace.wall_ns)
        );
        for (i, (name, value)) in trace.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", escape(name), value);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Writes [`to_chrome_json`] to `path`.
pub fn write_chrome_json(path: &Path, trace: &Trace) -> io::Result<()> {
    fs::write(path, to_chrome_json(trace))
}

/// Nanoseconds → microseconds with three decimals (Chrome's `ts`/`dur`
/// unit), trimmed of a trailing `.000`.
fn us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        format!("{whole}.{frac:03}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to validate a round trip.
// ---------------------------------------------------------------------------

/// A parsed JSON value (minimal model: numbers are `f64`).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered as a pair list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar; `b` came from a &str so boundaries
                // are valid.
                let rest = &b[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Validates Chrome trace JSON and returns the distinct `"X"` span names
/// it contains, sorted. This is what the CI smoke lane asserts against.
pub fn span_names_in_chrome_json(text: &str) -> Result<Vec<String>, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or("missing traceEvents array")?;
    let mut names: Vec<String> = Vec::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or("event without ph")?;
        if ph == "X" {
            let name = ev
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or("X event without name")?;
            ev.get("ts")
                .and_then(|v| v.as_f64())
                .ok_or("X event without ts")?;
            ev.get("dur")
                .and_then(|v| v.as_f64())
                .ok_or("X event without dur")?;
            names.push(name.to_string());
        }
    }
    names.sort();
    names.dedup();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                SpanRecord {
                    name: "engine.unit".to_string(),
                    detail: Some("loop\"7\"@2c".to_string()),
                    tid: 0,
                    thread: "worker-0".to_string(),
                    ts_ns: 1_500,
                    dur_ns: 2_000_000,
                },
                SpanRecord {
                    name: "sched.ii_attempt".to_string(),
                    detail: None,
                    tid: 1,
                    thread: "worker-1".to_string(),
                    ts_ns: 3_000,
                    dur_ns: 500_250,
                },
            ],
            counters: vec![("cache.hit".to_string(), 42)],
            wall_ns: 5_000_000,
            dropped: 0,
        }
    }

    #[test]
    fn export_round_trips_through_parser() {
        let json = to_chrome_json(&sample_trace());
        let doc = parse_json(&json).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 thread_name + 2 spans + 1 counter sample.
        assert_eq!(events.len(), 6);

        let names = span_names_in_chrome_json(&json).unwrap();
        assert_eq!(names, ["engine.unit", "sched.ii_attempt"]);

        // Spot-check a span's fields survive, including the escaped detail.
        let unit = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("engine.unit"))
            .unwrap();
        assert_eq!(unit.get("ts").unwrap().as_f64().unwrap(), 1.5);
        assert_eq!(unit.get("dur").unwrap().as_f64().unwrap(), 2000.0);
        let detail = unit.get("args").unwrap().get("detail").unwrap();
        assert_eq!(detail.as_str().unwrap(), "loop\"7\"@2c");

        // Counter totals ride along as a "C" sample.
        let counters = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("C"))
            .unwrap();
        assert_eq!(
            counters.get("args").unwrap().get("cache.hit").unwrap(),
            &Json::Num(42.0)
        );
    }

    #[test]
    fn parser_handles_escapes_nesting_and_rejects_garbage() {
        let doc = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\nyA","c":{"d":null,"e":true}}"#).unwrap();
        assert_eq!(doc.get("b").unwrap().as_str().unwrap(), "x\nyA");
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2],
            Json::Num(-300.0)
        );
        assert_eq!(doc.get("c").unwrap().get("d").unwrap(), &Json::Null);
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let t = Trace {
            spans: vec![],
            counters: vec![],
            wall_ns: 0,
            dropped: 0,
        };
        let json = to_chrome_json(&t);
        let names = span_names_in_chrome_json(&json).unwrap();
        assert!(names.is_empty());
    }
}
