//! # gpsched-trace — zero-overhead tracing and metrics
//!
//! A process-wide registry of **spans** (RAII-timed phases, recorded into
//! per-thread bounded buffers) and **counters** (relaxed atomics), built
//! std-only like the rest of the workspace.
//!
//! The contract that makes this safe to thread through every hot path:
//!
//! * **Disabled is the default and costs one relaxed atomic load** per
//!   [`span!`]/[`counter!`] site (plus a predictable branch). No
//!   allocation, no `Instant::now()`, no formatting — macro arguments are
//!   not even evaluated. The engine-throughput bench pins this at ≤ 1%
//!   (`BENCH_engine.json`, `pr6-trace-neutrality`).
//! * **Enabled is scoped to a [`TraceSession`]**: sessions serialize
//!   through a global lock, reset every counter on entry, and drain the
//!   per-thread span buffers on [`TraceSession::finish`], yielding a
//!   [`Trace`] — raw span records plus counter totals.
//! * **Observation never mutates**: instrumented code behaves
//!   byte-identically with tracing on or off (the engine pins this with a
//!   traced-vs-untraced sweep equivalence test).
//!
//! Span names follow the `crate.phase.detail` convention (`engine.unit`,
//! `sched.ii_attempt`, `partition.refine`, `ddg.timing.prepare`); see
//! DESIGN.md §10 for the taxonomy.
//!
//! ```
//! use gpsched_trace::{counter, span, TraceSession};
//!
//! let session = TraceSession::start();
//! {
//!     let _outer = span!("demo.outer");
//!     let _inner = span!("demo.inner", "item {}", 3);
//!     counter!("demo.items");
//!     counter!("demo.bytes", 128);
//! }
//! let trace = session.finish();
//! assert_eq!(trace.spans.len(), 2);
//! assert_eq!(trace.counter("demo.items"), 1);
//! assert_eq!(trace.counter("demo.bytes"), 128);
//! let summary = trace.summary();
//! assert_eq!(summary.phase("demo.outer").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod report;
mod session;
mod span;

pub use report::{PhaseStat, TraceSummary};
pub use session::{snapshot, summary_if_active, Trace, TraceSession};
pub use span::{set_thread_label, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Master switch. Off by default; flipped by [`TraceSession`] only.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Session epoch: bumped on every session start *and* finish, so a span
/// guard created inside one session never records into another.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Whether tracing is currently enabled. This is the whole disabled-path
/// cost: one relaxed atomic load at every instrumentation site.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
pub(crate) fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

#[inline]
pub(crate) fn current_epoch() -> u64 {
    EPOCH.load(Ordering::Relaxed)
}

pub(crate) fn bump_epoch() -> u64 {
    EPOCH.fetch_add(1, Ordering::SeqCst) + 1
}

/// Locks a mutex, ignoring poison: trace state stays usable after a
/// panicking test — the next session resets everything anyway.
pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// The global counter registry: name → leaked atomic. Counters are few
/// (dozens) and live for the process; leaking keeps `add` lock-free after
/// the first touch per call site.
fn counter_registry() -> &'static Mutex<Vec<(&'static str, &'static AtomicU64)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, &'static AtomicU64)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// One `counter!` call site: resolves its name to the shared process-wide
/// atomic on first use, then increments lock-free. Two call sites with the
/// same name share one total.
pub struct CounterHandle {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl CounterHandle {
    /// A handle for `name` (used by the [`counter!`] macro as a per-site
    /// `static`).
    pub const fn new(name: &'static str) -> Self {
        CounterHandle {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` to the counter (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        let counter = self.cell.get_or_init(|| register_counter(self.name));
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Finds or creates the process-wide counter for `name`.
fn register_counter(name: &'static str) -> &'static AtomicU64 {
    let mut reg = lock_ignore_poison(counter_registry());
    if let Some(&(_, c)) = reg.iter().find(|(n, _)| *n == name) {
        return c;
    }
    let leaked: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    reg.push((name, leaked));
    leaked
}

/// Resets every registered counter to zero (session start).
pub(crate) fn reset_counters() {
    for (_, c) in lock_ignore_poison(counter_registry()).iter() {
        c.store(0, Ordering::SeqCst);
    }
}

/// Snapshot of every registered counter with a non-zero total, sorted by
/// name.
pub(crate) fn counter_snapshot() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = lock_ignore_poison(counter_registry())
        .iter()
        .map(|(n, c)| (n.to_string(), c.load(Ordering::SeqCst)))
        .filter(|(_, v)| *v > 0)
        .collect();
    out.sort();
    out
}

/// An owner-embedded batching cell for hot counters: increments accumulate
/// in a plain (non-atomic) integer while tracing is enabled, and flush to
/// the process-wide counter in a single `fetch_add` when the owner drops
/// (or on an explicit [`BatchCounter::flush`]).
///
/// [`counter!`] costs an atomic RMW per increment; on paths that fire
/// hundreds of thousands of times per second (per-trial placement, per
/// Bellman–Ford run) that sum is the dominant share of enabled-tracing
/// overhead. Embedding a `BatchCounter` in the struct that already owns
/// the hot loop replaces all of those with one add per increment and one
/// atomic per owner lifetime.
///
/// Semantics that keep totals exact:
///
/// * **Clones start at zero** — a cloned owner must not re-flush work
///   already attributed to the original (the scheduler's shadow-undo
///   clone, for instance).
/// * **Drop flushes**, so an owner that dies before the session's
///   `finish` loses nothing. An owner still alive across `finish` has its
///   pending increments attributed to the *next* session instead — keep
///   batch-counted owners scoped inside the traced region.
#[derive(Debug)]
pub struct BatchCounter {
    name: &'static str,
    pending: u64,
}

impl BatchCounter {
    /// A cell feeding the process-wide counter `name`.
    pub const fn new(name: &'static str) -> Self {
        BatchCounter { name, pending: 0 }
    }

    /// Adds `n` to the pending total (no-op while tracing is disabled).
    #[inline]
    pub fn add(&mut self, n: u64) {
        if enabled() {
            self.pending += n;
        }
    }

    /// Flushes the pending total into the process-wide counter.
    pub fn flush(&mut self) {
        if self.pending != 0 {
            register_counter(self.name).fetch_add(self.pending, Ordering::Relaxed);
            self.pending = 0;
        }
    }
}

impl Clone for BatchCounter {
    fn clone(&self) -> Self {
        BatchCounter::new(self.name)
    }
}

impl Drop for BatchCounter {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Increments a named counter when tracing is enabled.
///
/// `counter!("cache.hit")` adds 1; `counter!("graph.bf.rounds", n)` adds
/// `n`. The count expression is only evaluated when tracing is on. Sites
/// inside hot loops should batch through a [`BatchCounter`] instead.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $n:expr) => {
        if $crate::enabled() {
            static __GPSCHED_COUNTER: $crate::CounterHandle = $crate::CounterHandle::new($name);
            __GPSCHED_COUNTER.add($n as u64);
        }
    };
}

/// Opens a span: returns an RAII guard that records the phase's wall time
/// into the current thread's buffer when dropped (only while a session is
/// active).
///
/// `span!("sched.ii_attempt")` records the bare name;
/// `span!("engine.unit", "{} on {}", a, b)` attaches a formatted detail
/// string — the format arguments are only evaluated when tracing is on.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $($detail:tt)+) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter_with($name, format!($($detail)+))
        } else {
            $crate::SpanGuard::inactive()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_counters_shared_by_name() {
        // Sessions serialize; grab one to get exclusive trace state.
        let s = TraceSession::start();
        counter!("test.shared");
        {
            // A second call site with the same name lands in one total.
            counter!("test.shared");
        }
        let t = s.finish();
        assert_eq!(t.counter("test.shared"), 2);
        // With the session lock held (and no session), tracing is off and
        // counter! must record nothing.
        {
            let _lock = crate::session::hold_session_lock();
            assert!(!enabled());
            counter!("test.shared");
        }
        let s = TraceSession::start();
        let t = s.finish();
        assert_eq!(t.counter("test.shared"), 0);
    }

    #[test]
    fn batch_counter_flushes_on_drop_and_clones_start_clean() {
        let s = TraceSession::start();
        let mut c = BatchCounter::new("test.batched");
        c.add(3);
        c.add(4);
        // A clone must not re-flush the original's pending increments.
        let clone = c.clone();
        drop(clone);
        drop(c);
        let t = s.finish();
        assert_eq!(t.counter("test.batched"), 7);

        // Disabled: increments are discarded, drop flushes nothing.
        {
            let _lock = crate::session::hold_session_lock();
            let mut c = BatchCounter::new("test.batched");
            c.add(100);
            drop(c);
        }
        let s = TraceSession::start();
        let t = s.finish();
        assert_eq!(t.counter("test.batched"), 0);
    }

    #[test]
    fn count_expression_not_evaluated_when_disabled() {
        // The session lock guarantees tracing stays off for the duration.
        let _lock = crate::session::hold_session_lock();
        let mut evaluated = false;
        {
            let mut bump = || {
                evaluated = true;
                1u64
            };
            counter!("test.lazy", bump());
            let _ = &mut bump;
        }
        assert!(!evaluated);
    }
}
