//! RAII span guards and the per-thread buffers they record into.
//!
//! Each thread owns a bounded buffer (a ring in the "stop when full, count
//! the drops" sense — trace integrity beats silent wraparound) guarded by
//! its own mutex: only the owning thread pushes, so the lock is
//! uncontended until the collector drains every buffer at session end.

use crate::{current_epoch, lock_ignore_poison};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Hard cap on buffered span events per thread. A full SPECfp95 sweep
/// records a few coarse spans per unit (tens of thousands of events);
/// the cap only bites if someone instruments a per-candidate loop.
pub(crate) const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

/// One completed span, still in thread-local form (absolute instants).
#[derive(Clone, Debug)]
pub(crate) struct RawSpan {
    pub name: &'static str,
    pub detail: Option<Box<str>>,
    pub start: Instant,
    pub end: Instant,
}

/// A drained span record: times are nanoseconds relative to the session
/// start, ready for aggregation and export.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name (`crate.phase.detail` convention).
    pub name: String,
    /// Optional per-instance detail (e.g. `loop@machine/algo`).
    pub detail: Option<String>,
    /// Dense id of the recording thread (assigned at first use).
    pub tid: u32,
    /// Thread label (`worker-3`, or `thread-<tid>` when unlabelled).
    pub thread: String,
    /// Start, nanoseconds since session start.
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// The per-thread sink: events plus an optional human label.
pub(crate) struct ThreadBuf {
    pub tid: u32,
    pub state: Mutex<ThreadState>,
}

#[derive(Default)]
pub(crate) struct ThreadState {
    pub label: Option<String>,
    pub events: Vec<RawSpan>,
    pub dropped: u64,
}

fn thread_registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

/// Spans recorded after a thread's buffer hit the cap (global, reported in
/// [`crate::Trace::dropped`]).
pub(crate) static DROPPED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

/// This thread's buffer, registering it on first use.
fn with_thread_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    THREAD_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                state: Mutex::new(ThreadState::default()),
            });
            lock_ignore_poison(thread_registry()).push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

/// Labels the current thread in trace output (`worker-0`, …). A no-op
/// while tracing is disabled; call it after the session starts (the engine
/// labels its pool workers as it spawns them).
pub fn set_thread_label(label: impl Into<String>) {
    if !crate::enabled() {
        return;
    }
    with_thread_buf(|buf| {
        lock_ignore_poison(&buf.state).label = Some(label.into());
    });
}

/// Clears every thread buffer (session start) and prunes buffers whose
/// threads have exited.
pub(crate) fn reset_buffers() {
    let mut reg = lock_ignore_poison(thread_registry());
    // A live thread holds one Arc in its TLS; registry-only entries belong
    // to finished threads and can go.
    reg.retain(|buf| Arc::strong_count(buf) > 1);
    for buf in reg.iter() {
        let mut st = lock_ignore_poison(&buf.state);
        st.events.clear();
        st.dropped = 0;
        st.label = None;
    }
    DROPPED.store(0, Ordering::SeqCst);
}

/// Drains every thread buffer into session-relative records. `t0` is the
/// session start. When `clear` is false this is a non-destructive snapshot.
pub(crate) fn drain_buffers(t0: Instant, clear: bool) -> (Vec<SpanRecord>, u64) {
    let reg = lock_ignore_poison(thread_registry());
    let mut out = Vec::new();
    let mut dropped = 0u64;
    for buf in reg.iter() {
        let mut st = lock_ignore_poison(&buf.state);
        let thread = st
            .label
            .clone()
            .unwrap_or_else(|| format!("thread-{}", buf.tid));
        for ev in &st.events {
            out.push(SpanRecord {
                name: ev.name.to_string(),
                detail: ev.detail.as_ref().map(|d| d.to_string()),
                tid: buf.tid,
                thread: thread.clone(),
                ts_ns: ev.start.saturating_duration_since(t0).as_nanos() as u64,
                dur_ns: ev.end.saturating_duration_since(ev.start).as_nanos() as u64,
            });
        }
        dropped += st.dropped;
        if clear {
            st.events.clear();
            st.dropped = 0;
        }
    }
    // Deterministic presentation: by start time, then thread, then name.
    out.sort_by(|a, b| {
        a.ts_ns
            .cmp(&b.ts_ns)
            .then(a.tid.cmp(&b.tid))
            .then(a.name.cmp(&b.name))
    });
    (out, dropped)
}

/// RAII guard created by [`crate::span!`]: measures from construction to
/// drop and records the completed span into the thread buffer — but only
/// if tracing is still enabled *in the same session* at drop time, so a
/// span straddling a session boundary is discarded rather than recorded
/// half-timed.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    detail: Option<Box<str>>,
    start: Instant,
    epoch: u64,
    active: bool,
}

impl SpanGuard {
    /// Opens a span named `name` (no detail). Inactive when tracing is off.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if crate::enabled() {
            SpanGuard {
                name,
                detail: None,
                start: Instant::now(),
                epoch: current_epoch(),
                active: true,
            }
        } else {
            Self::inactive()
        }
    }

    /// Opens a span with a detail string (the [`crate::span!`] macro only
    /// builds the string when tracing is on).
    pub fn enter_with(name: &'static str, detail: String) -> SpanGuard {
        if crate::enabled() {
            SpanGuard {
                name,
                detail: Some(detail.into_boxed_str()),
                start: Instant::now(),
                epoch: current_epoch(),
                active: true,
            }
        } else {
            Self::inactive()
        }
    }

    /// A guard that records nothing.
    #[inline]
    pub fn inactive() -> SpanGuard {
        SpanGuard {
            name: "",
            detail: None,
            start: UNUSED_INSTANT.with(|i| *i),
            epoch: 0,
            active: false,
        }
    }
}

thread_local! {
    /// One `Instant` per thread for inactive guards, so the disabled path
    /// never calls `Instant::now()`.
    static UNUSED_INSTANT: Instant = Instant::now();
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        // Same session still live? Otherwise discard: recording an end
        // into a different session would orphan it.
        if !crate::enabled() || self.epoch != current_epoch() {
            return;
        }
        let end = Instant::now();
        let ev = RawSpan {
            name: self.name,
            detail: self.detail.take(),
            start: self.start,
            end,
        };
        with_thread_buf(|buf| {
            let mut st = lock_ignore_poison(&buf.state);
            if st.events.len() < MAX_EVENTS_PER_THREAD {
                st.events.push(ev);
            } else {
                st.dropped += 1;
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSession;

    #[test]
    fn guards_record_nested_spans_in_order() {
        let s = TraceSession::start();
        {
            let _outer = crate::span!("t.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span!("t.inner", "i={}", 7);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let t = s.finish();
        assert_eq!(t.spans.len(), 2);
        // Inner drops first but sorting is by start time: outer leads.
        assert_eq!(t.spans[0].name, "t.outer");
        assert_eq!(t.spans[1].name, "t.inner");
        assert_eq!(t.spans[1].detail.as_deref(), Some("i=7"));
        // Containment: inner lies within outer.
        let (o, i) = (&t.spans[0], &t.spans[1]);
        assert!(i.ts_ns >= o.ts_ns);
        assert!(i.ts_ns + i.dur_ns <= o.ts_ns + o.dur_ns);
    }

    #[test]
    fn span_straddling_session_end_is_discarded() {
        let s = TraceSession::start();
        let guard = crate::span!("t.straddle");
        let t = s.finish();
        drop(guard); // ends after the session: must not corrupt anything
        assert!(t.spans.is_empty());
        let s2 = TraceSession::start();
        let t2 = s2.finish();
        assert!(t2.spans.is_empty());
    }

    #[test]
    fn worker_threads_get_their_own_tids_and_labels() {
        let s = TraceSession::start();
        std::thread::scope(|scope| {
            for w in 0..3 {
                scope.spawn(move || {
                    set_thread_label(format!("w-{w}"));
                    let _g = crate::span!("t.worker");
                });
            }
        });
        let t = s.finish();
        assert_eq!(t.spans.len(), 3);
        let mut tids: Vec<u32> = t.spans.iter().map(|e| e.tid).collect();
        tids.sort();
        tids.dedup();
        assert_eq!(tids.len(), 3, "each worker records under its own tid");
        let mut labels: Vec<&str> = t.spans.iter().map(|e| e.thread.as_str()).collect();
        labels.sort();
        assert_eq!(labels, ["w-0", "w-1", "w-2"]);
    }
}
