//! Trace sessions: the only way tracing turns on, and the collector that
//! turns per-thread buffers into a [`Trace`].
//!
//! Sessions serialize through a process-wide lock — two concurrent
//! sessions would interleave their counters — and bump the global epoch
//! on both start and finish so stale [`crate::SpanGuard`]s from a
//! previous session can never record into this one.

use crate::report::TraceSummary;
use crate::span::{drain_buffers, reset_buffers, SpanRecord};
use crate::{bump_epoch, counter_snapshot, lock_ignore_poison, reset_counters, set_enabled};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Session start time, readable by [`snapshot`] from any thread.
fn session_t0() -> &'static Mutex<Option<Instant>> {
    static T0: OnceLock<Mutex<Option<Instant>>> = OnceLock::new();
    T0.get_or_init(|| Mutex::new(None))
}

/// Holds the session lock without starting a session — lets tests assert
/// disabled-path behaviour without another test flipping tracing on.
#[cfg(test)]
pub(crate) fn hold_session_lock() -> MutexGuard<'static, ()> {
    lock_ignore_poison(session_lock())
}

/// An active tracing window. Created with [`TraceSession::start`];
/// [`TraceSession::finish`] stops recording and returns the collected
/// [`Trace`]. Dropping a session without finishing it discards its data
/// but still turns tracing off.
pub struct TraceSession {
    _guard: MutexGuard<'static, ()>,
    t0: Instant,
}

impl TraceSession {
    /// Starts a session: blocks until any other session ends, resets all
    /// counters and span buffers, then enables tracing process-wide.
    pub fn start() -> TraceSession {
        let guard = lock_ignore_poison(session_lock());
        reset_counters();
        reset_buffers();
        bump_epoch();
        let t0 = Instant::now();
        *lock_ignore_poison(session_t0()) = Some(t0);
        set_enabled(true);
        TraceSession { _guard: guard, t0 }
    }

    /// Stops recording and drains every thread buffer into a [`Trace`].
    pub fn finish(self) -> Trace {
        // Disable *before* draining so no event lands mid-drain; the epoch
        // bump invalidates guards still alive on worker threads.
        set_enabled(false);
        bump_epoch();
        *lock_ignore_poison(session_t0()) = None;
        let wall_ns = self.t0.elapsed().as_nanos() as u64;
        let (spans, dropped) = drain_buffers(self.t0, true);
        Trace {
            spans,
            counters: counter_snapshot(),
            wall_ns,
            dropped,
        }
        // `self` drops here, releasing the session lock.
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        // Idempotent with finish(): tracing must never outlive its session.
        set_enabled(false);
        bump_epoch();
        *lock_ignore_poison(session_t0()) = None;
    }
}

/// Everything one session recorded: raw spans, counter totals, and how
/// much (if anything) was dropped to the per-thread buffer cap.
#[derive(Clone, Debug)]
pub struct Trace {
    /// All completed spans, sorted by start time (then thread, then name).
    pub spans: Vec<SpanRecord>,
    /// Non-zero counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Session wall time in nanoseconds.
    pub wall_ns: u64,
    /// Spans discarded because a thread buffer hit its cap (0 in healthy
    /// runs; non-zero means the trace is incomplete).
    pub dropped: u64,
}

impl Trace {
    /// Total for a named counter (0 if it never fired).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Aggregates spans into per-phase self/total statistics.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::from_trace(self)
    }
}

/// Non-destructive snapshot of the active session (spans recorded so far
/// plus current counter totals), or `None` when tracing is off. This is
/// the hook a long-lived server can poll for live metrics.
pub fn snapshot() -> Option<Trace> {
    if !crate::enabled() {
        return None;
    }
    let t0 = (*lock_ignore_poison(session_t0()))?;
    let (spans, dropped) = drain_buffers(t0, false);
    Some(Trace {
        spans,
        counters: counter_snapshot(),
        wall_ns: t0.elapsed().as_nanos() as u64,
        dropped,
    })
}

/// [`snapshot`] reduced to a [`TraceSummary`], or `None` when tracing is
/// off.
pub fn summary_if_active() -> Option<TraceSummary> {
    snapshot().map(|t| t.summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reset_between_sessions() {
        let s = TraceSession::start();
        crate::counter!("session.test.a", 5);
        let t = s.finish();
        assert_eq!(t.counter("session.test.a"), 5);
        assert!(t.wall_ns > 0);

        let s = TraceSession::start();
        let t = s.finish();
        assert_eq!(t.counter("session.test.a"), 0, "new session starts clean");
    }

    #[test]
    fn snapshot_is_none_when_disabled_and_live_when_active() {
        {
            let _lock = hold_session_lock();
            assert!(snapshot().is_none());
        }
        let s = TraceSession::start();
        crate::counter!("session.test.live", 3);
        {
            let _g = crate::span!("session.test.span");
        }
        let snap = snapshot().expect("session active");
        assert_eq!(snap.counter("session.test.live"), 3);
        assert_eq!(snap.spans.len(), 1);
        // Snapshot is non-destructive: finish still sees the span.
        let t = s.finish();
        assert_eq!(t.spans.len(), 1);
        assert!(summary_if_active().is_none());
    }

    #[test]
    fn dropping_a_session_turns_tracing_off() {
        let s = TraceSession::start();
        assert!(crate::enabled());
        drop(s);
        // Holding the session lock proves no session is active, so the
        // flag must be off (immune to other tests starting sessions).
        let _lock = hold_session_lock();
        assert!(!crate::enabled());
    }
}
