//! Aggregation of raw span records into a per-phase profile.
//!
//! Spans on one thread nest (RAII guards cannot partially overlap), so a
//! containment stack per thread recovers the parent/child structure and
//! with it **self time**: a phase's total duration minus the time spent in
//! its direct children. Self time is what the `profile` subcommand ranks
//! by — it answers "where does the wall clock actually go" without a
//! parent phase double-counting everything beneath it.

use crate::session::Trace;
use crate::span::SpanRecord;
use std::collections::HashMap;

/// Aggregate statistics for one span name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name (`crate.phase.detail` convention).
    pub name: String,
    /// How many spans carried this name.
    pub count: u64,
    /// Summed wall time of all spans with this name, nanoseconds.
    pub total_ns: u64,
    /// Summed wall time minus time spent in directly nested spans.
    pub self_ns: u64,
}

/// A trace reduced to per-phase statistics plus the counter totals —
/// what `SweepStats` embeds and what the text profile report renders.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// One entry per distinct span name, sorted by descending self time
    /// (ties broken by name).
    pub phases: Vec<PhaseStat>,
    /// Non-zero counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Session wall time in nanoseconds.
    pub wall_ns: u64,
    /// Spans lost to the per-thread buffer cap (profile is partial if > 0).
    pub dropped: u64,
}

impl TraceSummary {
    /// Builds the summary from a collected [`Trace`].
    pub fn from_trace(trace: &Trace) -> TraceSummary {
        // Partition spans by thread; trace.spans is globally sorted by
        // start time, which per-thread is exactly the order guards opened.
        let mut by_tid: HashMap<u32, Vec<&SpanRecord>> = HashMap::new();
        for ev in &trace.spans {
            by_tid.entry(ev.tid).or_default().push(ev);
        }

        let mut agg: HashMap<&str, PhaseStat> = HashMap::new();
        for events in by_tid.values() {
            // Containment stack: (end_ns, child_time_ns accumulated so far).
            let mut stack: Vec<(u64, u64, &SpanRecord)> = Vec::new();
            for ev in events {
                let end = ev.ts_ns + ev.dur_ns;
                while let Some(&(top_end, _, _)) = stack.last() {
                    if top_end <= ev.ts_ns {
                        let (_, child_ns, done) = stack.pop().unwrap();
                        record(&mut agg, done, child_ns);
                    } else {
                        break;
                    }
                }
                if let Some(top) = stack.last_mut() {
                    // `ev` is a direct child of the span below it.
                    top.1 += ev.dur_ns;
                }
                stack.push((end, 0, ev));
            }
            while let Some((_, child_ns, done)) = stack.pop() {
                record(&mut agg, done, child_ns);
            }
        }

        let mut phases: Vec<PhaseStat> = agg.into_values().collect();
        phases.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        TraceSummary {
            phases,
            counters: trace.counters.clone(),
            wall_ns: trace.wall_ns,
            dropped: trace.dropped,
        }
    }

    /// Looks up one phase by span name.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Total for a named counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Serializes the summary as one JSON object — the `gpsched-serve`
    /// `GET /metrics` body. Hand-rolled like the rest of the workspace's
    /// JSON: phases in the summary's (self-time) order, counters in name
    /// order, so the export is byte-deterministic for a given summary.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{}}}",
                esc(&p.name),
                p.count,
                p.total_ns,
                p.self_ns
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", esc(name), value));
        }
        out.push_str(&format!(
            "}},\"wall_ns\":{},\"dropped\":{}}}",
            self.wall_ns, self.dropped
        ));
        out
    }

    /// Renders the text profile report: the top `top_n` phases by self
    /// time, then every counter. `top_n == 0` means all phases.
    pub fn render(&self, top_n: usize) -> String {
        let shown = if top_n == 0 {
            self.phases.len()
        } else {
            top_n.min(self.phases.len())
        };
        let name_w = self.phases[..shown]
            .iter()
            .map(|p| p.name.len())
            .chain(std::iter::once("phase".len()))
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} phases, wall {:.3} ms\n",
            self.phases.len(),
            self.wall_ns as f64 / 1e6
        ));
        if self.dropped > 0 {
            out.push_str(&format!(
                "warning: {} spans dropped (buffer cap) — self times are partial\n",
                self.dropped
            ));
        }
        out.push_str(&format!(
            "{:name_w$}  {:>8}  {:>12}  {:>12}  {:>6}\n",
            "phase", "count", "total ms", "self ms", "self%"
        ));
        let wall = self.wall_ns.max(1) as f64;
        for p in &self.phases[..shown] {
            out.push_str(&format!(
                "{:name_w$}  {:>8}  {:>12.3}  {:>12.3}  {:>5.1}%\n",
                p.name,
                p.count,
                p.total_ns as f64 / 1e6,
                p.self_ns as f64 / 1e6,
                100.0 * p.self_ns as f64 / wall,
            ));
        }
        // The undo-log scoreboard: how much speculative placement work was
        // unwound in place instead of being cloned away (PR 8). Entries
        // count every logged inverse op, committed trials included.
        let rollbacks = self.counter("sched.trial_rollbacks");
        if rollbacks > 0 {
            let entries = self.counter("sched.undo_entries");
            out.push_str(&format!(
                "undo: {rollbacks} trial rollbacks, {entries} undo entries logged ({:.1} entries/rollback)\n",
                entries as f64 / rollbacks as f64,
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let cw = self
                .counters
                .iter()
                .map(|(n, _)| n.len())
                .max()
                .unwrap_or(0);
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name:cw$}  {value}\n"));
            }
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// span and counter names are internal identifiers, but the export must
/// stay valid JSON whatever a detail string carries.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn record<'a>(agg: &mut HashMap<&'a str, PhaseStat>, ev: &'a SpanRecord, child_ns: u64) {
    // Clamp: a child whose end drifts past its parent's (sub-ns rounding)
    // must not push self time negative.
    let self_ns = ev.dur_ns.saturating_sub(child_ns);
    let entry = agg.entry(ev.name.as_str()).or_insert_with(|| PhaseStat {
        name: ev.name.clone(),
        count: 0,
        total_ns: 0,
        self_ns: 0,
    });
    entry.count += 1;
    entry.total_ns += ev.dur_ns;
    entry.self_ns += self_ns;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecord;

    fn span(name: &str, tid: u32, ts: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            detail: None,
            tid,
            thread: format!("thread-{tid}"),
            ts_ns: ts,
            dur_ns: dur,
        }
    }

    fn trace(spans: Vec<SpanRecord>) -> Trace {
        let wall = spans.iter().map(|s| s.ts_ns + s.dur_ns).max().unwrap_or(0);
        Trace {
            spans,
            counters: vec![("c.x".to_string(), 7)],
            wall_ns: wall,
            dropped: 0,
        }
    }

    #[test]
    fn self_time_excludes_direct_children_only() {
        // outer [0,100) contains mid [10,60) contains inner [20,30).
        let t = trace(vec![
            span("outer", 0, 0, 100),
            span("mid", 0, 10, 50),
            span("inner", 0, 20, 10),
        ]);
        let s = t.summary();
        assert_eq!(s.phase("outer").unwrap().self_ns, 50); // 100 - mid(50)
        assert_eq!(s.phase("mid").unwrap().self_ns, 40); // 50 - inner(10)
        assert_eq!(s.phase("inner").unwrap().self_ns, 10);
        assert_eq!(s.counter("c.x"), 7);
    }

    #[test]
    fn siblings_both_subtract_from_parent() {
        let t = trace(vec![
            span("outer", 0, 0, 100),
            span("a", 0, 0, 30),
            span("b", 0, 40, 30),
        ]);
        let s = t.summary();
        assert_eq!(s.phase("outer").unwrap().self_ns, 40);
        assert_eq!(s.phase("a").unwrap().total_ns, 30);
    }

    #[test]
    fn threads_aggregate_independently() {
        let t = trace(vec![
            span("work", 0, 0, 50),
            span("work", 1, 0, 70), // same window, different thread: no nesting
        ]);
        let s = t.summary();
        let w = s.phase("work").unwrap();
        assert_eq!(w.count, 2);
        assert_eq!(w.total_ns, 120);
        assert_eq!(w.self_ns, 120);
    }

    #[test]
    fn repeated_phases_accumulate_and_sort_by_self_time() {
        let t = trace(vec![
            span("hot", 0, 0, 60),
            span("cold", 0, 100, 10),
            span("hot", 0, 200, 60),
        ]);
        let s = t.summary();
        assert_eq!(s.phases[0].name, "hot");
        assert_eq!(s.phases[0].count, 2);
        assert_eq!(s.phases[0].total_ns, 120);
        let text = s.render(10);
        assert!(text.contains("hot"));
        assert!(text.contains("c.x"));
    }

    #[test]
    fn json_export_is_valid_and_complete() {
        let t = trace(vec![span("outer", 0, 0, 100), span("mid", 0, 10, 50)]);
        let s = t.summary();
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"phases\":["));
        assert!(j.contains("\"name\":\"outer\",\"count\":1,\"total_ns\":100,\"self_ns\":50"));
        assert!(j.contains("\"counters\":{\"c.x\":7}"));
        assert!(j.contains(&format!("\"wall_ns\":{}", s.wall_ns)));
        assert!(j.contains("\"dropped\":0"));
        // Escaping: a hostile detail-bearing name must not break the JSON.
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn undo_row_appears_exactly_when_rollbacks_happened() {
        let mut t = trace(vec![span("work", 0, 0, 50)]);
        assert!(!t.summary().render(5).contains("undo:"));
        t.counters.push(("sched.trial_rollbacks".to_string(), 4));
        t.counters.push(("sched.undo_entries".to_string(), 42));
        let text = t.summary().render(5);
        assert!(text
            .contains("undo: 4 trial rollbacks, 42 undo entries logged (10.5 entries/rollback)"));
    }
}
