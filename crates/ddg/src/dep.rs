//! Dependences (DDG edges).

use std::fmt;

/// The kind of a dependence edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Register data flow: the destination consumes the value produced by
    /// the source. Crossing clusters requires an inter-cluster transfer
    /// (bus or memory) and the value occupies a register while live.
    Flow,
    /// Memory ordering (store→load, load→store, store→store). Pure timing
    /// constraint: no value moves between clusters and no register is used.
    Mem,
}

/// A dependence between two operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dep {
    /// Edge kind.
    pub kind: DepKind,
    /// Minimum cycles between the issue of the source and of the
    /// destination (for [`DepKind::Flow`], the producer's latency).
    pub latency: u32,
    /// Iteration distance: 0 for intra-iteration dependences, `d ≥ 1` when
    /// the consumer reads the value produced `d` iterations earlier.
    pub distance: u32,
}

impl Dep {
    /// Creates a flow dependence.
    pub fn flow(latency: u32, distance: u32) -> Self {
        Dep {
            kind: DepKind::Flow,
            latency,
            distance,
        }
    }

    /// Creates a memory-ordering dependence.
    pub fn mem(latency: u32, distance: u32) -> Self {
        Dep {
            kind: DepKind::Mem,
            latency,
            distance,
        }
    }

    /// Returns `true` for loop-carried dependences.
    pub fn is_carried(&self) -> bool {
        self.distance > 0
    }
}

impl fmt::Display for Dep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            DepKind::Flow => "flow",
            DepKind::Mem => "mem",
        };
        write!(f, "{k}(lat={}, dist={})", self.latency, self.distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let d = Dep::flow(3, 0);
        assert_eq!(d.kind, DepKind::Flow);
        assert!(!d.is_carried());
        let m = Dep::mem(1, 2);
        assert_eq!(m.kind, DepKind::Mem);
        assert!(m.is_carried());
    }

    #[test]
    fn display_format() {
        assert_eq!(Dep::flow(2, 1).to_string(), "flow(lat=2, dist=1)");
        assert_eq!(Dep::mem(1, 0).to_string(), "mem(lat=1, dist=0)");
    }
}
