//! Loop data-dependence graphs (DDGs) and their timing analysis.
//!
//! A [`Ddg`] models the body of an innermost loop as a directed multigraph:
//! nodes are operations ([`Op`], classed per [`gpsched_machine::OpClass`]),
//! edges are dependences ([`Dep`]) carrying a latency and an *iteration
//! distance* (0 for intra-iteration dependences, ≥ 1 for loop-carried ones).
//!
//! On top of the raw graph this crate provides the analyses every phase of
//! the paper's GP scheme consumes:
//!
//! * [`mii`] — the minimum initiation interval: `ResMII` (resource bound),
//!   `RecMII` (recurrence bound, by binary search over positive-cycle
//!   detection) and their max `MII`;
//! * [`timing`] — ASAP/ALAP times, per-edge slack and the longest
//!   intra-iteration path (`max_path`) under a candidate II, optionally with
//!   extra per-edge delays (the partitioner adds the bus latency to cut
//!   edges this way);
//! * [`Ddg::execution_time`] — the paper's cycle model
//!   `(niter − 1)·II + max_path`.
//!
//! # Example
//!
//! ```
//! use gpsched_ddg::DdgBuilder;
//! use gpsched_machine::{MachineConfig, OpClass};
//!
//! // acc = acc + a[i]  (a loop-carried FP recurrence)
//! let mut b = DdgBuilder::new("acc");
//! let ld = b.op(OpClass::Load, "a[i]");
//! let add = b.op(OpClass::FpAdd, "acc+=");
//! b.flow(ld, add);
//! b.flow_carried(add, add, 1);
//! let ddg = b.trip_count(100).build()?;
//!
//! let machine = MachineConfig::unified(32);
//! // The fp-add latency (3) bounds the recurrence: RecMII = 3.
//! assert_eq!(gpsched_ddg::mii::rec_mii(&ddg), 3);
//! assert_eq!(gpsched_ddg::mii::mii(&ddg, &machine), 3);
//! # Ok::<(), gpsched_ddg::DdgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod ddg;
mod dep;
pub mod dot;
pub mod mii;
mod op;
pub mod timing;
pub mod unroll;

pub use build::{DdgBuilder, DdgError};
pub use ddg::Ddg;
pub use dep::{Dep, DepKind};
pub use op::Op;

/// Identifier of an operation inside a [`Ddg`] (alias of the graph node id).
pub type OpId = gpsched_graph::NodeId;
/// Identifier of a dependence inside a [`Ddg`] (alias of the graph edge id).
pub type DepId = gpsched_graph::EdgeId;
