//! The immutable loop DDG and its basic queries.

use crate::dep::{Dep, DepKind};
use crate::op::Op;
use crate::{DepId, OpId};
use gpsched_graph::DiGraph;
use gpsched_machine::{OpClass, ResourceKind};

/// An immutable, validated loop data-dependence graph.
///
/// Build one with [`crate::DdgBuilder`]. Invariants guaranteed by
/// construction:
///
/// * the subgraph of distance-0 edges is acyclic;
/// * flow edges originate only from value-producing operations (not stores);
/// * `trip_count ≥ 1`.
#[derive(Clone, Debug)]
pub struct Ddg {
    pub(crate) name: String,
    pub(crate) trip_count: u64,
    pub(crate) graph: DiGraph<Op, Dep>,
}

impl Ddg {
    /// Loop name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Trip count of the loop ("obtained through profiling" in the paper).
    pub fn trip_count(&self) -> u64 {
        self.trip_count
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph<Op, Dep> {
        &self.graph
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of dependences.
    pub fn dep_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The operation record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn op(&self, id: OpId) -> &Op {
        self.graph.node_weight(id)
    }

    /// The dependence record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn dep(&self, id: DepId) -> &Dep {
        self.graph.edge_weight(id)
    }

    /// Endpoints `(src, dst)` of dependence `id`.
    pub fn dep_endpoints(&self, id: DepId) -> (OpId, OpId) {
        self.graph.edge_endpoints(id)
    }

    /// Iterates over all operation ids.
    pub fn op_ids(&self) -> impl DoubleEndedIterator<Item = OpId> + ExactSizeIterator {
        self.graph.node_ids()
    }

    /// Iterates over all dependence ids.
    pub fn dep_ids(&self) -> impl DoubleEndedIterator<Item = DepId> + ExactSizeIterator {
        self.graph.edge_ids()
    }

    /// Number of operations that occupy functional units of `kind`.
    pub fn ops_using(&self, kind: ResourceKind) -> usize {
        self.graph
            .node_weights()
            .filter(|op| op.class.resource() == kind)
            .count()
    }

    /// Number of memory operations (loads + stores) in the original body.
    ///
    /// The scheduler uses this to size the pool of "remaining memory slots"
    /// available to spill code and memory communications (§3.3.2).
    pub fn memory_op_count(&self) -> usize {
        self.ops_using(ResourceKind::MemPort)
    }

    /// Number of operations of a specific class.
    pub fn ops_of_class(&self, class: OpClass) -> usize {
        self.graph
            .node_weights()
            .filter(|op| op.class == class)
            .count()
    }

    /// Constraint tuples `(src, dst, latency + extra(e), distance)` for the
    /// modulo-scheduling constraint system, with a caller-supplied extra
    /// delay per edge (used by the partitioner to charge bus latency on cut
    /// edges). Pass `|_| 0` for the raw graph.
    pub fn constraint_deps(
        &self,
        mut extra: impl FnMut(DepId) -> i64,
    ) -> Vec<(usize, usize, i64, i64)> {
        self.graph
            .edge_ids()
            .map(|e| {
                let (s, d) = self.graph.edge_endpoints(e);
                let dep = self.graph.edge_weight(e);
                (
                    s.index(),
                    d.index(),
                    dep.latency as i64 + extra(e),
                    dep.distance as i64,
                )
            })
            .collect()
    }

    /// The paper's execution-time model for a software-pipelined loop:
    /// `(trip_count − 1) · II + max_path` (§3.2.1), where `max_path` is the
    /// schedule-length estimate of one iteration.
    ///
    /// Saturates at `i64::MAX` instead of overflowing: `.ddg` files may
    /// carry extreme trip counts, and the partitioner probes infeasible
    /// assignments at sentinel IIs — both must yield a finite worst cost,
    /// not wraparound.
    pub fn execution_time(&self, ii: i64, max_path: i64) -> i64 {
        let trips = i64::try_from(self.trip_count.saturating_sub(1)).unwrap_or(i64::MAX);
        trips.saturating_mul(ii).saturating_add(max_path)
    }

    /// Flow dependences entering `op` (its operands).
    pub fn operand_deps(&self, op: OpId) -> Vec<(DepId, OpId)> {
        self.graph
            .in_edges(op)
            .filter(|&(e, _)| self.graph.edge_weight(e).kind == DepKind::Flow)
            .collect()
    }

    /// Flow dependences leaving `op` (uses of its value).
    pub fn use_deps(&self, op: OpId) -> Vec<(DepId, OpId)> {
        self.graph
            .out_edges(op)
            .filter(|&(e, _)| self.graph.edge_weight(e).kind == DepKind::Flow)
            .collect()
    }

    /// Total latency over all edges — a safe upper bound for any II search.
    pub fn total_latency(&self) -> i64 {
        self.graph
            .edge_ids()
            .map(|e| self.graph.edge_weight(e).latency as i64)
            .sum::<i64>()
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use crate::DdgBuilder;
    use gpsched_machine::{OpClass, ResourceKind};

    #[test]
    fn basic_queries() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld");
        let mul = b.op(OpClass::FpMul, "mul");
        let st = b.op(OpClass::Store, "st");
        b.flow(ld, mul);
        b.flow(mul, st);
        b.mem(st, ld, 1);
        let ddg = b.trip_count(10).build().unwrap();

        assert_eq!(ddg.name(), "t");
        assert_eq!(ddg.trip_count(), 10);
        assert_eq!(ddg.op_count(), 3);
        assert_eq!(ddg.dep_count(), 3);
        assert_eq!(ddg.ops_using(ResourceKind::MemPort), 2);
        assert_eq!(ddg.memory_op_count(), 2);
        assert_eq!(ddg.ops_of_class(OpClass::FpMul), 1);
        assert_eq!(ddg.operand_deps(mul).len(), 1);
        assert_eq!(ddg.use_deps(mul).len(), 1);
        // The mem edge is not a use of st's (nonexistent) value.
        assert_eq!(ddg.use_deps(st).len(), 0);
    }

    #[test]
    fn constraint_deps_apply_extra() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        let e = b.flow(a, c);
        let ddg = b.build().unwrap();
        let plain = ddg.constraint_deps(|_| 0);
        assert_eq!(plain, vec![(0, 1, 1, 0)]);
        let bussed = ddg.constraint_deps(|id| if id == e { 2 } else { 0 });
        assert_eq!(bussed, vec![(0, 1, 3, 0)]);
    }

    #[test]
    fn execution_time_model() {
        let mut b = DdgBuilder::new("t");
        b.op(OpClass::IntAlu, "a");
        let ddg = b.trip_count(101).build().unwrap();
        assert_eq!(ddg.execution_time(4, 7), 100 * 4 + 7);
    }
}
