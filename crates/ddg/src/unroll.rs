//! Loop unrolling of DDGs.
//!
//! The paper's related work (Sánchez & González, ICPP 2000 — reference
//! \[35\]) studies unrolling as a lever for modulo scheduling on clustered
//! VLIWs: replicating the body multiplies the work per initiation and can
//! dilute recurrence bounds (`RecMII` of the unrolled loop is
//! `⌈RecMII/k⌉`-ish per original iteration). This module provides the
//! transformation so the schedulers and the partitioner can be studied
//! under it.

use crate::build::{DdgBuilder, DdgError};
use crate::ddg::Ddg;
use crate::OpId;

/// Unrolls `ddg` by `factor`, producing a loop whose body contains
/// `factor` copies of the original body.
///
/// A dependence `src → dst` with distance `d` becomes, for each copy `i`,
/// an edge from copy `i` of `src` to copy `i + d` of `dst`: within the new
/// body when `i + d < factor` (distance 0… the intra-iteration part), and
/// loop-carried with distance `⌊(i + d) / factor⌋` to copy
/// `(i + d) mod factor` otherwise.
///
/// The trip count divides by `factor` (the original count is assumed to be
/// a multiple; the remainder would be peeled by a real compiler and is
/// dropped here, documented behaviour).
///
/// # Errors
///
/// Returns [`DdgError`] if the unrolled graph fails validation (cannot
/// happen for a valid input — kept for interface honesty).
///
/// # Panics
///
/// Panics if `factor == 0`.
///
/// # Example
///
/// ```
/// use gpsched_ddg::{unroll::unroll, DdgBuilder};
/// use gpsched_machine::OpClass;
///
/// let mut b = DdgBuilder::new("acc");
/// let acc = b.op(OpClass::FpAdd, "acc");
/// b.flow_carried(acc, acc, 1);
/// b.trip_count(100);
/// let ddg = b.build()?;
/// assert_eq!(gpsched_ddg::mii::rec_mii(&ddg), 3);
///
/// let u2 = unroll(&ddg, 2)?;
/// assert_eq!(u2.op_count(), 2);
/// assert_eq!(u2.trip_count(), 50);
/// // The recurrence still costs 3 cycles per original iteration:
/// // 6 cycles per unrolled iteration of 2 accumulations.
/// assert_eq!(gpsched_ddg::mii::rec_mii(&u2), 6);
/// # Ok::<(), gpsched_ddg::DdgError>(())
/// ```
pub fn unroll(ddg: &Ddg, factor: u32) -> Result<Ddg, DdgError> {
    assert!(factor >= 1, "unroll factor must be at least 1");
    if factor == 1 {
        return Ok(ddg.clone());
    }
    let k = factor as usize;
    let mut b = DdgBuilder::new(format!("{}-x{}", ddg.name(), factor));
    b.trip_count((ddg.trip_count() / factor as u64).max(1));

    // Copies of every op: ids[copy][original index].
    let mut ids: Vec<Vec<OpId>> = Vec::with_capacity(k);
    for copy in 0..k {
        let mut row = Vec::with_capacity(ddg.op_count());
        for op in ddg.op_ids() {
            let o = ddg.op(op);
            row.push(b.op(o.class, format!("{}#{}", o.name, copy)));
        }
        ids.push(row);
    }

    for e in ddg.dep_ids() {
        let (s, d) = ddg.dep_endpoints(e);
        let dep = *ddg.dep(e);
        for copy in 0..k {
            let reach = copy + dep.distance as usize;
            let (target_copy, new_dist) = (reach % k, (reach / k) as u32);
            b.dep(
                ids[copy][s.index()],
                ids[target_copy][d.index()],
                crate::Dep {
                    kind: dep.kind,
                    latency: dep.latency,
                    distance: new_dist,
                },
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mii, DdgBuilder};
    use gpsched_machine::{MachineConfig, OpClass};

    fn daxpy_like() -> Ddg {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "x");
        let mu = b.op(OpClass::FpMul, "m");
        let st = b.op(OpClass::Store, "s");
        b.flow(ld, mu);
        b.flow(mu, st);
        b.mem(st, ld, 1);
        b.trip_count(120);
        b.build().unwrap()
    }

    #[test]
    fn factor_one_is_identity() {
        let d = daxpy_like();
        let u = unroll(&d, 1).unwrap();
        assert_eq!(u.op_count(), d.op_count());
        assert_eq!(u.trip_count(), d.trip_count());
    }

    #[test]
    fn body_and_trips_scale() {
        let d = daxpy_like();
        let u = unroll(&d, 4).unwrap();
        assert_eq!(u.op_count(), 12);
        assert_eq!(u.dep_count(), 12);
        assert_eq!(u.trip_count(), 30);
    }

    #[test]
    fn carried_edges_rewire_within_body() {
        // store#i → load#(i+1) becomes intra-iteration except the last,
        // which wraps with distance 1.
        let d = daxpy_like();
        let u = unroll(&d, 3).unwrap();
        let carried = u.dep_ids().filter(|&e| u.dep(e).distance > 0).count();
        assert_eq!(carried, 1, "only the wrap-around alias edge is carried");
    }

    #[test]
    fn res_mii_scales_with_body() {
        // 2 memory ops per original body → 8 after ×4, on 4 ports → 2.
        let d = daxpy_like();
        let m = MachineConfig::unified(32);
        assert_eq!(mii::res_mii(&d, &m), 1);
        let u = unroll(&d, 4).unwrap();
        assert_eq!(mii::res_mii(&u, &m), 2);
    }

    #[test]
    fn recurrence_cost_per_original_iteration_is_preserved() {
        let mut b = DdgBuilder::new("acc");
        let acc = b.op(OpClass::FpAdd, "acc");
        b.flow_carried(acc, acc, 1);
        b.trip_count(64);
        let d = b.build().unwrap();
        for k in [2u32, 4, 8] {
            let u = unroll(&d, k).unwrap();
            assert_eq!(mii::rec_mii(&u), k as i64 * mii::rec_mii(&d));
        }
    }

    #[test]
    fn distance_two_recurrences_split_across_copies() {
        // dist-2 self edge at factor 2: copy0→copy0 and copy1→copy1, both
        // distance 1 → two independent accumulator chains (the classic
        // reason unrolling helps reductions).
        let mut b = DdgBuilder::new("acc2");
        let acc = b.op(OpClass::FpAdd, "acc");
        b.flow_carried(acc, acc, 2);
        b.trip_count(64);
        let d = b.build().unwrap();
        assert_eq!(mii::rec_mii(&d), 2); // ceil(3/2)
        let u = unroll(&d, 2).unwrap();
        // Per unrolled iteration: each chain needs lat 3 over distance 1.
        assert_eq!(mii::rec_mii(&u), 3);
    }

    #[test]
    fn unrolled_loops_schedule_and_validate() {
        let d = daxpy_like();
        let m = MachineConfig::two_cluster(32, 1, 1);
        for k in [2u32, 3] {
            let u = unroll(&d, k).unwrap();
            // Sanity: still a valid loop that downstream phases accept.
            assert!(mii::mii(&u, &m) >= 1);
        }
    }
}
