//! Minimum initiation interval bounds: `ResMII`, `RecMII`, `MII`.
//!
//! * `ResMII` — resource bound: with `N_r` operations using resource kind
//!   `r` and `U_r` total units of that kind, at least `⌈N_r / U_r⌉` cycles
//!   per iteration are needed.
//! * `RecMII` — recurrence bound: the smallest II such that the constraint
//!   graph with edge weights `latency − II·distance` has no positive cycle,
//!   found by binary search (see [`gpsched_graph::feasibility`]).
//! * `MII = max(ResMII, RecMII)` — the paper's input to the partitioner.

use crate::ddg::Ddg;
use crate::DepId;
use gpsched_graph::feasibility;
use gpsched_machine::{MachineConfig, ResourceKind};

/// Resource-constrained MII for `ddg` on `machine`, treating the machine's
/// units as one pool (the paper computes the partitioning input MII this
/// way; per-cluster pressure is the partitioner's business).
///
/// # Panics
///
/// Panics if the DDG uses a resource kind of which the machine has zero
/// units.
pub fn res_mii(ddg: &Ddg, machine: &MachineConfig) -> i64 {
    let mut bound = 1i64;
    for kind in ResourceKind::ALL {
        let ops = ddg.ops_using(kind) as i64;
        if ops == 0 {
            continue;
        }
        let units = machine.total_units(kind) as i64;
        assert!(
            units > 0,
            "machine has no {kind} units but the loop needs them"
        );
        bound = bound.max((ops + units - 1) / units);
    }
    bound
}

/// Sentinel resource bound of an infeasible assignment: a cluster with
/// zero units of some kind holds operations of that kind, so no II is
/// achievable there. Large enough to dominate every honest bound (which
/// is at most the op count of a loop), small enough that downstream
/// `II · distance` products in the timing analysis stay far from `i64`
/// overflow.
pub const INFEASIBLE_RES_BOUND: i64 = 1 << 40;

/// Per-cluster resource MII given a cluster assignment: the largest
/// `⌈ops in cluster using r / units of r per cluster⌉` over all clusters
/// and resource kinds. Used by the partitioner's workload-balance check.
///
/// A cluster holding ops of a kind it has zero units of yields
/// [`INFEASIBLE_RES_BOUND`] — the bound is effectively infinite, and
/// refinement uses the huge cost to steer ops out of such clusters
/// (heterogeneous `.machine` files make this state reachable from input,
/// so it must not panic).
///
/// `assignment[op] = cluster index`.
///
/// # Panics
///
/// Panics if an assignment index is out of range.
pub fn res_mii_clustered(ddg: &Ddg, machine: &MachineConfig, assignment: &[usize]) -> i64 {
    let nclusters = machine.cluster_count();
    let mut counts = vec![[0i64; 3]; nclusters];
    for op in ddg.op_ids() {
        let c = assignment[op.index()];
        assert!(c < nclusters, "assignment out of range");
        counts[c][ddg.op(op).class.resource().index()] += 1;
    }
    let mut bound = 1i64;
    for (c, per_kind) in counts.iter().enumerate() {
        for kind in ResourceKind::ALL {
            let ops = per_kind[kind.index()];
            if ops == 0 {
                continue;
            }
            let units = machine.cluster(c).units(kind) as i64;
            if units == 0 {
                return INFEASIBLE_RES_BOUND;
            }
            bound = bound.max((ops + units - 1) / units);
        }
    }
    bound
}

/// Recurrence-constrained MII of the raw DDG.
pub fn rec_mii(ddg: &Ddg) -> i64 {
    rec_mii_with(ddg, |_| 0)
}

/// Recurrence-constrained MII with extra per-edge delays (the partitioner
/// charges the bus latency on cut edges this way).
///
/// # Panics
///
/// Panics if no feasible II exists below `total_latency + max extra`; this
/// cannot happen for a validated [`Ddg`] with non-negative extras, whose
/// distance-0 subgraph is acyclic.
pub fn rec_mii_with(ddg: &Ddg, mut extra: impl FnMut(DepId) -> i64) -> i64 {
    let deps = ddg.constraint_deps(&mut extra);
    let upper: i64 = deps.iter().map(|d| d.2.max(0)).sum::<i64>().max(1);
    feasibility::min_feasible_ii(ddg.op_count(), &deps, 1, upper)
        .expect("validated DDG must have a feasible II")
}

/// `MII = max(ResMII, RecMII)` — the partitioner's input (§3.1).
pub fn mii(ddg: &Ddg, machine: &MachineConfig) -> i64 {
    let _span = gpsched_trace::span!("ddg.mii");
    res_mii(ddg, machine).max(rec_mii(ddg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DdgBuilder;
    use gpsched_machine::OpClass;

    fn machine() -> MachineConfig {
        MachineConfig::unified(32)
    }

    #[test]
    fn res_mii_counts_resource_pressure() {
        let mut b = DdgBuilder::new("t");
        // 9 loads on 4 memory ports → ceil(9/4) = 3.
        for i in 0..9 {
            b.op(OpClass::Load, format!("ld{i}"));
        }
        // 2 int ops on 4 int units → 1.
        b.op(OpClass::IntAlu, "a");
        b.op(OpClass::IntAlu, "b");
        let ddg = b.build().unwrap();
        assert_eq!(res_mii(&ddg, &machine()), 3);
    }

    #[test]
    fn rec_mii_of_simple_recurrence() {
        let mut b = DdgBuilder::new("t");
        let acc = b.op(OpClass::FpAdd, "acc");
        b.flow_carried(acc, acc, 1); // lat 3 / dist 1
        let ddg = b.build().unwrap();
        assert_eq!(rec_mii(&ddg), 3);
    }

    #[test]
    fn rec_mii_distance_two_halves_bound() {
        let mut b = DdgBuilder::new("t");
        let acc = b.op(OpClass::FpAdd, "acc");
        b.flow_carried(acc, acc, 2); // lat 3 / dist 2 → ceil(3/2) = 2
        let ddg = b.build().unwrap();
        assert_eq!(rec_mii(&ddg), 2);
    }

    #[test]
    fn rec_mii_acyclic_is_one() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::Load, "a");
        let c = b.op(OpClass::FpMul, "c");
        b.flow(a, c);
        let ddg = b.build().unwrap();
        assert_eq!(rec_mii(&ddg), 1);
    }

    #[test]
    fn extra_delay_raises_rec_mii() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        let fwd = b.flow(a, c); // lat 1
        b.flow_carried(c, a, 1); // lat 1: cycle lat 2, dist 1 → RecMII 2
        let ddg = b.build().unwrap();
        assert_eq!(rec_mii(&ddg), 2);
        // Charging 2 extra cycles (bus) on the forward edge → RecMII 4.
        assert_eq!(rec_mii_with(&ddg, |e| if e == fwd { 2 } else { 0 }), 4);
    }

    #[test]
    fn mii_takes_max_of_bounds() {
        let mut b = DdgBuilder::new("t");
        let acc = b.op(OpClass::FpAdd, "acc");
        b.flow_carried(acc, acc, 1); // RecMII 3
        for i in 0..17 {
            b.op(OpClass::Load, format!("ld{i}")); // ResMII ceil(17/4)=5
        }
        let ddg = b.build().unwrap();
        let m = machine();
        assert_eq!(res_mii(&ddg, &m), 5);
        assert_eq!(rec_mii(&ddg), 3);
        assert_eq!(mii(&ddg, &m), 5);
    }

    #[test]
    fn clustered_res_mii_sees_imbalance() {
        let m = MachineConfig::two_cluster(32, 1, 1); // 2 mem ports/cluster
        let mut b = DdgBuilder::new("t");
        for i in 0..8 {
            b.op(OpClass::Load, format!("ld{i}"));
        }
        let ddg = b.build().unwrap();
        // All 8 loads in cluster 0: ceil(8/2) = 4.
        assert_eq!(res_mii_clustered(&ddg, &m, &[0; 8]), 4);
        // Balanced: ceil(4/2) = 2.
        let balanced: Vec<usize> = (0..8).map(|i| i % 2).collect();
        assert_eq!(res_mii_clustered(&ddg, &m, &balanced), 2);
    }
}
