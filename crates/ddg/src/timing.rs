//! Timing analysis under a candidate initiation interval.
//!
//! Produces the quantities the partitioner's edge-weight metric needs
//! (§3.2.1 of the paper): ASAP/ALAP times over the modulo constraint system,
//! per-edge *slack* ("delay cycles that could be added to this edge without
//! affecting execution time"), and the intra-iteration longest path
//! `max_path` (the schedule-length estimate used in the execution-time
//! model `T = (niter−1)·II + max_path`).

use crate::ddg::Ddg;
use crate::dep::Dep;
use crate::DepId;
use gpsched_graph::feasibility::BfKernel;
use gpsched_graph::NodeId;

/// Result of [`analyze`].
#[derive(Clone, Debug, Default)]
pub struct Timing {
    /// The initiation interval this analysis assumed.
    pub ii: i64,
    /// Earliest start time of each op (longest path in the constraint
    /// system with weights `lat + extra − II·dist`).
    pub asap: Vec<i64>,
    /// Latest start time of each op such that the overall span does not
    /// grow.
    pub alap: Vec<i64>,
    /// Slack of each dependence: `alap[dst] − asap[src] − w(e)` (≥ 0).
    pub edge_slack: Vec<i64>,
    /// Maximum slack over all edges (the paper's `maxsl`).
    pub max_slack: i64,
    /// Earliest start within one iteration: longest distance-0 path into
    /// each op (edge length `lat + extra`).
    pub start: Vec<i64>,
    /// Completion-inclusive tail: `tail[v] = max(lat(v), max over dist-0
    /// out-edges (len + tail[dst]))`. `start[v] + tail[v] ≤ max_path`.
    pub tail: Vec<i64>,
    /// Schedule-length estimate of one iteration:
    /// `max over ops of (start + op latency)`.
    pub max_path: i64,
}

/// Analyzes `ddg` at initiation interval `ii`, charging `extra(e)`
/// additional delay cycles on each dependence (pass `|_| 0` for the raw
/// graph; the partitioner passes the bus latency for cut edges).
///
/// Returns `None` when `ii` is below the recurrence bound of the delayed
/// graph (the constraint system has a positive cycle).
///
/// # Example
///
/// ```
/// use gpsched_ddg::{timing, DdgBuilder};
/// use gpsched_machine::OpClass;
///
/// let mut b = DdgBuilder::new("t");
/// let ld = b.op(OpClass::Load, "ld");
/// let ml = b.op(OpClass::FpMul, "ml");
/// b.flow(ld, ml);
/// let ddg = b.build()?;
/// let t = timing::analyze(&ddg, 1, |_| 0).unwrap();
/// assert_eq!(t.asap, vec![0, 2]);       // mul waits for the load
/// assert_eq!(t.max_path, 5);            // 2 (load) + 3 (mul completes)
/// # Ok::<(), gpsched_ddg::DdgError>(())
/// ```
pub fn analyze(ddg: &Ddg, ii: i64, extra: impl FnMut(DepId) -> i64) -> Option<Timing> {
    let mut ws = TimingWorkspace::new();
    ws.analyze(ddg, ii, extra).cloned()
}

/// Reusable scratch for [`analyze`]-equivalent computations.
///
/// The partitioner's refinement loop runs a timing analysis per candidate
/// move; the from-scratch [`analyze`] allocates ~8 vectors and re-derives a
/// topological order every call. A workspace hoists all of that: the DDG's
/// shape (constraint tuples, distance-0 topological order, op latencies) is
/// computed once by [`TimingWorkspace::prepare`], and every buffer of the
/// analysis itself is reused, so the steady state allocates nothing.
///
/// A workspace is bound to the DDG most recently passed to `prepare` (or
/// to the first `analyze` call), identified by address plus shape
/// (op/dep counts); analyzing a *different* DDG re-prepares
/// automatically. The shape check backstops address reuse — a fresh DDG
/// allocated where a dropped one lived would otherwise alias the
/// binding — but it cannot tell apart two same-shaped graphs at the same
/// address: callers cycling through short-lived DDGs of one shape must
/// call `prepare` per graph (or keep the graphs alive).
///
/// # Example
///
/// ```
/// use gpsched_ddg::{timing, DdgBuilder};
/// use gpsched_machine::OpClass;
///
/// let mut b = DdgBuilder::new("t");
/// let ld = b.op(OpClass::Load, "ld");
/// let ml = b.op(OpClass::FpMul, "ml");
/// b.flow(ld, ml);
/// let ddg = b.build()?;
/// let mut ws = timing::TimingWorkspace::new();
/// let t = ws.analyze(&ddg, 1, |_| 0).unwrap();
/// assert_eq!(t.max_path, 5);
/// // Second call reuses every buffer.
/// assert!(ws.analyze(&ddg, 2, |_| 0).is_some());
/// # Ok::<(), gpsched_ddg::DdgError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct TimingWorkspace {
    /// Address of the DDG the cached shape was prepared from (0 = none).
    /// Address identity is what the incremental evaluator uses too; it
    /// makes the re-prepare check exact for any live DDG.
    bound: usize,
    nops: usize,
    ndeps: usize,
    /// Per-dep `(src, dst, latency, distance)` in dep-id order.
    shape: Vec<(u32, u32, i64, i64)>,
    /// Topological order of the distance-0 sub-DAG.
    topo0: Vec<NodeId>,
    /// Prepared forward constraint-graph kernel (asap solves). Bases are
    /// `lat + extra`; the II term is applied inside the kernel, so probing
    /// a new II rebuilds nothing.
    fwd_kernel: BfKernel,
    /// The same for the reversed constraint graph (alap via out-lengths).
    rev_kernel: BfKernel,
    /// The kernels' bases currently carry a nonzero extra (so the next
    /// zero-extra analysis must reset them).
    extras_applied: bool,
    /// Per-dep extras currently applied to the kernels' bases. Successive
    /// refinement probes differ on a handful of edges (the candidate
    /// move's incident deps), so analyses patch the difference instead of
    /// rewriting every base.
    applied: Vec<i64>,
    /// Per-op latency.
    op_lat: Vec<i64>,
    /// Per-dep extra delay of the current analysis.
    extras: Vec<i64>,
    out_len: Vec<i64>,
    prepared: bool,
    /// The most recent `analyze` call completed successfully, so `timing`
    /// is coherent and `last()` may serve it.
    analyzed: bool,
    /// The ALAP/slack half of the most recent successful analysis has been
    /// computed (false after [`TimingWorkspace::analyze_exec`] until
    /// [`TimingWorkspace::complete_slack`] runs).
    slack_done: bool,
    timing: Timing,
    /// Batched `ddg.timing.*` tallies, flushed when the workspace drops.
    /// The refinement screen runs one analysis per candidate move, so a
    /// per-call atomic increment here was a measurable share of
    /// enabled-tracing overhead.
    stats: TimingStats,
}

/// Batched `ddg.timing.*` tallies (see [`gpsched_trace::BatchCounter`]:
/// clones start at zero, drop flushes).
#[derive(Clone, Debug)]
struct TimingStats {
    prepares: gpsched_trace::BatchCounter,
    analyses: gpsched_trace::BatchCounter,
    infeasible: gpsched_trace::BatchCounter,
}

impl Default for TimingStats {
    fn default() -> Self {
        TimingStats {
            prepares: gpsched_trace::BatchCounter::new("ddg.timing.prepares"),
            analyses: gpsched_trace::BatchCounter::new("ddg.timing.analyses"),
            infeasible: gpsched_trace::BatchCounter::new("ddg.timing.infeasible"),
        }
    }
}

impl TimingWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        TimingWorkspace::default()
    }

    /// Rebuilds the cached DDG shape (constraint tuples, distance-0
    /// topological order, op latencies). [`TimingWorkspace::analyze`]
    /// calls this automatically whenever it is handed a DDG other than
    /// the one currently bound.
    pub fn prepare(&mut self, ddg: &Ddg) {
        let _span = gpsched_trace::span!("ddg.timing.prepare");
        self.stats.prepares.add(1);
        self.bound = ddg as *const Ddg as usize;
        self.nops = ddg.op_count();
        self.ndeps = ddg.dep_count();
        self.shape.clear();
        self.shape.extend(ddg.dep_ids().map(|e| {
            let (s, d) = ddg.dep_endpoints(e);
            let dep = ddg.dep(e);
            (
                s.index() as u32,
                d.index() as u32,
                dep.latency as i64,
                dep.distance as i64,
            )
        }));
        self.topo0 = gpsched_graph::topo::topo_order(ddg.graph(), |_, dep: &Dep| dep.distance == 0)
            .expect("distance-0 subgraph is acyclic by construction");
        // Prepared CSR kernels for both directions; built once here,
        // reused by every II probe until the workspace rebinds.
        let fwd: Vec<(usize, usize, i64, i64)> = self
            .shape
            .iter()
            .map(|&(s, d, lat, dist)| (s as usize, d as usize, lat, dist))
            .collect();
        self.fwd_kernel = BfKernel::build(self.nops, &fwd);
        let rev: Vec<(usize, usize, i64, i64)> = self
            .shape
            .iter()
            .map(|&(s, d, lat, dist)| (d as usize, s as usize, lat, dist))
            .collect();
        self.rev_kernel = BfKernel::build(self.nops, &rev);
        self.extras_applied = false;
        self.applied.clear();
        self.applied.resize(self.ndeps, 0);
        self.op_lat.clear();
        self.op_lat
            .extend(ddg.op_ids().map(|v| ddg.op(v).latency as i64));
        self.prepared = true;
    }

    /// Workspace-backed equivalent of [`analyze`]: identical results, no
    /// steady-state allocation. Returns `None` when `ii` is infeasible; the
    /// internal buffers then hold partial data and the next call overwrites
    /// them.
    pub fn analyze(
        &mut self,
        ddg: &Ddg,
        ii: i64,
        extra: impl FnMut(DepId) -> i64,
    ) -> Option<&Timing> {
        self.analyze_exec(ddg, ii, extra)?;
        self.complete_slack();
        Some(&self.timing)
    }

    /// The forward half of [`TimingWorkspace::analyze`]: feasibility, ASAP
    /// times and the `max_path` estimate — everything the execution-time
    /// model `T = (niter−1)·II + max_path` consumes — without the reverse
    /// constraint solve. On success, `asap`, `start`, `tail`, `max_path`
    /// and `ii` of the returned [`Timing`] are valid; `alap`, `edge_slack`
    /// and `max_slack` are **unspecified** until
    /// [`TimingWorkspace::complete_slack`] runs.
    ///
    /// The partitioner's candidate screen lives on this split: most
    /// candidates are rejected on execution time alone, and only the
    /// survivors pay for the reverse solve that the slack tiebreak needs.
    pub fn analyze_exec(
        &mut self,
        ddg: &Ddg,
        ii: i64,
        mut extra: impl FnMut(DepId) -> i64,
    ) -> Option<&Timing> {
        // Rebind on a different address *or* a different shape: a DDG
        // allocated where a dropped one used to live aliases the address
        // check, so the shape comparison (O(1)) backstops it. Callers
        // cycling through many same-shaped short-lived DDGs must call
        // `prepare` explicitly (or keep the DDGs alive).
        if !self.prepared
            || self.bound != ddg as *const Ddg as usize
            || self.nops != ddg.op_count()
            || self.ndeps != ddg.dep_count()
        {
            self.prepare(ddg);
        }
        // Counted, not spanned: a refinement pass runs one analysis per
        // candidate move, so a span here would swamp the trace buffers.
        self.stats.analyses.add(1);
        // A failed probe leaves `timing` partially overwritten; it only
        // becomes readable through `last()` again once a probe succeeds.
        self.analyzed = false;
        let n = self.nops;

        let mut any_extra = false;
        self.extras.clear();
        self.extras.extend(ddg.dep_ids().map(|e| {
            let x = extra(e);
            any_extra |= x != 0;
            x
        }));

        // Modulo constraint system: w(e) = lat + extra − II·dist. The
        // prepared kernels hold `lat` and `dist` already; only a nonzero
        // extra (or clearing a previous one) touches the bases, so the
        // common zero-extra probe re-solves with no rebuild at all, and
        // successive nonzero probes patch only the deps whose extra moved
        // (a candidate move's incident edges, not the whole graph).
        if any_extra || self.extras_applied {
            for d in 0..self.ndeps {
                let delta = self.extras[d] - self.applied[d];
                if delta != 0 {
                    self.fwd_kernel.add_extra(d, delta);
                    self.rev_kernel.add_extra(d, delta);
                    self.applied[d] = self.extras[d];
                }
            }
            self.extras_applied = any_extra;
        }
        if !self.fwd_kernel.solve(ii, &mut self.timing.asap) {
            self.stats.infeasible.add(1);
            return None;
        }

        // Intra-iteration longest paths (distance-0 sub-DAG), edge length
        // lat + extra. Acyclic by Ddg validation even before extras.
        let graph = ddg.graph();
        self.timing.start.clear();
        self.timing.start.resize(n, 0);
        for &v in &self.topo0 {
            for (e, w) in graph.out_edges(v) {
                let dep = graph.edge_weight(e);
                if dep.distance == 0 {
                    let cand =
                        self.timing.start[v.index()] + dep.latency as i64 + self.extras[e.index()];
                    if cand > self.timing.start[w.index()] {
                        self.timing.start[w.index()] = cand;
                    }
                }
            }
        }

        // tail[v] = max(lat(v), max over dist-0 out-edges (len + tail[dst])):
        // the completion-inclusive longest path out of v, in reverse
        // topological order of the dist-0 DAG.
        self.timing.tail.clear();
        self.timing.tail.extend_from_slice(&self.op_lat);
        for &v in self.topo0.iter().rev() {
            for (e, w) in graph.out_edges(v) {
                let dep = graph.edge_weight(e);
                if dep.distance == 0 {
                    let cand =
                        dep.latency as i64 + self.extras[e.index()] + self.timing.tail[w.index()];
                    if cand > self.timing.tail[v.index()] {
                        self.timing.tail[v.index()] = cand;
                    }
                }
            }
        }
        let start = &self.timing.start;
        let tail = &self.timing.tail;
        self.timing.max_path = (0..n).map(|v| start[v] + tail[v]).max().unwrap_or(0).max(0);
        self.timing.ii = ii;
        self.analyzed = true;
        self.slack_done = false;
        Some(&self.timing)
    }

    /// Completes the ALAP/slack half of the most recent successful
    /// [`TimingWorkspace::analyze_exec`]: the reverse constraint solve,
    /// `alap`, `edge_slack` and `max_slack`. Idempotent — a second call
    /// (or one after a full [`TimingWorkspace::analyze`]) is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if no forward analysis has succeeded yet. The reverse system
    /// shares its cycles with the forward one, so its solve cannot fail
    /// when the forward solve succeeded (asserted).
    pub fn complete_slack(&mut self) {
        assert!(self.analyzed, "no successful forward analysis to complete");
        if self.slack_done {
            return;
        }
        let ii = self.timing.ii;
        let feasible = self.rev_kernel.solve(ii, &mut self.out_len);
        assert!(
            feasible,
            "reverse constraint system disagrees with the forward one"
        );
        let n = self.nops;
        let span = self.timing.asap.iter().copied().max().unwrap_or(0);
        self.timing.alap.clear();
        let out_len = &self.out_len;
        self.timing.alap.extend((0..n).map(|v| span - out_len[v]));

        // Slack stays in dep-id order (`fwd` is permuted), so recompute the
        // weight from the shape here.
        self.timing.edge_slack.clear();
        self.timing.max_slack = 0;
        for (i, &(s, d, lat, dist)) in self.shape.iter().enumerate() {
            let w = lat + self.extras[i] - ii * dist;
            let slack = self.timing.alap[d as usize] - self.timing.asap[s as usize] - w;
            self.timing.edge_slack.push(slack);
            self.timing.max_slack = self.timing.max_slack.max(slack);
        }
        self.slack_done = true;
    }

    /// The result of the most recent *successful* [`TimingWorkspace::analyze`]
    /// call. The II-probing loops use this to read the feasible analysis
    /// after the probe succeeds without re-borrowing through `analyze`.
    ///
    /// # Panics
    ///
    /// Panics if no analysis has succeeded yet, or if the most recent one
    /// failed (its buffers hold partial data).
    pub fn last(&self) -> &Timing {
        assert!(self.analyzed, "no successful analysis to read");
        &self.timing
    }
}

impl Timing {
    /// Schedule-length estimate when `delta` extra cycles are charged on the
    /// distance-0 dependence `e = (src, dst)` with base length `len`
    /// (latency + already-applied extra), without recomputing the analysis:
    /// `max(max_path, start[src] + len + delta + tail[dst])`.
    pub fn max_path_with_delay(&self, src: usize, dst: usize, len: i64, delta: i64) -> i64 {
        self.max_path
            .max(self.start[src] + len + delta + self.tail[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DdgBuilder;
    use gpsched_machine::OpClass;

    #[test]
    fn chain_asap_alap_and_slack() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld"); // lat 2
        let ml = b.op(OpClass::FpMul, "ml"); // lat 3
        let st = b.op(OpClass::Store, "st");
        let e1 = b.flow(ld, ml);
        let e2 = b.flow(ml, st);
        let ddg = b.build().unwrap();
        let t = analyze(&ddg, 1, |_| 0).unwrap();
        assert_eq!(t.asap, vec![0, 2, 5]);
        assert_eq!(t.alap, vec![0, 2, 5]); // critical chain: no slack
        assert_eq!(t.edge_slack[e1.index()], 0);
        assert_eq!(t.edge_slack[e2.index()], 0);
        assert_eq!(t.max_slack, 0);
        assert_eq!(t.max_path, 6); // store completes at 5 + 1
    }

    #[test]
    fn side_branch_has_slack() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld"); // lat 2
        let dv = b.op(OpClass::FpDiv, "dv"); // lat 8
        let ad = b.op(OpClass::IntAlu, "ad"); // lat 1
        let st = b.op(OpClass::Store, "st");
        b.flow(ld, dv);
        let cheap = b.flow(ld, ad);
        b.flow(dv, st);
        let join = b.flow(ad, st);
        let ddg = b.build().unwrap();
        let t = analyze(&ddg, 1, |_| 0).unwrap();
        // Critical: ld(2) → dv(8) → st: asap[st] = 10.
        assert_eq!(t.asap[st.index()], 10);
        // The int branch can slide: each of its edges could absorb the
        // whole 7-cycle gap alone (ld→dv→st is 10, ld→ad→st is 3).
        assert_eq!(t.edge_slack[cheap.index()], 7);
        assert_eq!(t.edge_slack[join.index()], 7);
        assert_eq!(t.max_slack, 7);
    }

    #[test]
    fn infeasible_ii_returns_none() {
        let mut b = DdgBuilder::new("t");
        let acc = b.op(OpClass::FpAdd, "acc"); // lat 3
        b.flow_carried(acc, acc, 1);
        let ddg = b.build().unwrap();
        assert!(analyze(&ddg, 2, |_| 0).is_none());
        assert!(analyze(&ddg, 3, |_| 0).is_some());
    }

    #[test]
    fn carried_edges_do_not_stretch_max_path() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        b.flow(a, c);
        b.flow_carried(c, a, 1);
        let ddg = b.build().unwrap();
        let t = analyze(&ddg, 2, |_| 0).unwrap();
        assert_eq!(t.max_path, 2); // a starts 0, c starts 1, completes at 2
    }

    #[test]
    fn extra_delay_shifts_downstream() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        let e = b.flow(a, c);
        let ddg = b.build().unwrap();
        let t0 = analyze(&ddg, 1, |_| 0).unwrap();
        assert_eq!(t0.asap[c.index()], 1);
        assert_eq!(t0.max_path, 2);
        let t1 = analyze(&ddg, 1, |id| if id == e { 2 } else { 0 }).unwrap();
        assert_eq!(t1.asap[c.index()], 3);
        assert_eq!(t1.max_path, 4);
        // The incremental estimator agrees with the recomputation.
        assert_eq!(
            t0.max_path_with_delay(a.index(), c.index(), 1, 2),
            t1.max_path
        );
    }

    #[test]
    fn workspace_matches_from_scratch() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld");
        let dv = b.op(OpClass::FpDiv, "dv");
        let ad = b.op(OpClass::IntAlu, "ad");
        let st = b.op(OpClass::Store, "st");
        let e0 = b.flow(ld, dv);
        b.flow(ld, ad);
        b.flow(dv, st);
        b.flow(ad, st);
        b.flow_carried(ad, ld, 1);
        b.mem(st, ld, 1);
        let ddg = b.build().unwrap();
        let mut ws = TimingWorkspace::new();
        for ii in 1..=4 {
            for bus in [0i64, 2] {
                let extra = |e: DepId| if e == e0 { bus } else { 0 };
                let a = analyze(&ddg, ii, extra);
                let w = ws.analyze(&ddg, ii, extra).cloned();
                match (a, w) {
                    (None, None) => {}
                    (Some(a), Some(w)) => {
                        assert_eq!(a.ii, w.ii);
                        assert_eq!(a.asap, w.asap);
                        assert_eq!(a.alap, w.alap);
                        assert_eq!(a.edge_slack, w.edge_slack);
                        assert_eq!(a.max_slack, w.max_slack);
                        assert_eq!(a.start, w.start);
                        assert_eq!(a.tail, w.tail);
                        assert_eq!(a.max_path, w.max_path);
                    }
                    (a, w) => panic!("feasibility disagrees: {a:?} vs {w:?}"),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "no successful analysis")]
    fn last_panics_after_failed_probe() {
        let mut b = DdgBuilder::new("t");
        let acc = b.op(OpClass::FpAdd, "acc"); // lat 3
        b.flow_carried(acc, acc, 1); // RecMII 3
        let ddg = b.build().unwrap();
        let mut ws = TimingWorkspace::new();
        assert!(ws.analyze(&ddg, 3, |_| 0).is_some());
        // The failed probe invalidates the previous result.
        assert!(ws.analyze(&ddg, 2, |_| 0).is_none());
        ws.last();
    }

    #[test]
    fn workspace_reprepares_for_new_ddg() {
        let mut b = DdgBuilder::new("one");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        b.flow(a, c);
        let small = b.build().unwrap();
        let mut b = DdgBuilder::new("two");
        let ld = b.op(OpClass::Load, "ld");
        let ml = b.op(OpClass::FpMul, "ml");
        let st = b.op(OpClass::Store, "st");
        b.flow(ld, ml);
        b.flow(ml, st);
        let big = b.build().unwrap();

        // Same op/dep counts as `small`, different latencies.
        let mut b = DdgBuilder::new("three");
        let m1 = b.op(OpClass::FpMul, "m1");
        let m2 = b.op(OpClass::FpMul, "m2");
        b.flow(m1, m2);
        let twin = b.build().unwrap();

        let mut ws = TimingWorkspace::new();
        assert_eq!(ws.analyze(&small, 1, |_| 0).unwrap().max_path, 2);
        // Different shape: auto re-prepares.
        assert_eq!(ws.analyze(&big, 1, |_| 0).unwrap().max_path, 2 + 3 + 1);
        // Same-shaped but different DDG: the address binding re-prepares
        // too — no explicit prepare needed.
        assert_eq!(ws.analyze(&small, 1, |_| 0).unwrap().max_path, 2);
        assert_eq!(ws.analyze(&twin, 1, |_| 0).unwrap().max_path, 3 + 3);
    }

    #[test]
    fn start_and_tail_compose_to_max_path() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld");
        let m1 = b.op(OpClass::FpMul, "m1");
        let m2 = b.op(OpClass::FpMul, "m2");
        b.flow(ld, m1);
        b.flow(m1, m2);
        let ddg = b.build().unwrap();
        let t = analyze(&ddg, 1, |_| 0).unwrap();
        for v in 0..ddg.op_count() {
            assert!(t.start[v] + t.tail[v] <= t.max_path);
        }
        assert_eq!(t.max_path, 2 + 3 + 3);
    }
}
