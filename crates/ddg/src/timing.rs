//! Timing analysis under a candidate initiation interval.
//!
//! Produces the quantities the partitioner's edge-weight metric needs
//! (§3.2.1 of the paper): ASAP/ALAP times over the modulo constraint system,
//! per-edge *slack* ("delay cycles that could be added to this edge without
//! affecting execution time"), and the intra-iteration longest path
//! `max_path` (the schedule-length estimate used in the execution-time
//! model `T = (niter−1)·II + max_path`).

use crate::ddg::Ddg;
use crate::dep::Dep;
use crate::DepId;
use gpsched_graph::feasibility::longest_from_all_sources;
use gpsched_graph::longest_path::potentials;

/// Result of [`analyze`].
#[derive(Clone, Debug)]
pub struct Timing {
    /// The initiation interval this analysis assumed.
    pub ii: i64,
    /// Earliest start time of each op (longest path in the constraint
    /// system with weights `lat + extra − II·dist`).
    pub asap: Vec<i64>,
    /// Latest start time of each op such that the overall span does not
    /// grow.
    pub alap: Vec<i64>,
    /// Slack of each dependence: `alap[dst] − asap[src] − w(e)` (≥ 0).
    pub edge_slack: Vec<i64>,
    /// Maximum slack over all edges (the paper's `maxsl`).
    pub max_slack: i64,
    /// Earliest start within one iteration: longest distance-0 path into
    /// each op (edge length `lat + extra`).
    pub start: Vec<i64>,
    /// Completion-inclusive tail: `tail[v] = max(lat(v), max over dist-0
    /// out-edges (len + tail[dst]))`. `start[v] + tail[v] ≤ max_path`.
    pub tail: Vec<i64>,
    /// Schedule-length estimate of one iteration:
    /// `max over ops of (start + op latency)`.
    pub max_path: i64,
}

/// Analyzes `ddg` at initiation interval `ii`, charging `extra(e)`
/// additional delay cycles on each dependence (pass `|_| 0` for the raw
/// graph; the partitioner passes the bus latency for cut edges).
///
/// Returns `None` when `ii` is below the recurrence bound of the delayed
/// graph (the constraint system has a positive cycle).
///
/// # Example
///
/// ```
/// use gpsched_ddg::{timing, DdgBuilder};
/// use gpsched_machine::OpClass;
///
/// let mut b = DdgBuilder::new("t");
/// let ld = b.op(OpClass::Load, "ld");
/// let ml = b.op(OpClass::FpMul, "ml");
/// b.flow(ld, ml);
/// let ddg = b.build()?;
/// let t = timing::analyze(&ddg, 1, |_| 0).unwrap();
/// assert_eq!(t.asap, vec![0, 2]);       // mul waits for the load
/// assert_eq!(t.max_path, 5);            // 2 (load) + 3 (mul completes)
/// # Ok::<(), gpsched_ddg::DdgError>(())
/// ```
pub fn analyze(ddg: &Ddg, ii: i64, mut extra: impl FnMut(DepId) -> i64) -> Option<Timing> {
    let n = ddg.op_count();
    let graph = ddg.graph();

    let mut extras = vec![0i64; ddg.dep_count()];
    for e in ddg.dep_ids() {
        extras[e.index()] = extra(e);
    }

    // Modulo constraint system: w(e) = lat + extra − II·dist.
    let fwd: Vec<(usize, usize, i64)> = ddg
        .dep_ids()
        .map(|e| {
            let (s, d) = ddg.dep_endpoints(e);
            let dep = ddg.dep(e);
            (
                s.index(),
                d.index(),
                dep.latency as i64 + extras[e.index()] - ii * dep.distance as i64,
            )
        })
        .collect();
    let asap = longest_from_all_sources(n, &fwd)?;
    let rev: Vec<(usize, usize, i64)> = fwd.iter().map(|&(s, d, w)| (d, s, w)).collect();
    let out_len = longest_from_all_sources(n, &rev)?;
    let span = asap.iter().copied().max().unwrap_or(0);
    let alap: Vec<i64> = (0..n).map(|v| span - out_len[v]).collect();

    let mut edge_slack = vec![0i64; ddg.dep_count()];
    let mut max_slack = 0i64;
    for (e, &(s, d, w)) in ddg.dep_ids().zip(fwd.iter()) {
        let _ = e;
        let slack = alap[d] - asap[s] - w;
        edge_slack[e.index()] = slack;
        max_slack = max_slack.max(slack);
    }

    // Intra-iteration longest paths (distance-0 sub-DAG), edge length
    // lat + extra. Acyclic by Ddg validation even before extras.
    let pots = potentials(
        graph,
        |_, dep: &Dep| dep.distance == 0,
        |e, dep| dep.latency as i64 + extras[e.index()],
    )
    .expect("distance-0 subgraph is acyclic by construction");
    let start = pots.from_source.clone();

    let op_lat = |v: usize| {
        ddg.graph()
            .node_weight(gpsched_graph::NodeId::from_index(v))
            .latency as i64
    };
    // tail[v] = max(lat(v), max over dist-0 out-edges (len + tail[dst])):
    // the completion-inclusive longest path out of v.
    let mut tail: Vec<i64> = (0..n).map(op_lat).collect();
    // Process nodes in reverse topological order of the dist-0 DAG.
    let order = gpsched_graph::topo::topo_order(graph, |_, dep: &Dep| dep.distance == 0)
        .expect("distance-0 subgraph is acyclic by construction");
    for &v in order.iter().rev() {
        for (e, w) in graph.out_edges(v) {
            if graph.edge_weight(e).distance == 0 {
                let cand =
                    graph.edge_weight(e).latency as i64 + extras[e.index()] + tail[w.index()];
                if cand > tail[v.index()] {
                    tail[v.index()] = cand;
                }
            }
        }
    }
    let max_path = (0..n).map(|v| start[v] + tail[v]).max().unwrap_or(0).max(0);

    Some(Timing {
        ii,
        asap,
        alap,
        edge_slack,
        max_slack,
        start,
        tail,
        max_path,
    })
}

impl Timing {
    /// Schedule-length estimate when `delta` extra cycles are charged on the
    /// distance-0 dependence `e = (src, dst)` with base length `len`
    /// (latency + already-applied extra), without recomputing the analysis:
    /// `max(max_path, start[src] + len + delta + tail[dst])`.
    pub fn max_path_with_delay(&self, src: usize, dst: usize, len: i64, delta: i64) -> i64 {
        self.max_path
            .max(self.start[src] + len + delta + self.tail[dst])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DdgBuilder;
    use gpsched_machine::OpClass;

    #[test]
    fn chain_asap_alap_and_slack() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld"); // lat 2
        let ml = b.op(OpClass::FpMul, "ml"); // lat 3
        let st = b.op(OpClass::Store, "st");
        let e1 = b.flow(ld, ml);
        let e2 = b.flow(ml, st);
        let ddg = b.build().unwrap();
        let t = analyze(&ddg, 1, |_| 0).unwrap();
        assert_eq!(t.asap, vec![0, 2, 5]);
        assert_eq!(t.alap, vec![0, 2, 5]); // critical chain: no slack
        assert_eq!(t.edge_slack[e1.index()], 0);
        assert_eq!(t.edge_slack[e2.index()], 0);
        assert_eq!(t.max_slack, 0);
        assert_eq!(t.max_path, 6); // store completes at 5 + 1
    }

    #[test]
    fn side_branch_has_slack() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld"); // lat 2
        let dv = b.op(OpClass::FpDiv, "dv"); // lat 8
        let ad = b.op(OpClass::IntAlu, "ad"); // lat 1
        let st = b.op(OpClass::Store, "st");
        b.flow(ld, dv);
        let cheap = b.flow(ld, ad);
        b.flow(dv, st);
        let join = b.flow(ad, st);
        let ddg = b.build().unwrap();
        let t = analyze(&ddg, 1, |_| 0).unwrap();
        // Critical: ld(2) → dv(8) → st: asap[st] = 10.
        assert_eq!(t.asap[st.index()], 10);
        // The int branch can slide: each of its edges could absorb the
        // whole 7-cycle gap alone (ld→dv→st is 10, ld→ad→st is 3).
        assert_eq!(t.edge_slack[cheap.index()], 7);
        assert_eq!(t.edge_slack[join.index()], 7);
        assert_eq!(t.max_slack, 7);
    }

    #[test]
    fn infeasible_ii_returns_none() {
        let mut b = DdgBuilder::new("t");
        let acc = b.op(OpClass::FpAdd, "acc"); // lat 3
        b.flow_carried(acc, acc, 1);
        let ddg = b.build().unwrap();
        assert!(analyze(&ddg, 2, |_| 0).is_none());
        assert!(analyze(&ddg, 3, |_| 0).is_some());
    }

    #[test]
    fn carried_edges_do_not_stretch_max_path() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        b.flow(a, c);
        b.flow_carried(c, a, 1);
        let ddg = b.build().unwrap();
        let t = analyze(&ddg, 2, |_| 0).unwrap();
        assert_eq!(t.max_path, 2); // a starts 0, c starts 1, completes at 2
    }

    #[test]
    fn extra_delay_shifts_downstream() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        let e = b.flow(a, c);
        let ddg = b.build().unwrap();
        let t0 = analyze(&ddg, 1, |_| 0).unwrap();
        assert_eq!(t0.asap[c.index()], 1);
        assert_eq!(t0.max_path, 2);
        let t1 = analyze(&ddg, 1, |id| if id == e { 2 } else { 0 }).unwrap();
        assert_eq!(t1.asap[c.index()], 3);
        assert_eq!(t1.max_path, 4);
        // The incremental estimator agrees with the recomputation.
        assert_eq!(
            t0.max_path_with_delay(a.index(), c.index(), 1, 2),
            t1.max_path
        );
    }

    #[test]
    fn start_and_tail_compose_to_max_path() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld");
        let m1 = b.op(OpClass::FpMul, "m1");
        let m2 = b.op(OpClass::FpMul, "m2");
        b.flow(ld, m1);
        b.flow(m1, m2);
        let ddg = b.build().unwrap();
        let t = analyze(&ddg, 1, |_| 0).unwrap();
        for v in 0..ddg.op_count() {
            assert!(t.start[v] + t.tail[v] <= t.max_path);
        }
        assert_eq!(t.max_path, 2 + 3 + 3);
    }
}
