//! Builder and validation for [`Ddg`].

use crate::ddg::Ddg;
use crate::dep::{Dep, DepKind};
use crate::op::Op;
use crate::OpId;
use gpsched_graph::{topo, DiGraph};
use gpsched_machine::{LatencyModel, OpClass};
use std::error::Error;
use std::fmt;

/// Errors detected when validating a loop DDG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DdgError {
    /// The subgraph of distance-0 dependences contains a cycle; such a loop
    /// can never be scheduled at any II.
    ZeroDistanceCycle,
    /// A flow dependence originates at a store, which produces no register
    /// value.
    FlowFromStore {
        /// The offending source operation's label.
        source: String,
    },
    /// The trip count is zero.
    ZeroTripCount,
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::ZeroDistanceCycle => {
                write!(f, "distance-0 dependence cycle (unschedulable loop)")
            }
            DdgError::FlowFromStore { source } => {
                write!(f, "flow dependence from store `{source}`")
            }
            DdgError::ZeroTripCount => write!(f, "trip count must be at least 1"),
        }
    }
}

impl Error for DdgError {}

/// Incremental builder for a [`Ddg`].
///
/// Flow-dependence latencies are stamped from the producer's class using a
/// [`LatencyModel`] (the default one unless overridden with
/// [`DdgBuilder::latencies`]); memory-ordering dependences default to
/// latency 1 (store visible to the next access one cycle later).
///
/// # Example
///
/// ```
/// use gpsched_ddg::DdgBuilder;
/// use gpsched_machine::OpClass;
///
/// let mut b = DdgBuilder::new("daxpy-ish");
/// let x = b.op(OpClass::Load, "x[i]");
/// let m = b.op(OpClass::FpMul, "a*x");
/// let s = b.op(OpClass::Store, "y[i]");
/// b.flow(x, m);
/// b.flow(m, s);
/// let ddg = b.trip_count(256).build()?;
/// assert_eq!(ddg.op_count(), 3);
/// # Ok::<(), gpsched_ddg::DdgError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DdgBuilder {
    name: String,
    trip_count: u64,
    latencies: LatencyModel,
    graph: DiGraph<Op, Dep>,
}

impl DdgBuilder {
    /// Starts a builder for a loop called `name` (trip count defaults to 1).
    pub fn new(name: impl Into<String>) -> Self {
        DdgBuilder {
            name: name.into(),
            trip_count: 1,
            latencies: LatencyModel::default(),
            graph: DiGraph::new(),
        }
    }

    /// Sets the latency model used to stamp flow-dependence latencies.
    ///
    /// Call before adding dependences; already-added edges keep their
    /// latencies.
    pub fn latencies(&mut self, latencies: LatencyModel) -> &mut Self {
        self.latencies = latencies;
        self
    }

    /// Sets the loop trip count.
    pub fn trip_count(&mut self, n: u64) -> &mut Self {
        self.trip_count = n;
        self
    }

    /// Adds an operation and returns its id. The op's latency is stamped
    /// from the builder's latency model.
    pub fn op(&mut self, class: OpClass, name: impl Into<String>) -> OpId {
        let latency = self.latencies.latency(class);
        self.graph.add_node(Op::with_latency(class, name, latency))
    }

    /// Adds an operation with an explicit result latency, bypassing the
    /// builder's latency model (used by the `.ddg` interchange parser,
    /// which must reproduce stored latencies exactly).
    pub fn op_with_latency(
        &mut self,
        class: OpClass,
        name: impl Into<String>,
        latency: u32,
    ) -> OpId {
        self.graph.add_node(Op::with_latency(class, name, latency))
    }

    /// Adds an intra-iteration flow dependence `src → dst` with the
    /// producer's latency.
    pub fn flow(&mut self, src: OpId, dst: OpId) -> gpsched_graph::EdgeId {
        self.flow_carried(src, dst, 0)
    }

    /// Adds a loop-carried flow dependence with the given distance.
    pub fn flow_carried(&mut self, src: OpId, dst: OpId, distance: u32) -> gpsched_graph::EdgeId {
        let lat = self.graph.node_weight(src).latency;
        self.graph.add_edge(src, dst, Dep::flow(lat, distance))
    }

    /// Adds a memory-ordering dependence (latency 1).
    pub fn mem(&mut self, src: OpId, dst: OpId, distance: u32) -> gpsched_graph::EdgeId {
        self.graph.add_edge(src, dst, Dep::mem(1, distance))
    }

    /// Adds a dependence with an explicit record (escape hatch for custom
    /// latencies).
    pub fn dep(&mut self, src: OpId, dst: OpId, dep: Dep) -> gpsched_graph::EdgeId {
        self.graph.add_edge(src, dst, dep)
    }

    /// Number of operations added so far.
    pub fn op_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Validates and freezes the DDG.
    ///
    /// # Errors
    ///
    /// Returns [`DdgError`] if the distance-0 subgraph is cyclic, a flow
    /// edge leaves a store, or the trip count is 0.
    pub fn build(&self) -> Result<Ddg, DdgError> {
        if self.trip_count == 0 {
            return Err(DdgError::ZeroTripCount);
        }
        for e in self.graph.edge_ids() {
            let dep = self.graph.edge_weight(e);
            if dep.kind == DepKind::Flow {
                let src = self.graph.edge_source(e);
                let op = self.graph.node_weight(src);
                if !op.class.defines_value() {
                    return Err(DdgError::FlowFromStore {
                        source: op.name.clone(),
                    });
                }
            }
        }
        if !topo::is_acyclic(&self.graph, |_, d: &Dep| d.distance == 0) {
            return Err(DdgError::ZeroDistanceCycle);
        }
        Ok(Ddg {
            name: self.name.clone(),
            trip_count: self.trip_count,
            graph: self.graph.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_latency_comes_from_producer_class() {
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld");
        let add = b.op(OpClass::FpAdd, "add");
        let e1 = b.flow(ld, add);
        let e2 = b.flow_carried(add, add, 1);
        let ddg = b.build().unwrap();
        assert_eq!(ddg.dep(e1).latency, 2); // load latency
        assert_eq!(ddg.dep(e2).latency, 3); // fp-add latency
        assert_eq!(ddg.dep(e2).distance, 1);
    }

    #[test]
    fn custom_latency_model() {
        let mut b = DdgBuilder::new("t");
        b.latencies(LatencyModel {
            load: 9,
            ..LatencyModel::default()
        });
        let ld = b.op(OpClass::Load, "ld");
        let use_ = b.op(OpClass::IntAlu, "u");
        let e = b.flow(ld, use_);
        let ddg = b.build().unwrap();
        assert_eq!(ddg.dep(e).latency, 9);
    }

    #[test]
    fn rejects_zero_distance_cycle() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        b.flow(a, c);
        b.flow(c, a);
        assert_eq!(b.build().unwrap_err(), DdgError::ZeroDistanceCycle);
    }

    #[test]
    fn accepts_carried_cycle() {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::IntAlu, "a");
        let c = b.op(OpClass::IntAlu, "c");
        b.flow(a, c);
        b.flow_carried(c, a, 1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_flow_from_store() {
        let mut b = DdgBuilder::new("t");
        let st = b.op(OpClass::Store, "st");
        let a = b.op(OpClass::IntAlu, "a");
        b.flow(st, a);
        assert!(matches!(
            b.build().unwrap_err(),
            DdgError::FlowFromStore { .. }
        ));
    }

    #[test]
    fn mem_edges_from_store_are_fine() {
        let mut b = DdgBuilder::new("t");
        let st = b.op(OpClass::Store, "st");
        let ld = b.op(OpClass::Load, "ld");
        b.mem(st, ld, 1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_zero_trip_count() {
        let mut b = DdgBuilder::new("t");
        b.op(OpClass::IntAlu, "a");
        b.trip_count(0);
        assert_eq!(b.build().unwrap_err(), DdgError::ZeroTripCount);
    }

    #[test]
    fn error_messages_are_lowercase_and_useful() {
        assert!(DdgError::ZeroDistanceCycle.to_string().contains("cycle"));
        let e = DdgError::FlowFromStore {
            source: "st0".into(),
        };
        assert!(e.to_string().contains("st0"));
    }
}
