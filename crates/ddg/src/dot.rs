//! Graphviz export of loop DDGs (debugging aid).

use crate::ddg::Ddg;
use crate::dep::DepKind;

/// Renders `ddg` in Graphviz `dot` syntax.
///
/// Flow dependences are solid, memory-ordering dependences dashed;
/// loop-carried edges are labelled with their distance.
pub fn to_dot(ddg: &Ddg) -> String {
    to_dot_with_partition(ddg, None)
}

/// Renders `ddg` with nodes colored per cluster assignment
/// (`assignment[op] = cluster`).
///
/// # Panics
///
/// Panics if `assignment` is shorter than the number of ops.
pub fn to_dot_with_partition(ddg: &Ddg, assignment: Option<&[usize]>) -> String {
    const PALETTE: [&str; 8] = [
        "lightblue",
        "lightsalmon",
        "palegreen",
        "plum",
        "khaki",
        "lightcyan",
        "mistyrose",
        "lavender",
    ];
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", ddg.name()));
    out.push_str("  node [shape=box, style=filled, fillcolor=white];\n");
    for id in ddg.op_ids() {
        let op = ddg.op(id);
        let color = assignment
            .map(|a| PALETTE[a[id.index()] % PALETTE.len()])
            .unwrap_or("white");
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{} lat={}\", fillcolor={}];\n",
            id.index(),
            op.name,
            op.class,
            op.latency,
            color
        ));
    }
    for e in ddg.dep_ids() {
        let (s, d) = ddg.dep_endpoints(e);
        let dep = ddg.dep(e);
        let style = match dep.kind {
            DepKind::Flow => "solid",
            DepKind::Mem => "dashed",
        };
        let label = if dep.distance > 0 {
            format!(" [style={style}, label=\"d{}\"]", dep.distance)
        } else {
            format!(" [style={style}]")
        };
        out.push_str(&format!("  n{} -> n{}{};\n", s.index(), d.index(), label));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DdgBuilder;
    use gpsched_machine::OpClass;

    fn sample() -> Ddg {
        let mut b = DdgBuilder::new("sample");
        let ld = b.op(OpClass::Load, "ld");
        let ad = b.op(OpClass::FpAdd, "ad");
        let st = b.op(OpClass::Store, "st");
        b.flow(ld, ad);
        b.flow(ad, st);
        b.mem(st, ld, 1);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph \"sample\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed, label=\"d1\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn partition_colors_nodes() {
        let dot = to_dot_with_partition(&sample(), Some(&[0, 1, 0]));
        assert!(dot.contains("fillcolor=lightblue"));
        assert!(dot.contains("fillcolor=lightsalmon"));
    }
}
