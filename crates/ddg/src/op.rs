//! Operations (DDG nodes).

use gpsched_machine::OpClass;
use std::fmt;

/// An operation in a loop body.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Op {
    /// Operation class (determines functional unit and latency).
    pub class: OpClass,
    /// Human-readable label used in dumps and error messages.
    pub name: String,
    /// Result latency in cycles, stamped from the builder's
    /// [`gpsched_machine::LatencyModel`].
    pub latency: u32,
}

impl Op {
    /// Creates an operation with the default latency model's latency for
    /// its class.
    pub fn new(class: OpClass, name: impl Into<String>) -> Self {
        Op {
            class,
            name: name.into(),
            latency: gpsched_machine::LatencyModel::default().latency(class),
        }
    }

    /// Creates an operation with an explicit latency.
    pub fn with_latency(class: OpClass, name: impl Into<String>, latency: u32) -> Self {
        Op {
            class,
            name: name.into(),
            latency,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_class() {
        let op = Op::new(OpClass::FpMul, "t1");
        assert_eq!(op.to_string(), "t1:fmul");
    }

    #[test]
    fn constructor_stores_fields() {
        let op = Op::new(OpClass::Load, String::from("x"));
        assert_eq!(op.class, OpClass::Load);
        assert_eq!(op.name, "x");
    }
}
