//! Simulation audit failures.

use std::error::Error;
use std::fmt;

/// A violated invariant detected while executing a schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// More ops of one kind issued in a (cluster, cycle) than it has units.
    ResourceOverflow {
        /// Cluster index.
        cluster: usize,
        /// Resource description.
        kind: String,
        /// Absolute cycle.
        cycle: u64,
        /// Ops that tried to issue.
        count: u32,
        /// Units available.
        units: u32,
    },
    /// More transfers in flight than buses at some cycle.
    BusOverflow {
        /// Absolute cycle.
        cycle: u64,
        /// Transfers in flight.
        count: u32,
        /// Buses available.
        buses: u32,
    },
    /// A consumer issued before its operand token existed (not produced,
    /// not completed, or not yet delivered to the consumer's cluster).
    DependenceViolation {
        /// Consumer op index.
        consumer: usize,
        /// Producer op index.
        producer: usize,
        /// Iteration of the consumer instance.
        iteration: u64,
        /// Read cycle.
        read: i64,
        /// Cycle the token actually became available.
        available: i64,
    },
    /// Live values exceeded a cluster's register file at some cycle.
    RegisterOverflow {
        /// Cluster index.
        cluster: usize,
        /// Absolute cycle.
        cycle: i64,
        /// Live values observed.
        live: i64,
        /// Registers available.
        registers: i64,
    },
    /// Execution finished at a different cycle than the closed form.
    CycleMismatch {
        /// `(trips − 1)·II + SL`.
        expected: u64,
        /// Observed last completion.
        observed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ResourceOverflow {
                cluster,
                kind,
                cycle,
                count,
                units,
            } => write!(
                f,
                "cluster {cluster} issued {count} {kind} ops at cycle {cycle} with {units} units"
            ),
            SimError::BusOverflow {
                cycle,
                count,
                buses,
            } => write!(f, "{count} transfers in flight at cycle {cycle} with {buses} bus(es)"),
            SimError::DependenceViolation {
                consumer,
                producer,
                iteration,
                read,
                available,
            } => write!(
                f,
                "op {consumer} (iter {iteration}) read op {producer}'s value at {read}, available at {available}"
            ),
            SimError::RegisterOverflow {
                cluster,
                cycle,
                live,
                registers,
            } => write!(
                f,
                "cluster {cluster} held {live} live values at cycle {cycle} with {registers} registers"
            ),
            SimError::CycleMismatch { expected, observed } => {
                write!(f, "expected {expected} cycles, observed {observed}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = SimError::BusOverflow {
            cycle: 7,
            count: 2,
            buses: 1,
        };
        assert!(e.to_string().contains("cycle 7"));
        let d = SimError::DependenceViolation {
            consumer: 3,
            producer: 1,
            iteration: 9,
            read: 12,
            available: 14,
        };
        assert!(d.to_string().contains("iter 9"));
    }
}
