//! Simulation audit failures.

use std::error::Error;
use std::fmt;

/// A violated invariant detected while executing a schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// More ops of one kind issued in a (cluster, cycle) than it has units.
    ResourceOverflow {
        /// Cluster index.
        cluster: usize,
        /// Resource description.
        kind: String,
        /// Absolute cycle.
        cycle: u64,
        /// Ops that tried to issue.
        count: u32,
        /// Units available.
        units: u32,
    },
    /// More hops in flight on an interconnect channel than it has links
    /// at some cycle (the shared bus is channel 0 of a bus topology).
    ChannelOverflow {
        /// Interconnect channel group index.
        channel: usize,
        /// Absolute cycle.
        cycle: u64,
        /// Hops in flight.
        count: u32,
        /// Parallel links of the channel.
        capacity: u32,
    },
    /// A transfer's recorded arrival disagrees with its transport's
    /// timing (route latency for direct transfers, the reload completion
    /// for memory transfers).
    TransferTimingMismatch {
        /// Producing op index.
        producer: usize,
        /// Source cluster.
        from: usize,
        /// Destination cluster.
        to: usize,
        /// Arrival the transport actually delivers.
        expected: i64,
        /// Arrival the schedule recorded.
        recorded: i64,
    },
    /// A consumer issued before its operand token existed (not produced,
    /// not completed, or not yet delivered to the consumer's cluster).
    DependenceViolation {
        /// Consumer op index.
        consumer: usize,
        /// Producer op index.
        producer: usize,
        /// Iteration of the consumer instance.
        iteration: u64,
        /// Read cycle.
        read: i64,
        /// Cycle the token actually became available.
        available: i64,
    },
    /// Live values exceeded a cluster's register file at some cycle.
    RegisterOverflow {
        /// Cluster index.
        cluster: usize,
        /// Absolute cycle.
        cycle: i64,
        /// Live values observed.
        live: i64,
        /// Registers available.
        registers: i64,
    },
    /// Execution finished at a different cycle than the closed form.
    CycleMismatch {
        /// `(trips − 1)·II + SL`.
        expected: u64,
        /// Observed last completion.
        observed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ResourceOverflow {
                cluster,
                kind,
                cycle,
                count,
                units,
            } => write!(
                f,
                "cluster {cluster} issued {count} {kind} ops at cycle {cycle} with {units} units"
            ),
            SimError::ChannelOverflow {
                channel,
                cycle,
                count,
                capacity,
            } => write!(
                f,
                "{count} hops in flight on channel {channel} at cycle {cycle} with {capacity} link(s)"
            ),
            SimError::TransferTimingMismatch {
                producer,
                from,
                to,
                expected,
                recorded,
            } => write!(
                f,
                "transfer of op {producer} ({from}→{to}) records arrival {recorded}, transport delivers at {expected}"
            ),
            SimError::DependenceViolation {
                consumer,
                producer,
                iteration,
                read,
                available,
            } => write!(
                f,
                "op {consumer} (iter {iteration}) read op {producer}'s value at {read}, available at {available}"
            ),
            SimError::RegisterOverflow {
                cluster,
                cycle,
                live,
                registers,
            } => write!(
                f,
                "cluster {cluster} held {live} live values at cycle {cycle} with {registers} registers"
            ),
            SimError::CycleMismatch { expected, observed } => {
                write!(f, "expected {expected} cycles, observed {observed}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = SimError::ChannelOverflow {
            channel: 0,
            cycle: 7,
            count: 2,
            capacity: 1,
        };
        assert!(e.to_string().contains("cycle 7"));
        assert!(e.to_string().contains("channel 0"));
        let d = SimError::DependenceViolation {
            consumer: 3,
            producer: 1,
            iteration: 9,
            read: 12,
            available: 14,
        };
        assert!(d.to_string().contains("iter 9"));
    }
}
