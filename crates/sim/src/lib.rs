//! Cycle-accurate validation of clustered-VLIW modulo schedules.
//!
//! The scheduler crate *constructs* schedules; this crate *executes* them.
//! [`simulate`] expands a [`gpsched_sched::Schedule`] into per-iteration
//! instances (prolog, kernel, epilog) and audits, cycle by cycle:
//!
//! * functional-unit capacity per cluster and cycle (including the memory
//!   slots taken by spill code and memory communications);
//! * bus occupancy of the non-pipelined inter-cluster bus(es);
//! * dataflow: every consumer instance reads a *token* `(producer,
//!   iteration − distance)` that has been produced, completed and — for
//!   cross-cluster reads — delivered before the read cycle;
//! * register pressure: empirical per-cycle live counts against each
//!   cluster's register file;
//! * the closed-form cycle count `(trips − 1)·II + SL` against the last
//!   completion observed in execution.
//!
//! This independent re-derivation is the reproduction's substitute for the
//! authors' in-house toolchain validation (see `DESIGN.md` §2, S7).
//!
//! # Example
//!
//! ```
//! use gpsched_machine::MachineConfig;
//! use gpsched_sched::{schedule_loop, Algorithm};
//! use gpsched_sim::simulate;
//! use gpsched_workloads::kernels;
//!
//! let ddg = kernels::daxpy(100);
//! let machine = MachineConfig::two_cluster(32, 1, 1);
//! let r = schedule_loop(&ddg, &machine, Algorithm::Gp)?;
//! let report = simulate(&ddg, &machine, &r.schedule, 100).expect("valid schedule");
//! assert_eq!(report.cycles, r.schedule.cycles(100));
//! # Ok::<(), gpsched_sched::SchedError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exec;

pub use error::SimError;
pub use exec::{simulate, SimReport};
