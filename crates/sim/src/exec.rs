//! Schedule expansion and cycle-level audits.

use crate::error::SimError;
use gpsched_ddg::{Ddg, DepKind};
use gpsched_machine::{MachineConfig, ResourceKind};
use gpsched_sched::state::CommKind;
use gpsched_sched::Schedule;
use std::collections::HashMap;

/// Outcome of a successful simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Observed execution span in cycles (first issue → last completion).
    pub cycles: u64,
    /// Empirical per-cluster register high-water marks.
    pub max_live: Vec<i64>,
    /// Peak number of hops in flight on any single interconnect channel
    /// in any cycle.
    pub channel_peak: u32,
    /// Operation instances executed.
    pub instances: u64,
}

/// Executes `schedule` for `trips` iterations and audits every invariant.
///
/// # Errors
///
/// The first violated invariant, as a [`SimError`].
///
/// # Panics
///
/// Panics if `trips == 0` or the schedule does not cover every op of `ddg`.
pub fn simulate(
    ddg: &Ddg,
    machine: &MachineConfig,
    schedule: &Schedule,
    trips: u64,
) -> Result<SimReport, SimError> {
    assert!(trips >= 1, "loops run at least once");
    assert_eq!(
        schedule.placements().len(),
        ddg.op_count(),
        "schedule must cover the loop"
    );
    let _span = gpsched_trace::span!("sim.replay", "ii={}", schedule.ii());
    gpsched_trace::counter!("sim.audits");
    let ii = schedule.ii();
    let trips_i = trips as i64;
    let store_lat = machine.latencies.store as i64;
    let load_lat = machine.latencies.load as i64;

    // ---- 1. Functional units and memory ports -------------------------
    // usage[(cluster, kind, cycle)] = issues. Iteration instances repeat
    // with period II, so auditing min(trips, 2·stages + 2) iterations
    // covers every distinct residue pattern (prolog, steady state) and the
    // epilog only removes work.
    let audit_trips = trips_i.min(2 * schedule.stage_count() + 2);
    let mut usage: HashMap<(usize, usize, i64), u32> = HashMap::new();
    let mut issue = |cluster: usize, kind: ResourceKind, t: i64| {
        *usage.entry((cluster, kind.index(), t)).or_insert(0) += 1;
    };
    for k in 0..audit_trips {
        for op in ddg.op_ids() {
            let p = schedule.placements()[op.index()];
            issue(p.cluster, ddg.op(op).class.resource(), p.time + k * ii);
        }
        for t in schedule.transfers() {
            if let CommKind::Memory {
                store,
                load,
                reuses_spill,
            } = t.kind
            {
                if !reuses_spill {
                    issue(t.from, ResourceKind::MemPort, store + k * ii);
                }
                issue(t.to, ResourceKind::MemPort, load + k * ii);
            }
        }
        for s in schedule.spills() {
            issue(s.cluster, ResourceKind::MemPort, s.store + k * ii);
            for l in &s.loads {
                issue(s.cluster, ResourceKind::MemPort, l.time + k * ii);
            }
        }
    }
    for (&(cluster, kind, cycle), &count) in &usage {
        let units = machine
            .cluster(cluster)
            .units(ResourceKind::from_index(kind));
        if count > units {
            return Err(SimError::ResourceOverflow {
                cluster,
                kind: ResourceKind::from_index(kind).to_string(),
                cycle: cycle.max(0) as u64,
                count,
                units,
            });
        }
    }

    // ---- 2. Interconnect channel occupancy and hop timing -------------
    // A transfer's recorded arrival must be what its transport actually
    // delivers — the dataflow check below trusts `arrival`, so a
    // scheduler bug that, say, priced a ring transfer with the
    // reverse-direction latency would otherwise slip past the audit.
    for t in schedule.transfers() {
        let expected = match t.kind {
            CommKind::Direct { start } => start + machine.transfer_latency(t.from, t.to),
            CommKind::Memory { load, .. } => load + load_lat,
        };
        if t.arrival != expected {
            return Err(SimError::TransferTimingMismatch {
                producer: t.producer,
                from: t.from,
                to: t.to,
                expected,
                recorded: t.arrival,
            });
        }
    }
    // Every direct transfer replays its topology route: hop h books its
    // channel for `occupancy` cycles starting `offset` after departure.
    let mut chan: HashMap<(usize, i64), u32> = HashMap::new();
    for k in 0..audit_trips {
        for t in schedule.transfers() {
            if let CommKind::Direct { start } = t.kind {
                for h in machine.route(t.from, t.to) {
                    for j in 0..h.occupancy {
                        *chan
                            .entry((h.channel, start + k * ii + h.offset + j))
                            .or_insert(0) += 1;
                    }
                }
            }
        }
    }
    let mut channel_peak = 0u32;
    for (&(channel, cycle), &count) in &chan {
        channel_peak = channel_peak.max(count);
        let capacity = machine.channel_capacity(channel);
        if count > capacity {
            return Err(SimError::ChannelOverflow {
                channel,
                cycle: cycle.max(0) as u64,
                count,
                capacity,
            });
        }
    }

    // ---- 3. Dataflow tokens --------------------------------------------
    // Consumer instance k of a flow dep (p → c, distance d) reads token
    // (p, k − d). Iterations k < d read loop live-ins (not checked).
    let check_trips = trips_i.min(2 * schedule.stage_count() + 2);
    for e in ddg.dep_ids() {
        let dep = ddg.dep(e);
        let (pid, cid) = ddg.dep_endpoints(e);
        let pp = schedule.placements()[pid.index()];
        let cp = schedule.placements()[cid.index()];
        let d = dep.distance as i64;
        for k in d..check_trips.max(d).min(trips_i) {
            let read = cp.time + k * ii;
            let produced = pp.time + (k - d) * ii + dep.latency as i64;
            let available = match dep.kind {
                DepKind::Mem => produced,
                DepKind::Flow => {
                    if pp.cluster == cp.cluster {
                        produced
                    } else {
                        // Delivered by the earliest transfer that reaches
                        // the consumer's cluster in time.
                        schedule
                            .transfers()
                            .iter()
                            .filter(|t| t.producer == pid.index() && t.to == cp.cluster)
                            .map(|t| t.arrival + (k - d) * ii)
                            .min()
                            .unwrap_or(i64::MAX)
                    }
                }
            };
            if read < available {
                return Err(SimError::DependenceViolation {
                    consumer: cid.index(),
                    producer: pid.index(),
                    iteration: k as u64,
                    read,
                    available,
                });
            }
        }
    }
    // Spill loads must sit between the store and their use.
    for s in schedule.spills() {
        let pp = schedule.placements()[s.producer];
        let def = pp.time + ddg.op(gpsched_graph_node(s.producer)).latency as i64;
        debug_assert!(s.store >= def);
        for l in &s.loads {
            if l.time < s.store + store_lat || l.time + load_lat > l.use_time {
                return Err(SimError::DependenceViolation {
                    consumer: s.producer,
                    producer: s.producer,
                    iteration: 0,
                    read: l.use_time,
                    available: l.time + load_lat,
                });
            }
        }
    }

    // ---- 4. Register pressure ------------------------------------------
    // Empirical live counting over the whole execution.
    let mut intervals: Vec<(usize, i64, i64)> = Vec::new();
    for op in ddg.op_ids() {
        if !ddg.op(op).class.defines_value() {
            continue;
        }
        let p = schedule.placements()[op.index()];
        let spill = schedule.spills().iter().find(|s| s.producer == op.index());
        for k in 0..trips_i {
            let def = p.time + k * ii + ddg.op(op).latency as i64;
            // Same-cluster reads by consumer instances that exist.
            let mut last = def;
            for (e, c) in ddg.graph().out_edges(op) {
                let dep = ddg.dep(e);
                if dep.kind != DepKind::Flow {
                    continue;
                }
                let cp = schedule.placements()[c.index()];
                if cp.cluster != p.cluster {
                    continue;
                }
                let kc = k + dep.distance as i64;
                if kc < trips_i {
                    last = last.max(cp.time + kc * ii);
                }
            }
            for t in schedule.transfers() {
                if t.producer == op.index() {
                    last = last.max(t.read_time + k * ii);
                }
            }
            match spill {
                Some(s) => {
                    intervals.push((p.cluster, def, (s.store + k * ii).max(def)));
                    for l in &s.loads {
                        intervals.push((
                            p.cluster,
                            l.time + k * ii + load_lat,
                            l.use_time + k * ii,
                        ));
                    }
                }
                None => intervals.push((p.cluster, def, last)),
            }
        }
    }
    for t in schedule.transfers() {
        for k in 0..trips_i {
            let arrival = t.arrival + k * ii;
            let mut last = arrival;
            for (e, c) in ddg.graph().out_edges(gpsched_graph_node(t.producer)) {
                let dep = ddg.dep(e);
                if dep.kind != DepKind::Flow {
                    continue;
                }
                let cp = schedule.placements()[c.index()];
                if cp.cluster != t.to {
                    continue;
                }
                let kc = k + dep.distance as i64;
                if kc < trips_i {
                    last = last.max(cp.time + kc * ii);
                }
            }
            intervals.push((t.to, arrival, last));
        }
    }
    let horizon = intervals
        .iter()
        .map(|&(_, _, e)| e)
        .max()
        .unwrap_or(0)
        .max(0)
        + 2;
    let nclusters = machine.cluster_count();
    let mut diff = vec![vec![0i64; horizon as usize + 2]; nclusters];
    for &(c, s, e) in &intervals {
        if e < s {
            continue;
        }
        let s = s.max(0);
        diff[c][s as usize] += 1;
        diff[c][e as usize + 1] -= 1;
    }
    let mut max_live = vec![0i64; nclusters];
    for c in 0..nclusters {
        let mut live = 0i64;
        for (cycle, &d) in diff[c].iter().enumerate() {
            live += d;
            if live > max_live[c] {
                max_live[c] = live;
            }
            let regs = machine.cluster(c).registers as i64;
            if live > regs {
                return Err(SimError::RegisterOverflow {
                    cluster: c,
                    cycle: cycle as i64,
                    live,
                    registers: regs,
                });
            }
        }
    }

    // ---- 5. Cycle count --------------------------------------------------
    let mut first_issue = i64::MAX;
    let mut last_done = 0i64;
    for op in ddg.op_ids() {
        let p = schedule.placements()[op.index()];
        first_issue = first_issue.min(p.time);
        last_done = last_done.max(p.time + (trips_i - 1) * ii + ddg.op(op).latency as i64);
    }
    for t in schedule.transfers() {
        let start = match t.kind {
            CommKind::Direct { start } => start,
            CommKind::Memory { store, .. } => store,
        };
        first_issue = first_issue.min(start);
        last_done = last_done.max(t.arrival + (trips_i - 1) * ii);
    }
    for s in schedule.spills() {
        first_issue = first_issue.min(
            s.store
                .min(s.loads.iter().map(|l| l.time).min().unwrap_or(s.store)),
        );
        last_done = last_done.max(s.store + (trips_i - 1) * ii + store_lat);
        for l in &s.loads {
            last_done = last_done.max(l.time + (trips_i - 1) * ii + load_lat);
        }
    }
    let observed = (last_done - first_issue) as u64;
    let expected = schedule.cycles(trips);
    if observed != expected {
        return Err(SimError::CycleMismatch { expected, observed });
    }

    Ok(SimReport {
        cycles: observed,
        max_live,
        channel_peak,
        instances: trips * ddg.op_count() as u64,
    })
}

fn gpsched_graph_node(i: usize) -> gpsched_graph::NodeId {
    gpsched_graph::NodeId::from_index(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_sched::{schedule_loop, Algorithm};
    use gpsched_workloads::kernels;

    fn machines() -> Vec<MachineConfig> {
        vec![
            MachineConfig::unified(32),
            MachineConfig::two_cluster(32, 1, 1),
            MachineConfig::two_cluster(64, 1, 2),
            MachineConfig::four_cluster(32, 1, 1),
            MachineConfig::four_cluster(64, 1, 2),
        ]
    }

    #[test]
    fn every_kernel_schedule_validates() {
        for ddg in kernels::all_kernels(50) {
            for m in machines() {
                for algo in Algorithm::ALL {
                    let r = schedule_loop(&ddg, &m, algo).unwrap();
                    let rep = simulate(&ddg, &m, &r.schedule, 50).unwrap_or_else(|e| {
                        panic!("{} on {} via {:?}: {e}", ddg.name(), m.short_name(), algo)
                    });
                    assert_eq!(rep.cycles, r.schedule.cycles(50));
                }
            }
        }
    }

    #[test]
    fn empirical_pressure_within_scheduler_bound() {
        // The simulator's empirical MaxLive can never exceed what the
        // scheduler accounted for.
        for ddg in kernels::all_kernels(30) {
            let m = MachineConfig::four_cluster(32, 1, 1);
            let r = schedule_loop(&ddg, &m, Algorithm::Gp).unwrap();
            let rep = simulate(&ddg, &m, &r.schedule, 30).unwrap();
            for (c, &emp) in rep.max_live.iter().enumerate() {
                assert!(
                    emp <= r.schedule.max_live()[c],
                    "{}: cluster {c} empirical {} > scheduled {}",
                    ddg.name(),
                    emp,
                    r.schedule.max_live()[c]
                );
            }
        }
    }

    #[test]
    fn channel_peak_respects_capacity() {
        for ddg in kernels::all_kernels(40) {
            let m = MachineConfig::four_cluster(64, 1, 2);
            let r = schedule_loop(&ddg, &m, Algorithm::Uracam).unwrap();
            let rep = simulate(&ddg, &m, &r.schedule, 40).unwrap();
            assert!(rep.channel_peak <= m.channel_capacity(0));
        }
    }

    #[test]
    fn topology_machines_audit_clean() {
        use gpsched_machine::Interconnect;
        let machines = [
            MachineConfig::homogeneous_with(
                4,
                (1, 1, 1),
                64,
                Interconnect::Ring {
                    hop_latency: 1,
                    links_per_hop: 1,
                },
            ),
            MachineConfig::homogeneous_with(
                4,
                (1, 1, 1),
                64,
                Interconnect::uniform_point_to_point(4, 1, 1),
            ),
            MachineConfig::homogeneous_with(
                2,
                (2, 2, 2),
                32,
                Interconnect::SharedBus {
                    count: 1,
                    latency: 2,
                    pipelined: true,
                },
            ),
        ];
        for ddg in kernels::all_kernels(40) {
            for m in &machines {
                for algo in Algorithm::ALL {
                    let r = schedule_loop(&ddg, m, algo).unwrap();
                    simulate(&ddg, m, &r.schedule, 40).unwrap_or_else(|e| {
                        panic!("{} on {} via {:?}: {e}", ddg.name(), m.short_name(), algo)
                    });
                }
            }
        }
    }

    #[test]
    fn single_trip_works() {
        let ddg = kernels::daxpy(1);
        let m = MachineConfig::two_cluster(32, 1, 1);
        let r = schedule_loop(&ddg, &m, Algorithm::Gp).unwrap();
        let rep = simulate(&ddg, &m, &r.schedule, 1).unwrap();
        assert_eq!(rep.cycles, r.schedule.length() as u64);
    }

    #[test]
    fn instances_counted() {
        let ddg = kernels::dot_product(25);
        let m = MachineConfig::unified(32);
        let r = schedule_loop(&ddg, &m, Algorithm::Uracam).unwrap();
        let rep = simulate(&ddg, &m, &r.schedule, 25).unwrap();
        assert_eq!(rep.instances, 25 * ddg.op_count() as u64);
    }
}
