//! The list scheduler's spill-on-overflow path under the cycle-accurate
//! auditor: spilled schedules — including ones whose period had to grow
//! past the core span because every memory-port residue was taken — must
//! replay cleanly and match the closed-form cycle count.

use gpsched_ddg::DdgBuilder;
use gpsched_machine::{ClusterConfig, Interconnect, LatencyModel, MachineConfig, OpClass};
use gpsched_sched::{schedule_loop, Algorithm};
use gpsched_sim::simulate;
use gpsched_workloads::synth;

/// Single cluster, one memory port, a small register file.
fn port_starved(registers: u32) -> MachineConfig {
    MachineConfig::custom(
        vec![ClusterConfig {
            int_units: 2,
            fp_units: 1,
            mem_units: 1,
            registers,
        }],
        Interconnect::None,
        LatencyModel::default(),
    )
}

#[test]
fn spilled_list_schedules_replay_cleanly_on_corpus_loops() {
    let machine = MachineConfig::custom(
        vec![
            ClusterConfig {
                int_units: 2,
                fp_units: 2,
                mem_units: 1,
                registers: 12,
            },
            ClusterConfig {
                int_units: 2,
                fp_units: 2,
                mem_units: 1,
                registers: 12,
            },
        ],
        Interconnect::legacy_bus(1, 1),
        LatencyModel::default(),
    );
    let profile = synth::preset("long-distance").expect("bundled preset");
    let mut spilled = 0usize;
    for ddg in synth::corpus("ld", &profile, 11, 12) {
        let r = schedule_loop(&ddg, &machine, Algorithm::List).expect("schedulable");
        spilled += usize::from(!r.schedule.spills().is_empty());
        let trips = ddg.trip_count().clamp(1, 40);
        let report = simulate(&ddg, &machine, &r.schedule, trips)
            .unwrap_or_else(|e| panic!("{}: {e}", ddg.name()));
        assert_eq!(report.cycles, r.schedule.cycles(trips), "{}", ddg.name());
    }
    assert!(spilled > 0, "corpus never exercised the spiller");
}

#[test]
fn period_growth_fires_when_ports_are_saturated_and_still_replays() {
    // Hand-built forcing loop: 12 independent loads then 2 stores occupy
    // *every* memory-port residue of the core span, so the spill the
    // carried recurrence needs cannot find a slot at the core period and
    // the scheduler must grow it. The grown schedule must still pass the
    // full audit with the closed form intact.
    let mut b = DdgBuilder::new("port-saturated");
    let mut loads = Vec::new();
    for i in 0..12 {
        loads.push(b.op(OpClass::Load, format!("ld{i}")));
    }
    for (i, &ld) in loads.iter().take(2).enumerate() {
        let st = b.op(OpClass::Store, format!("st{i}"));
        b.flow(ld, st);
    }
    // Carried recurrence whose value is resident 4 iterations: x reads y
    // from 4 iterations back, y reads x in-iteration.
    let x = b.op(OpClass::IntAlu, "x");
    let y = b.op(OpClass::IntAlu, "y");
    b.flow(x, y);
    b.flow_carried(y, x, 4);
    b.trip_count(30);
    let ddg = b.build().expect("valid loop");

    let machine = port_starved(5);
    let r = schedule_loop(&ddg, &machine, Algorithm::List).expect("schedulable");
    let s = &r.schedule;
    assert!(!s.spills().is_empty(), "the recurrence must be spilled");
    // The core span holds 14 memory ops on one port; the spill adds a
    // store and reloads, which cannot fit without a longer period.
    assert!(
        s.ii() > 14,
        "period {} should have grown past the 14 saturated residues",
        s.ii()
    );
    assert!(
        s.max_live()[0] <= 5,
        "MaxLive {} must fit the register file",
        s.max_live()[0]
    );
    let report = simulate(&ddg, &machine, s, 30).expect("spilled schedule replays");
    assert_eq!(report.cycles, s.cycles(30));
}
