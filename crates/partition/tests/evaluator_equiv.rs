//! Seeded property test: the incremental [`CostEvaluator`] is bit-identical
//! to the from-scratch `estimate()` across random move/swap/revert
//! sequences on synthetic DDGs.
//!
//! This is the behavioral contract the refinement hot path relies on: any
//! divergence between the delta-maintained cut state and a full recount
//! would silently change which moves refinement picks. The `trial_moves`
//! tests extend the same contract to the PR 8 overlay path: a speculative
//! batch evaluation must be bit-identical to apply → evaluate → revert,
//! including the interior exemption for co-resident groups.

use gpsched_ddg::mii;
use gpsched_machine::MachineConfig;
use gpsched_partition::{estimate, CostEvaluator, Partition, TrialBatch};
use gpsched_workloads::rng::Prng;
use gpsched_workloads::synth::{synthesize, SynthProfile};

fn check_sequence(seed: u64, machine: &MachineConfig) {
    let profile = SynthProfile {
        ops: 18 + (seed as usize % 4) * 7,
        recurrences: 1 + (seed as usize % 3),
        ..SynthProfile::default()
    };
    let ddg = synthesize(format!("equiv-{seed}"), &profile, seed);
    let nclusters = machine.cluster_count();
    let mut rng = Prng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9)
            .wrapping_add(nclusters as u64),
    );
    let ii_input = mii::mii(&ddg, machine);

    let mut assign: Vec<usize> = (0..ddg.op_count())
        .map(|_| rng.gen_range(0..nclusters))
        .collect();
    let mut ev = CostEvaluator::new(&ddg, machine);
    ev.reset(ii_input, &assign);
    // Inverse moves of everything applied so far, newest last.
    let mut undo: Vec<(usize, usize)> = Vec::new();

    for step in 0..50 {
        match rng.gen_range(0u32..4) {
            // Single move.
            0 | 1 => {
                let op = rng.gen_range(0..ddg.op_count());
                let c = rng.gen_range(0..nclusters);
                undo.push((op, assign[op]));
                ev.apply(op, c);
                assign[op] = c;
            }
            // Pair swap.
            2 => {
                let a = rng.gen_range(0..ddg.op_count());
                let b = rng.gen_range(0..ddg.op_count());
                let (ca, cb) = (assign[a], assign[b]);
                undo.push((a, ca));
                undo.push((b, cb));
                ev.apply(a, cb);
                ev.apply(b, ca);
                assign[a] = cb;
                assign[b] = ca;
            }
            // Revert the most recent change.
            _ => {
                if let Some((op, old)) = undo.pop() {
                    ev.apply(op, old);
                    assign[op] = old;
                }
            }
        }
        let incremental = ev.cost();
        let scratch = estimate(
            &ddg,
            machine,
            ii_input,
            &Partition::new(assign.clone(), nclusters),
        );
        assert_eq!(
            incremental, scratch,
            "seed {seed}, {} clusters, step {step}: evaluator diverged on {assign:?}",
            nclusters
        );
        assert_eq!(ev.assignment(), assign.as_slice());
    }
}

#[test]
fn evaluator_matches_estimate_two_cluster() {
    for seed in 0..10 {
        check_sequence(seed, &MachineConfig::two_cluster(32, 1, 1));
    }
}

#[test]
fn evaluator_matches_estimate_four_cluster() {
    for seed in 0..10 {
        check_sequence(seed, &MachineConfig::four_cluster(64, 1, 2));
    }
}

#[test]
fn evaluator_matches_estimate_wide_bus() {
    // Different bus latency/width exercises the `extra[]` maintenance.
    for seed in 10..16 {
        check_sequence(seed, &MachineConfig::two_cluster(32, 2, 3));
    }
}

#[test]
fn evaluator_matches_estimate_on_ring() {
    // Asymmetric pairwise latencies: the `extra[]` entries now depend on
    // *which* clusters the endpoints land in, not just on cut-ness, and
    // the channel loads spread over each hop's link.
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        4,
        (1, 1, 1),
        64,
        gpsched_machine::Interconnect::Ring {
            hop_latency: 2,
            links_per_hop: 1,
        },
    );
    for seed in 20..28 {
        check_sequence(seed, &m);
    }
}

#[test]
fn evaluator_matches_estimate_on_point_to_point() {
    // Non-uniform p2p matrix: every ordered pair has its own latency and
    // its own channel.
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        3,
        (2, 1, 1),
        48,
        gpsched_machine::Interconnect::PointToPoint {
            channels: 1,
            latency: vec![0, 1, 4, 2, 0, 1, 1, 3, 0],
        },
    );
    for seed in 30..38 {
        check_sequence(seed, &m);
    }
}

#[test]
fn evaluator_matches_estimate_on_pipelined_bus() {
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        2,
        (2, 2, 2),
        32,
        gpsched_machine::Interconnect::SharedBus {
            count: 1,
            latency: 2,
            pipelined: true,
        },
    );
    for seed in 40..46 {
        check_sequence(seed, &m);
    }
}

#[test]
fn evaluator_matches_estimate_on_preset_corpora() {
    // The named generator presets stress shapes the random profiles of
    // `check_sequence` rarely hit: dense recurrences, near-zero chain
    // bias, saturated memory ports. Across 3 presets × 3 machines, the
    // incremental evaluator must stay bit-identical to `estimate()`
    // through a move/swap sequence on every corpus loop.
    let presets = ["recurrence-heavy", "wide-ilp", "mem-bound"];
    let machines = [
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::two_cluster(32, 2, 3),
        MachineConfig::four_cluster(64, 1, 2),
    ];
    for preset_name in presets {
        let profile = gpsched_workloads::preset(preset_name).expect("bundled preset");
        for (mi, machine) in machines.iter().enumerate() {
            let nclusters = machine.cluster_count();
            for (ci, ddg) in gpsched_workloads::synth::corpus(preset_name, &profile, 0xE0, 4)
                .iter()
                .enumerate()
            {
                let mut rng = Prng::seed_from_u64((mi as u64) << 32 | ci as u64);
                let ii_input = mii::mii(ddg, machine);
                let mut assign: Vec<usize> = (0..ddg.op_count())
                    .map(|_| rng.gen_range(0..nclusters))
                    .collect();
                let mut ev = CostEvaluator::new(ddg, machine);
                ev.reset(ii_input, &assign);
                for step in 0..20 {
                    let op = rng.gen_range(0..ddg.op_count());
                    let c = rng.gen_range(0..nclusters);
                    ev.apply(op, c);
                    assign[op] = c;
                    let scratch = estimate(
                        ddg,
                        machine,
                        ii_input,
                        &Partition::new(assign.clone(), nclusters),
                    );
                    assert_eq!(
                        ev.cost(),
                        scratch,
                        "{preset_name} loop {ci} on {}, step {step}",
                        machine.short_name()
                    );
                }
            }
        }
    }
}

#[test]
fn evaluator_screen_never_lies() {
    // `cost_if_better` may skip the timing analysis; whenever it returns
    // None the full cost must indeed not beat the reference, and whenever
    // it returns a cost it must equal the full recomputation.
    let machine = MachineConfig::two_cluster(32, 1, 1);
    for seed in 0..6u64 {
        let ddg = synthesize(format!("screen-{seed}"), &SynthProfile::default(), seed);
        let mut rng = Prng::seed_from_u64(seed + 77);
        let ii_input = mii::mii(&ddg, &machine);
        let mut assign: Vec<usize> = (0..ddg.op_count())
            .map(|_| rng.gen_range(0usize..2))
            .collect();
        let mut ev = CostEvaluator::new(&ddg, &machine);
        ev.reset(ii_input, &assign);
        let reference = ev.cost();
        for _ in 0..30 {
            let op = rng.gen_range(0..ddg.op_count());
            let c = rng.gen_range(0usize..2);
            ev.apply(op, c);
            assign[op] = c;
            let full = estimate(&ddg, &machine, ii_input, &Partition::new(assign.clone(), 2));
            match ev.cost_if_better(&reference) {
                Some(cost) => {
                    assert_eq!(cost, full);
                    assert!(cost.better_than(&reference));
                }
                None => assert!(!full.better_than(&reference)),
            }
        }
    }
}

/// One step of the `trial_moves` contract: the overlay evaluation of a
/// set of move batches must be bit-identical to applying the batches,
/// recomputing, and reverting — including the `than` threshold gate.
fn check_trial_sequence(seed: u64, machine: &MachineConfig) {
    let profile = SynthProfile {
        ops: 20 + (seed as usize % 3) * 9,
        recurrences: 1 + (seed as usize % 3),
        ..SynthProfile::default()
    };
    let ddg = synthesize(format!("trial-{seed}"), &profile, seed);
    let nclusters = machine.cluster_count();
    let mut rng = Prng::seed_from_u64(seed.wrapping_mul(0xA076_1D64_78BD_642F));
    let ii_input = mii::mii(&ddg, machine);
    let mut assign: Vec<usize> = (0..ddg.op_count())
        .map(|_| rng.gen_range(0..nclusters))
        .collect();
    let mut ev = CostEvaluator::new(&ddg, machine);
    ev.reset(ii_input, &assign);

    for step in 0..60 {
        // 1–2 disjoint batches (the refinement loop evaluates single moves
        // and pair swaps), each 1–3 ops to one destination.
        let nbatches = 1 + rng.gen_range(0u32..2) as usize;
        let mut used = vec![false; ddg.op_count()];
        let mut batches: Vec<(Vec<usize>, usize)> = Vec::new();
        for _ in 0..nbatches {
            let mut ops = Vec::new();
            for _ in 0..1 + rng.gen_range(0u32..3) {
                let op = rng.gen_range(0..ddg.op_count());
                if !used[op] {
                    used[op] = true;
                    ops.push(op);
                }
            }
            if !ops.is_empty() {
                batches.push((ops, rng.gen_range(0..nclusters)));
            }
        }
        let than = ev.cost();
        let trial = ev.trial_moves(
            batches.iter().map(|(ops, c)| TrialBatch {
                ops,
                boundary: ops,
                cluster: *c,
            }),
            &than,
        );

        // Ground truth: apply, recompute, gate on `than`, revert.
        let saved: Vec<(usize, usize)> = batches
            .iter()
            .flat_map(|(ops, _)| ops.iter().map(|&op| (op, assign[op])))
            .collect();
        for (ops, c) in &batches {
            for &op in ops {
                ev.apply(op, *c);
                assign[op] = *c;
            }
        }
        let full = ev.cost();
        let expected = full.better_than(&than).then_some(full);
        assert_eq!(
            trial,
            expected,
            "seed {seed} on {}, step {step}: trial_moves diverged from apply/evaluate/revert",
            machine.short_name()
        );

        // Sometimes adopt the move (wandering keeps the sequences from
        // orbiting one assignment); otherwise revert.
        if expected.is_none() || rng.gen_range(0u32..100) < 60 {
            for &(op, old) in saved.iter().rev() {
                ev.apply(op, old);
                assign[op] = old;
            }
        }
        assert_eq!(ev.assignment(), assign.as_slice());
    }
}

/// The interior-exemption contract: a batch of *co-resident* ops moving
/// together may pass only its group boundary in `boundary`; interior ops
/// (every dependence endpoint inside the batch) must not change the
/// verdict.
fn check_boundary_batches(seed: u64, machine: &MachineConfig) {
    let profile = SynthProfile {
        ops: 30,
        recurrences: 2,
        ..SynthProfile::default()
    };
    let ddg = synthesize(format!("boundary-{seed}"), &profile, seed);
    let nclusters = machine.cluster_count();
    let mut rng = Prng::seed_from_u64(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    let ii_input = mii::mii(&ddg, machine);
    // Few clusters + BFS blobs → real interiors, not all-boundary batches.
    let mut assign: Vec<usize> = (0..ddg.op_count())
        .map(|_| rng.gen_range(0..nclusters))
        .collect();
    let mut ev = CostEvaluator::new(&ddg, machine);
    ev.reset(ii_input, &assign);

    let neighbors = |op: usize| -> Vec<usize> {
        let id = gpsched_graph::NodeId::from_index(op);
        ddg.graph()
            .out_edges(id)
            .map(|(_, d)| d.index())
            .chain(ddg.graph().in_edges(id).map(|(_, p)| p.index()))
            .collect()
    };

    for step in 0..40 {
        // Grow a connected co-resident blob from a random seed op.
        let root = rng.gen_range(0..ddg.op_count());
        let home = assign[root];
        let mut blob = vec![root];
        let mut i = 0;
        while i < blob.len() && blob.len() < 6 {
            for n in neighbors(blob[i]) {
                if assign[n] == home && !blob.contains(&n) && blob.len() < 6 {
                    blob.push(n);
                }
            }
            i += 1;
        }
        let dest = rng.gen_range(0..nclusters);
        let boundary: Vec<usize> = blob
            .iter()
            .copied()
            .filter(|&op| neighbors(op).iter().any(|n| !blob.contains(n)))
            .collect();

        let than = ev.cost();
        let trial = ev.trial_moves(
            [TrialBatch {
                ops: &blob,
                boundary: &boundary,
                cluster: dest,
            }],
            &than,
        );
        let saved: Vec<usize> = blob.iter().map(|&op| assign[op]).collect();
        for &op in &blob {
            ev.apply(op, dest);
            assign[op] = dest;
        }
        let full = ev.cost();
        let expected = full.better_than(&than).then_some(full);
        assert_eq!(
            trial,
            expected,
            "seed {seed} on {}, step {step}: boundary-exempt trial diverged \
             (blob {blob:?}, boundary {boundary:?})",
            machine.short_name()
        );
        if expected.is_none() || rng.gen_range(0u32..100) < 50 {
            for (&op, &old) in blob.iter().zip(&saved) {
                ev.apply(op, old);
                assign[op] = old;
            }
        }
    }
}

#[test]
fn trial_moves_matches_apply_on_uniform_machines() {
    for seed in 50..58 {
        check_trial_sequence(seed, &MachineConfig::two_cluster(32, 1, 1));
        check_trial_sequence(seed, &MachineConfig::four_cluster(64, 1, 2));
    }
}

#[test]
fn trial_moves_matches_apply_on_ring() {
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        4,
        (1, 1, 1),
        64,
        gpsched_machine::Interconnect::Ring {
            hop_latency: 2,
            links_per_hop: 1,
        },
    );
    for seed in 60..66 {
        check_trial_sequence(seed, &m);
    }
}

#[test]
fn trial_moves_matches_apply_on_point_to_point() {
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        3,
        (2, 1, 1),
        48,
        gpsched_machine::Interconnect::PointToPoint {
            channels: 1,
            latency: vec![0, 1, 4, 2, 0, 1, 1, 3, 0],
        },
    );
    for seed in 70..76 {
        check_trial_sequence(seed, &m);
    }
}

#[test]
fn trial_moves_matches_apply_on_pipelined_bus() {
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        2,
        (2, 2, 2),
        32,
        gpsched_machine::Interconnect::SharedBus {
            count: 1,
            latency: 2,
            pipelined: true,
        },
    );
    for seed in 80..86 {
        check_trial_sequence(seed, &m);
    }
}

#[test]
fn boundary_exempt_batches_match_apply() {
    for seed in 90..96 {
        check_boundary_batches(seed, &MachineConfig::two_cluster(32, 1, 1));
        check_boundary_batches(seed, &MachineConfig::four_cluster(64, 1, 2));
    }
}
