//! Seeded property test: the incremental [`CostEvaluator`] is bit-identical
//! to the from-scratch `estimate()` across random move/swap/revert
//! sequences on synthetic DDGs.
//!
//! This is the behavioral contract the refinement hot path relies on: any
//! divergence between the delta-maintained cut state and a full recount
//! would silently change which moves refinement picks.

use gpsched_ddg::mii;
use gpsched_machine::MachineConfig;
use gpsched_partition::{estimate, CostEvaluator, Partition};
use gpsched_workloads::rng::Prng;
use gpsched_workloads::synth::{synthesize, SynthProfile};

fn check_sequence(seed: u64, machine: &MachineConfig) {
    let profile = SynthProfile {
        ops: 18 + (seed as usize % 4) * 7,
        recurrences: 1 + (seed as usize % 3),
        ..SynthProfile::default()
    };
    let ddg = synthesize(format!("equiv-{seed}"), &profile, seed);
    let nclusters = machine.cluster_count();
    let mut rng = Prng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9)
            .wrapping_add(nclusters as u64),
    );
    let ii_input = mii::mii(&ddg, machine);

    let mut assign: Vec<usize> = (0..ddg.op_count())
        .map(|_| rng.gen_range(0..nclusters))
        .collect();
    let mut ev = CostEvaluator::new(&ddg, machine);
    ev.reset(ii_input, &assign);
    // Inverse moves of everything applied so far, newest last.
    let mut undo: Vec<(usize, usize)> = Vec::new();

    for step in 0..50 {
        match rng.gen_range(0u32..4) {
            // Single move.
            0 | 1 => {
                let op = rng.gen_range(0..ddg.op_count());
                let c = rng.gen_range(0..nclusters);
                undo.push((op, assign[op]));
                ev.apply(op, c);
                assign[op] = c;
            }
            // Pair swap.
            2 => {
                let a = rng.gen_range(0..ddg.op_count());
                let b = rng.gen_range(0..ddg.op_count());
                let (ca, cb) = (assign[a], assign[b]);
                undo.push((a, ca));
                undo.push((b, cb));
                ev.apply(a, cb);
                ev.apply(b, ca);
                assign[a] = cb;
                assign[b] = ca;
            }
            // Revert the most recent change.
            _ => {
                if let Some((op, old)) = undo.pop() {
                    ev.apply(op, old);
                    assign[op] = old;
                }
            }
        }
        let incremental = ev.cost();
        let scratch = estimate(
            &ddg,
            machine,
            ii_input,
            &Partition::new(assign.clone(), nclusters),
        );
        assert_eq!(
            incremental, scratch,
            "seed {seed}, {} clusters, step {step}: evaluator diverged on {assign:?}",
            nclusters
        );
        assert_eq!(ev.assignment(), assign.as_slice());
    }
}

#[test]
fn evaluator_matches_estimate_two_cluster() {
    for seed in 0..10 {
        check_sequence(seed, &MachineConfig::two_cluster(32, 1, 1));
    }
}

#[test]
fn evaluator_matches_estimate_four_cluster() {
    for seed in 0..10 {
        check_sequence(seed, &MachineConfig::four_cluster(64, 1, 2));
    }
}

#[test]
fn evaluator_matches_estimate_wide_bus() {
    // Different bus latency/width exercises the `extra[]` maintenance.
    for seed in 10..16 {
        check_sequence(seed, &MachineConfig::two_cluster(32, 2, 3));
    }
}

#[test]
fn evaluator_matches_estimate_on_ring() {
    // Asymmetric pairwise latencies: the `extra[]` entries now depend on
    // *which* clusters the endpoints land in, not just on cut-ness, and
    // the channel loads spread over each hop's link.
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        4,
        (1, 1, 1),
        64,
        gpsched_machine::Interconnect::Ring {
            hop_latency: 2,
            links_per_hop: 1,
        },
    );
    for seed in 20..28 {
        check_sequence(seed, &m);
    }
}

#[test]
fn evaluator_matches_estimate_on_point_to_point() {
    // Non-uniform p2p matrix: every ordered pair has its own latency and
    // its own channel.
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        3,
        (2, 1, 1),
        48,
        gpsched_machine::Interconnect::PointToPoint {
            channels: 1,
            latency: vec![0, 1, 4, 2, 0, 1, 1, 3, 0],
        },
    );
    for seed in 30..38 {
        check_sequence(seed, &m);
    }
}

#[test]
fn evaluator_matches_estimate_on_pipelined_bus() {
    let m = gpsched_machine::MachineConfig::homogeneous_with(
        2,
        (2, 2, 2),
        32,
        gpsched_machine::Interconnect::SharedBus {
            count: 1,
            latency: 2,
            pipelined: true,
        },
    );
    for seed in 40..46 {
        check_sequence(seed, &m);
    }
}

#[test]
fn evaluator_matches_estimate_on_preset_corpora() {
    // The named generator presets stress shapes the random profiles of
    // `check_sequence` rarely hit: dense recurrences, near-zero chain
    // bias, saturated memory ports. Across 3 presets × 3 machines, the
    // incremental evaluator must stay bit-identical to `estimate()`
    // through a move/swap sequence on every corpus loop.
    let presets = ["recurrence-heavy", "wide-ilp", "mem-bound"];
    let machines = [
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::two_cluster(32, 2, 3),
        MachineConfig::four_cluster(64, 1, 2),
    ];
    for preset_name in presets {
        let profile = gpsched_workloads::preset(preset_name).expect("bundled preset");
        for (mi, machine) in machines.iter().enumerate() {
            let nclusters = machine.cluster_count();
            for (ci, ddg) in gpsched_workloads::synth::corpus(preset_name, &profile, 0xE0, 4)
                .iter()
                .enumerate()
            {
                let mut rng = Prng::seed_from_u64((mi as u64) << 32 | ci as u64);
                let ii_input = mii::mii(ddg, machine);
                let mut assign: Vec<usize> = (0..ddg.op_count())
                    .map(|_| rng.gen_range(0..nclusters))
                    .collect();
                let mut ev = CostEvaluator::new(ddg, machine);
                ev.reset(ii_input, &assign);
                for step in 0..20 {
                    let op = rng.gen_range(0..ddg.op_count());
                    let c = rng.gen_range(0..nclusters);
                    ev.apply(op, c);
                    assign[op] = c;
                    let scratch = estimate(
                        ddg,
                        machine,
                        ii_input,
                        &Partition::new(assign.clone(), nclusters),
                    );
                    assert_eq!(
                        ev.cost(),
                        scratch,
                        "{preset_name} loop {ci} on {}, step {step}",
                        machine.short_name()
                    );
                }
            }
        }
    }
}

#[test]
fn evaluator_screen_never_lies() {
    // `cost_if_better` may skip the timing analysis; whenever it returns
    // None the full cost must indeed not beat the reference, and whenever
    // it returns a cost it must equal the full recomputation.
    let machine = MachineConfig::two_cluster(32, 1, 1);
    for seed in 0..6u64 {
        let ddg = synthesize(format!("screen-{seed}"), &SynthProfile::default(), seed);
        let mut rng = Prng::seed_from_u64(seed + 77);
        let ii_input = mii::mii(&ddg, &machine);
        let mut assign: Vec<usize> = (0..ddg.op_count())
            .map(|_| rng.gen_range(0usize..2))
            .collect();
        let mut ev = CostEvaluator::new(&ddg, &machine);
        ev.reset(ii_input, &assign);
        let reference = ev.cost();
        for _ in 0..30 {
            let op = rng.gen_range(0..ddg.op_count());
            let c = rng.gen_range(0usize..2);
            ev.apply(op, c);
            assign[op] = c;
            let full = estimate(&ddg, &machine, ii_input, &Partition::new(assign.clone(), 2));
            match ev.cost_if_better(&reference) {
                Some(cost) => {
                    assert_eq!(cost, full);
                    assert!(cost.better_than(&reference));
                }
                None => assert!(!full.better_than(&reference)),
            }
        }
    }
}
