//! Execution-time estimation of a partition (§3.2.2's hypothetical machine).
//!
//! The estimator assumes unlimited registers, a perfect memory and no
//! scheduling conflicts, but models the interconnection network and the
//! memory ports realistically:
//!
//! * every cut flow dependence is charged the topology's end-to-end
//!   transfer latency between its two clusters ([`crate::comm_cost`]);
//! * every communicated value books its route's occupancy on each channel
//!   it crosses, and the busiest channel bounds the II from below
//!   ([`crate::ChannelLoad`]; on the paper's shared bus exactly
//!   `IIbus = ⌈NComm · LatBus / NBus⌉`);
//! * per-cluster functional-unit (incl. memory-port) utilisation bounds the
//!   II from below (`res_mii_clustered`);
//! * recurrences crossing the cut get longer → `RecMII` grows.

use crate::comm::{comm_cost, ChannelLoad};
use crate::partition::Partition;
use gpsched_ddg::timing::TimingWorkspace;
use gpsched_ddg::{mii, Ddg, DepKind};
use gpsched_machine::MachineConfig;

/// Cost metrics of one partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionCost {
    /// Values crossing the cut (`NComm`).
    pub comm_count: usize,
    /// Interconnect-imposed II bound (≥ 1): the busiest channel's
    /// `⌈load / capacity⌉` — the paper's `IIbus` on a shared bus,
    /// generalized to any topology.
    pub ii_bus: i64,
    /// Effective II of the estimate: smallest recurrence-feasible II at or
    /// above `max(ii_input, per-cluster ResMII, IIbus)` with transfer
    /// delays on cut edges.
    pub ii_effective: i64,
    /// Longest intra-iteration path with transfer delays on cut edges.
    pub max_path: i64,
    /// `T = (niter − 1)·II + max_path`.
    pub exec_time: i64,
    /// Total slack of cut dependences (first tie-breaker, maximized).
    pub cut_slack: i64,
    /// Number of cut dependences (second tie-breaker, minimized).
    pub cut_size: usize,
}

/// Estimates the execution time of `ddg` under `partition`, with the
/// partitioning-phase input interval `ii_input`.
///
/// Returns the full [`PartitionCost`]; lower `exec_time` is better, ties
/// break on larger `cut_slack`, then smaller `cut_size` (§3.2.2).
///
/// # Panics
///
/// Panics if the partition does not cover all ops of `ddg`, or if a cluster
/// lacks functional units for an op assigned to it.
pub fn estimate(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii_input: i64,
    partition: &Partition,
) -> PartitionCost {
    estimate_with(
        ddg,
        machine,
        ii_input,
        partition,
        &mut TimingWorkspace::new(),
    )
}

/// [`estimate`] with a caller-supplied [`TimingWorkspace`], so repeated
/// estimates over the same DDG reuse the timing scratch buffers instead of
/// reallocating them (refinement evaluates candidates through the even
/// cheaper incremental [`crate::CostEvaluator`]; this entry point serves
/// the from-scratch callers).
pub fn estimate_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii_input: i64,
    partition: &Partition,
    ws: &mut TimingWorkspace,
) -> PartitionCost {
    assert_eq!(partition.len(), ddg.op_count(), "partition/ddg mismatch");
    let assign = partition.assignment();

    // Which flow deps cross the cut (these pay their pair's transfer
    // latency), and the distinct (producer, consumer-cluster) values that
    // load the interconnect channels.
    let mut extra = vec![0i64; ddg.dep_count()];
    let mut cut_size = 0usize;
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for e in partition.cut_deps(ddg) {
        cut_size += 1;
        if ddg.dep(e).kind == DepKind::Flow {
            let (s, d) = ddg.dep_endpoints(e);
            extra[e.index()] = comm_cost(machine, assign[s.index()], assign[d.index()]);
            pairs.push((s.index(), assign[d.index()]));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    let comm_count = pairs.len();
    debug_assert_eq!(comm_count, partition.comm_count(ddg));
    let mut load = ChannelLoad::new(machine);
    for &(p, to) in &pairs {
        load.add_pair(assign[p], to);
    }
    let ii_bus = load.bound();
    let res = mii::res_mii_clustered(ddg, machine, partition.assignment());
    let lower = ii_input.max(res).max(ii_bus);

    // Smallest recurrence-feasible II at or above `lower`, probing with the
    // timing analysis (cheap in the common case where `lower` is feasible).
    let mut ii = lower;
    loop {
        if ws.analyze(ddg, ii, |e| extra[e.index()]).is_some() {
            break;
        }
        ii += 1;
    }
    let t = ws.last();

    let cut_slack: i64 = partition
        .cut_deps(ddg)
        .map(|e| t.edge_slack[e.index()])
        .sum();

    PartitionCost {
        comm_count,
        ii_bus,
        ii_effective: ii,
        max_path: t.max_path,
        exec_time: ddg.execution_time(ii, t.max_path),
        cut_slack,
        cut_size,
    }
}

impl PartitionCost {
    /// Lexicographic comparison used by refinement: smaller `exec_time`
    /// wins, then larger `cut_slack`, then smaller `cut_size`.
    pub fn better_than(&self, other: &PartitionCost) -> bool {
        (self.exec_time, -self.cut_slack, self.cut_size)
            < (other.exec_time, -other.cut_slack, other.cut_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_ddg::DdgBuilder;
    use gpsched_machine::OpClass;
    use gpsched_workloads::kernels;

    #[test]
    fn ring_distance_sets_cut_delay() {
        // ld → add split across a 4-cluster ring with hop latency 2: the
        // delay (and thus max_path growth) is the directed ring distance.
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld");
        let ad = b.op(OpClass::FpAdd, "ad");
        b.flow(ld, ad);
        b.trip_count(100);
        let ddg = b.build().unwrap();
        let m = gpsched_machine::MachineConfig::homogeneous_with(
            4,
            (1, 1, 1),
            64,
            gpsched_machine::Interconnect::Ring {
                hop_latency: 2,
                links_per_hop: 1,
            },
        );
        let base = estimate(
            &ddg,
            &m,
            1,
            &Partition::new(vec![0, 0, 0, 0][..2].to_vec(), 4),
        );
        let near = estimate(&ddg, &m, 1, &Partition::new(vec![0, 1], 4));
        let far = estimate(&ddg, &m, 1, &Partition::new(vec![1, 0], 4));
        assert_eq!(near.max_path, base.max_path + 2); // one hop
        assert_eq!(far.max_path, base.max_path + 6); // three hops 1→2→3→0
        assert_eq!(near.comm_count, 1);
    }

    #[test]
    fn single_cluster_pays_no_bus() {
        let ddg = kernels::daxpy(100);
        let m = MachineConfig::unified(32);
        let p = Partition::single_cluster(ddg.op_count());
        let c = estimate(&ddg, &m, 2, &p);
        assert_eq!(c.comm_count, 0);
        assert_eq!(c.cut_size, 0);
        assert_eq!(c.ii_bus, 1);
        assert_eq!(c.ii_effective, 2);
    }

    #[test]
    fn cutting_a_chain_costs_time() {
        // ld → add, cut between them on a 2-cluster machine.
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld");
        let ad = b.op(OpClass::FpAdd, "ad");
        b.flow(ld, ad);
        b.trip_count(100);
        let ddg = b.build().unwrap();
        let m = MachineConfig::two_cluster(32, 1, 1);

        let together = estimate(&ddg, &m, 1, &Partition::new(vec![0, 0], 2));
        let split = estimate(&ddg, &m, 1, &Partition::new(vec![0, 1], 2));
        assert!(together.better_than(&split));
        assert_eq!(split.comm_count, 1);
        // Bus latency stretches the path by 1 cycle.
        assert_eq!(split.max_path, together.max_path + 1);
    }

    #[test]
    fn cut_recurrence_raises_ii() {
        // acc (fp add, lat 3) self-recurrence via a partner op in the cycle.
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::FpAdd, "a");
        let c = b.op(OpClass::FpAdd, "c");
        b.flow(a, c);
        b.flow_carried(c, a, 1); // cycle latency 6, distance 1 → RecMII 6
        b.trip_count(50);
        let ddg = b.build().unwrap();
        let m = MachineConfig::two_cluster(32, 1, 1);

        let together = estimate(&ddg, &m, 1, &Partition::new(vec![0, 0], 2));
        assert_eq!(together.ii_effective, 6);
        let split = estimate(&ddg, &m, 1, &Partition::new(vec![0, 1], 2));
        // Both cycle edges pay the 1-cycle bus → RecMII 8.
        assert_eq!(split.ii_effective, 8);
        assert!(together.better_than(&split));
    }

    #[test]
    fn overloading_one_cluster_raises_ii() {
        let mut b = DdgBuilder::new("t");
        for i in 0..8 {
            b.op(OpClass::Load, format!("ld{i}"));
        }
        b.trip_count(10);
        let ddg = b.build().unwrap();
        let m = MachineConfig::two_cluster(32, 1, 1); // 2 mem ports/cluster

        let lopsided = estimate(&ddg, &m, 1, &Partition::new(vec![0; 8], 2));
        assert_eq!(lopsided.ii_effective, 4); // 8 loads / 2 ports
        let even = Partition::new((0..8).map(|i| i % 2).collect(), 2);
        let balanced = estimate(&ddg, &m, 1, &even);
        assert_eq!(balanced.ii_effective, 2);
        assert!(balanced.better_than(&lopsided));
    }

    #[test]
    fn comm_bound_kicks_in_with_many_transfers() {
        // One producer fans out to 6 consumers in the other cluster… but a
        // value is sent once per cluster, so build 6 producers instead.
        let mut b = DdgBuilder::new("t");
        let mut assign = Vec::new();
        for i in 0..6 {
            let p = b.op(OpClass::IntAlu, format!("p{i}"));
            let q = b.op(OpClass::IntAlu, format!("q{i}"));
            b.flow(p, q);
            let _ = p;
            assign.push(0);
            assign.push(1);
        }
        b.trip_count(10);
        let ddg = b.build().unwrap();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let c = estimate(&ddg, &m, 1, &Partition::new(assign, 2));
        assert_eq!(c.comm_count, 6);
        assert_eq!(c.ii_bus, 6);
        assert!(c.ii_effective >= 6);
    }

    #[test]
    fn better_than_is_lexicographic() {
        let base = PartitionCost {
            comm_count: 1,
            ii_bus: 1,
            ii_effective: 2,
            max_path: 10,
            exec_time: 100,
            cut_slack: 5,
            cut_size: 3,
        };
        let faster = PartitionCost {
            exec_time: 90,
            ..base.clone()
        };
        assert!(faster.better_than(&base));
        let slacker = PartitionCost {
            cut_slack: 9,
            ..base.clone()
        };
        assert!(slacker.better_than(&base));
        let smaller_cut = PartitionCost {
            cut_size: 2,
            ..base.clone()
        };
        assert!(smaller_cut.better_than(&base));
        assert!(!base.better_than(&base));
    }
}
