//! Multilevel graph partitioning of loop DDGs for clustered VLIW processors.
//!
//! Implements §3.2 of *"Graph-Partitioning Based Instruction Scheduling for
//! Clustered Processors"* (Aletà et al., MICRO-34, 2001) — the cluster
//! assignment phase of the GP scheme:
//!
//! 1. **edge weights** ([`weights`]): every dependence is weighted by
//!    `delay(e)·(maxsl+1) + maxsl − slack(e) + 1`, where `delay(e)` is the
//!    estimated execution-time growth if the edge had to cross the bus and
//!    `slack(e)` the cycles it can absorb for free;
//! 2. **coarsening** ([`coarsen`]): maximum-weight matchings (exact blossom
//!    by default, greedy heavy-edge optionally) repeatedly fuse the most
//!    expensive-to-cut pairs into macro-nodes until as many nodes as
//!    clusters remain;
//! 3. **refinement** ([`refine`]): walking back from the coarsest level,
//!    first rebalance overloaded resources, then greedily apply the single
//!    node move or pair swap that most reduces the estimated execution time
//!    (ties: maximize cut slack, then minimize cut size);
//! 4. **cost estimation** ([`mod@estimate`]): the paper's hypothetical machine —
//!    unlimited registers, perfect memory, realistic memory ports and
//!    interconnect — giving `IIbus`, the effective II and the execution-time
//!    estimate `T = (niter−1)·II + max_path`. The refinement hot path
//!    evaluates candidates through the incremental [`CostEvaluator`]
//!    ([`evaluator`]), which maintains the cut state by O(degree) deltas
//!    and is proven bit-identical to the from-scratch estimate.
//!
//! # Example
//!
//! ```
//! use gpsched_machine::MachineConfig;
//! use gpsched_partition::{partition_ddg, PartitionOptions};
//! use gpsched_workloads::kernels;
//!
//! let ddg = kernels::daxpy(100);
//! let machine = MachineConfig::two_cluster(32, 1, 1);
//! let mii = gpsched_ddg::mii::mii(&ddg, &machine);
//! let result = partition_ddg(&ddg, &machine, mii, &PartitionOptions::default());
//! assert_eq!(result.partition.cluster_count(), 2);
//! // Every op is assigned to a real cluster.
//! assert!(result.partition.assignment().iter().all(|&c| c < 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;
pub mod comm;
pub mod estimate;
pub mod evaluator;
mod multilevel;
mod partition;
pub mod refine;
pub mod weights;

pub use comm::{comm_cost, ChannelLoad};
pub use estimate::{estimate, estimate_with, PartitionCost};
pub use evaluator::{CostEvaluator, TrialBatch};
pub use multilevel::{
    partition_ddg, partition_ddg_with, MatchStrategy, PartitionOptions, PartitionResult,
};
pub use partition::Partition;
