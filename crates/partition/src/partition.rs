//! The cluster-assignment type.

use gpsched_ddg::{Ddg, DepId, DepKind};

/// A cluster assignment of every operation of a loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<usize>,
    nclusters: usize,
}

impl Partition {
    /// Creates a partition from an explicit assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `nclusters == 0` or any entry is `>= nclusters`.
    pub fn new(assignment: Vec<usize>, nclusters: usize) -> Self {
        assert!(nclusters > 0, "need at least one cluster");
        assert!(
            assignment.iter().all(|&c| c < nclusters),
            "assignment entry out of range"
        );
        Partition {
            assignment,
            nclusters,
        }
    }

    /// The trivial partition that puts every op in cluster 0.
    pub fn single_cluster(nops: usize) -> Self {
        Partition {
            assignment: vec![0; nops],
            nclusters: 1,
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.nclusters
    }

    /// Number of operations covered.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Returns `true` if no operations are covered.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Cluster of operation index `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn cluster_of(&self, op: usize) -> usize {
        self.assignment[op]
    }

    /// The raw assignment slice (`assignment[op] = cluster`).
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Reassigns one operation (used by refinement and by the GP scheduler
    /// when it overrides the partition).
    ///
    /// # Panics
    ///
    /// Panics if `op` or `cluster` is out of range.
    pub fn reassign(&mut self, op: usize, cluster: usize) {
        assert!(cluster < self.nclusters, "cluster out of range");
        self.assignment[op] = cluster;
    }

    /// Dependences of `ddg` whose endpoints live in different clusters.
    pub fn cut_deps<'a>(&'a self, ddg: &'a Ddg) -> impl Iterator<Item = DepId> + 'a {
        ddg.dep_ids().filter(move |&e| {
            let (s, d) = ddg.dep_endpoints(e);
            self.assignment[s.index()] != self.assignment[d.index()]
        })
    }

    /// Number of cut dependences (flow and memory alike — the tie-breaking
    /// metric of the refinement phase).
    pub fn cut_size(&self, ddg: &Ddg) -> usize {
        self.cut_deps(ddg).count()
    }

    /// Number of *values* that must travel over the interconnect: distinct
    /// `(producer, consumer cluster)` pairs over cut flow dependences.
    /// A value sent once to a cluster serves all consumers there, and memory
    /// dependences move no data (the paper's `NComm`).
    pub fn comm_count(&self, ddg: &Ddg) -> usize {
        // Flat sort+dedup over the (few) cut flow deps — cheaper and less
        // allocation-happy than the hash set it replaced.
        let mut pairs: Vec<(usize, usize)> = self
            .cut_deps(ddg)
            .filter(|&e| ddg.dep(e).kind == DepKind::Flow)
            .map(|e| {
                let (s, d) = ddg.dep_endpoints(e);
                (s.index(), self.assignment[d.index()])
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs.len()
    }

    /// Operations assigned to `cluster`, in index order.
    pub fn ops_in(&self, cluster: usize) -> impl Iterator<Item = usize> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |&(_, &c)| c == cluster)
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_ddg::DdgBuilder;
    use gpsched_machine::OpClass;

    fn two_op_loop() -> Ddg {
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::Load, "a");
        let c = b.op(OpClass::FpAdd, "c");
        let d = b.op(OpClass::FpAdd, "d");
        b.flow(a, c);
        b.flow(a, d);
        b.mem(a, c, 1);
        b.build().unwrap()
    }

    #[test]
    fn construction_and_queries() {
        let p = Partition::new(vec![0, 1, 1], 2);
        assert_eq!(p.cluster_count(), 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.cluster_of(1), 1);
        assert_eq!(p.ops_in(1).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_assignment() {
        Partition::new(vec![0, 2], 2);
    }

    #[test]
    fn cut_and_comm_counts() {
        let ddg = two_op_loop();
        // All together: nothing cut.
        let p0 = Partition::single_cluster(3);
        assert_eq!(p0.cut_size(&ddg), 0);
        assert_eq!(p0.comm_count(&ddg), 0);

        // a alone: two flow cuts + one mem cut, but only ONE value travels
        // to cluster 1 (a's value serves both consumers).
        let p1 = Partition::new(vec![0, 1, 1], 2);
        assert_eq!(p1.cut_size(&ddg), 3);
        assert_eq!(p1.comm_count(&ddg), 1);

        // Consumers split across clusters: the value travels twice.
        let p2 = Partition::new(vec![0, 1, 0], 2);
        assert_eq!(p2.comm_count(&ddg), 1);
        let p3 = Partition::new(vec![2, 1, 0], 3);
        assert_eq!(p3.comm_count(&ddg), 2);
    }

    #[test]
    fn reassign_moves_op() {
        let mut p = Partition::new(vec![0, 0], 2);
        p.reassign(1, 1);
        assert_eq!(p.cluster_of(1), 1);
    }
}
