//! Edge weights for coarsening (§3.2.1).
//!
//! `weight(e) = delay(e)·(maxsl + 1) + maxsl − slack(e) + 1`, where
//!
//! * `delay(e)` is the execution-time growth if the edge had to cross the
//!   interconnect: `(niter−1)·(II_after − II_before) + (max_path_after −
//!   max_path_before)`. No clusters are assigned yet at coarsening time,
//!   so the charge is the topology's *worst-case* pairwise transfer
//!   latency ([`MachineConfig::max_transfer_latency`] — exactly the bus
//!   latency on the paper's shared bus, where every pair costs the same).
//!   The II term only moves when `e` lies on a recurrence; the `max_path`
//!   term only when `e` is an intra-iteration edge.
//! * `slack(e)` is the delay `e` can absorb for free, `maxsl` the largest
//!   slack in the graph.
//!
//! Any difference in `delay` therefore dominates any difference in slack,
//! and the `+1` keeps every weight strictly positive so that edges are
//! never invisible to the maximum-weight matching.

use gpsched_ddg::{mii, timing, Ddg};
use gpsched_graph::scc::component_index;
use gpsched_machine::MachineConfig;

/// Per-dependence coarsening weights, indexed by `DepId::index()`.
///
/// `ii_input` is the partitioning input interval (MII on the first round);
/// `machine` supplies the interconnect topology being modelled.
///
/// # Panics
///
/// Panics if `ii_input` is smaller than 1.
pub fn edge_weights(ddg: &Ddg, machine: &MachineConfig, ii_input: i64) -> Vec<i64> {
    assert!(ii_input >= 1, "ii_input must be positive");
    let bus_lat = machine.max_transfer_latency();
    let niter = ddg.trip_count() as i64;

    let rec_base = mii::rec_mii(ddg);
    let ii_base = ii_input.max(rec_base);
    let t = timing::analyze(ddg, ii_base, |_| 0).expect("ii at or above RecMII is feasible");
    let maxsl = t.max_slack;

    // Only edges inside a strongly connected component can change RecMII.
    let (_, comp) = component_index(ddg.graph());

    // One prepared kernel serves every per-edge probe: bump the probed
    // edge's weight base by the bus latency, search, restore. Successive
    // recurrence edges tend to share an answer, so each search is seeded
    // with the previous one's result.
    let mut kernel =
        gpsched_graph::feasibility::BfKernel::build(ddg.op_count(), &ddg.constraint_deps(|_| 0));
    let mut last_rec_after = None;

    ddg.dep_ids()
        .map(|e| {
            let (s, d) = ddg.dep_endpoints(e);
            let dep = ddg.dep(e);

            // II after delaying e (only recompute when e is on a cycle;
            // adding `bus_lat` to one edge raises RecMII by at most
            // `bus_lat`, which tightly bounds the search).
            let ii_after = if comp[s.index()] == comp[d.index()] {
                kernel.add_extra(e.index(), bus_lat);
                let rec_after = kernel
                    .min_feasible_ii(rec_base, rec_base + bus_lat, last_rec_after)
                    .expect("RecMII grows by at most the added delay");
                kernel.add_extra(e.index(), -bus_lat);
                last_rec_after = Some(rec_after);
                ii_input.max(rec_after)
            } else {
                ii_base
            };

            // max_path after delaying e (only distance-0 edges stretch it).
            let mp_after = if dep.distance == 0 {
                t.max_path_with_delay(s.index(), d.index(), dep.latency as i64, bus_lat)
            } else {
                t.max_path
            };

            let delay = (niter - 1) * (ii_after - ii_base) + (mp_after - t.max_path);
            delay * (maxsl + 1) + maxsl - t.edge_slack[e.index()] + 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_ddg::DdgBuilder;
    use gpsched_machine::OpClass;

    fn machine() -> MachineConfig {
        MachineConfig::two_cluster(32, 1, 1)
    }

    #[test]
    fn all_weights_positive() {
        let ddg = gpsched_workloads::kernels::all_kernels(100)
            .into_iter()
            .next()
            .unwrap();
        for w in edge_weights(&ddg, &machine(), 1) {
            assert!(w >= 1);
        }
    }

    #[test]
    fn recurrence_edges_outweigh_slack_edges() {
        // Recurrence a↔c (every delay costs (niter-1) cycles) vs a slack
        // side edge.
        let mut b = DdgBuilder::new("t");
        let a = b.op(OpClass::FpAdd, "a");
        let c = b.op(OpClass::FpAdd, "c");
        let side = b.op(OpClass::IntAlu, "side");
        let e_fwd = b.flow(a, c);
        let e_back = b.flow_carried(c, a, 1);
        let e_side = b.flow(a, side);
        b.trip_count(100);
        let ddg = b.build().unwrap();
        let w = edge_weights(&ddg, &machine(), 1);
        assert!(w[e_fwd.index()] > w[e_side.index()]);
        assert!(w[e_back.index()] > w[e_side.index()]);
    }

    #[test]
    fn critical_path_edges_outweigh_slack_edges() {
        // Two parallel chains joining: the long chain's edges hurt more.
        let mut b = DdgBuilder::new("t");
        let ld = b.op(OpClass::Load, "ld");
        let dv = b.op(OpClass::FpDiv, "dv"); // lat 8 chain
        let ad = b.op(OpClass::IntAlu, "ad"); // lat 1 chain
        let st = b.op(OpClass::Store, "st");
        let e_crit = b.flow(ld, dv);
        let e_slack = b.flow(ld, ad);
        b.flow(dv, st);
        b.flow(ad, st);
        b.trip_count(100);
        let ddg = b.build().unwrap();
        let w = edge_weights(&ddg, &machine(), 1);
        assert!(
            w[e_crit.index()] > w[e_slack.index()],
            "critical {} vs slack {}",
            w[e_crit.index()],
            w[e_slack.index()]
        );
    }

    #[test]
    fn higher_trip_count_amplifies_recurrence_edges() {
        let build = |n: u64| {
            let mut b = DdgBuilder::new("t");
            let a = b.op(OpClass::FpAdd, "a");
            let c = b.op(OpClass::FpAdd, "c");
            let e = b.flow(a, c);
            b.flow_carried(c, a, 1);
            b.trip_count(n);
            (b.build().unwrap(), e)
        };
        let (d_small, e1) = build(10);
        let (d_big, e2) = build(1000);
        let w_small = edge_weights(&d_small, &machine(), 1)[e1.index()];
        let w_big = edge_weights(&d_big, &machine(), 1)[e2.index()];
        assert!(w_big > w_small);
    }

    #[test]
    fn delay_dominates_slack_difference() {
        // An edge with delay ≥ 1 must outweigh ANY zero-delay edge, no
        // matter the slacks (the paper's (maxsl+1) multiplier).
        let mut b = DdgBuilder::new("t");
        // Critical chain: ld → dv → st.
        let ld = b.op(OpClass::Load, "ld");
        let dv = b.op(OpClass::FpDiv, "dv");
        let st = b.op(OpClass::Store, "st");
        let e_delay = b.flow(ld, dv);
        b.flow(dv, st);
        // A totally slack pair.
        let x = b.op(OpClass::IntAlu, "x");
        let y = b.op(OpClass::IntAlu, "y");
        let e_zero = b.flow(x, y);
        b.trip_count(100);
        let ddg = b.build().unwrap();
        let w = edge_weights(&ddg, &machine(), 1);
        assert!(w[e_delay.index()] > w[e_zero.index()]);
    }
}
