//! The multilevel partitioning driver (§3.2).

pub use crate::coarsen::MatchStrategy;
use crate::coarsen::{coarsen_to, initial_level, Level};
use crate::estimate::PartitionCost;
use crate::evaluator::CostEvaluator;
use crate::partition::Partition;
use crate::refine::{expand, refine_level, RefineOptions};
use crate::weights::edge_weights;
use gpsched_ddg::Ddg;
use gpsched_machine::MachineConfig;

/// Options of the multilevel partitioner (the ablation benches toggle
/// these).
#[derive(Clone, Copy, Debug, Default)]
pub struct PartitionOptions {
    /// Matching strategy for coarsening.
    pub strategy: MatchStrategy,
    /// Refinement knobs.
    pub refine: RefineOptions,
}

/// Result of [`partition_ddg`].
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// The cluster assignment of every op.
    pub partition: Partition,
    /// Cost estimate of that assignment (contains `IIbus`, the paper's
    /// bus-imposed II bound returned to the GP driver).
    pub cost: PartitionCost,
    /// Number of levels in the coarsening hierarchy (≥ 1).
    pub levels: usize,
}

/// Partitions `ddg` over the clusters of `machine` for the partitioning
/// input interval `ii_input` (the MII on the first call; the raised II on
/// re-partitioning calls from the GP driver).
///
/// For a unified machine this is the trivial single-cluster assignment.
///
/// # Panics
///
/// Panics if `ii_input < 1`.
pub fn partition_ddg(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii_input: i64,
    options: &PartitionOptions,
) -> PartitionResult {
    let mut ev = CostEvaluator::new(ddg, machine);
    partition_ddg_with(ddg, machine, ii_input, options, &mut ev)
}

/// [`partition_ddg`] with a caller-supplied [`CostEvaluator`], so repeated
/// partitioning calls over the same DDG — the GP driver's selective
/// re-partitioning path — reuse the evaluator's cut state buffers and
/// timing workspace instead of reallocating them per call.
///
/// # Panics
///
/// Panics if `ii_input < 1` or `ev` was built for a different DDG/machine.
pub fn partition_ddg_with(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii_input: i64,
    options: &PartitionOptions,
    ev: &mut CostEvaluator<'_>,
) -> PartitionResult {
    assert!(ii_input >= 1, "ii_input must be positive");
    assert!(
        ev.is_for(ddg, machine),
        "evaluator was built for a different DDG/machine"
    );
    let _span = gpsched_trace::span!("partition.run", "ii={ii_input}");
    let nclusters = machine.cluster_count();
    if nclusters == 1 || ddg.op_count() == 0 {
        let partition = Partition::single_cluster(ddg.op_count());
        ev.reset(ii_input, partition.assignment());
        let cost = ev.cost();
        return PartitionResult {
            partition,
            cost,
            levels: 1,
        };
    }

    // 1. Weighted graph + coarsening hierarchy.
    let levels: Vec<Level> = {
        let _span = gpsched_trace::span!("partition.coarsen");
        let weights = edge_weights(ddg, machine, ii_input);
        let finest = initial_level(ddg, &weights);
        coarsen_to(finest, nclusters, options.strategy)
    };

    // 2. Initial partition of the coarsest level: one node per cluster.
    let coarsest = levels.last().expect("hierarchy never empty");
    let mut assign: Vec<usize> = (0..coarsest.node_count()).map(|i| i % nclusters).collect();

    // 3. Uncoarsen: project and refine level by level.
    let mut cost = refine_level(
        ddg,
        machine,
        ii_input,
        coarsest,
        &mut assign,
        &options.refine,
        ev,
        None,
    );
    for idx in (0..levels.len() - 1).rev() {
        let finer = &levels[idx];
        let coarser = &levels[idx + 1];
        // Project: a finer node inherits the cluster of the coarser node
        // that contains its ops.
        let op_to_coarse = coarser.op_to_node();
        let mut finer_assign = vec![0usize; finer.node_count()];
        for (node, ops) in finer.members.iter().enumerate() {
            let op = ops[0];
            finer_assign[node] = assign[op_to_coarse[op]];
        }
        assign = finer_assign;
        // The projection leaves the op-level assignment unchanged, so the
        // previous level's final cost is this level's entry cost.
        cost = refine_level(
            ddg,
            machine,
            ii_input,
            finer,
            &mut assign,
            &options.refine,
            ev,
            Some(cost),
        );
    }

    let ops = expand(&levels[0], &assign);
    PartitionResult {
        partition: Partition::new(ops, nclusters),
        cost,
        levels: levels.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate;
    use gpsched_ddg::mii;
    use gpsched_workloads::kernels;

    #[test]
    fn unified_machine_is_trivial() {
        let ddg = kernels::daxpy(100);
        let m = MachineConfig::unified(32);
        let r = partition_ddg(&ddg, &m, 2, &PartitionOptions::default());
        assert_eq!(r.partition.cluster_count(), 1);
        assert_eq!(r.cost.comm_count, 0);
        assert_eq!(r.levels, 1);
    }

    #[test]
    fn covers_every_op_exactly_once() {
        for ddg in kernels::all_kernels(100) {
            for m in [
                MachineConfig::two_cluster(32, 1, 1),
                MachineConfig::four_cluster(64, 1, 2),
            ] {
                let ii = mii::mii(&ddg, &m);
                let r = partition_ddg(&ddg, &m, ii, &PartitionOptions::default());
                assert_eq!(r.partition.len(), ddg.op_count(), "{}", ddg.name());
                assert!(r
                    .partition
                    .assignment()
                    .iter()
                    .all(|&c| c < m.cluster_count()));
            }
        }
    }

    #[test]
    fn keeps_recurrences_together() {
        // dot product: the serial fp reduction must not cross clusters.
        let ddg = kernels::dot_product(1000);
        let m = MachineConfig::two_cluster(32, 1, 1);
        let ii = mii::mii(&ddg, &m);
        let r = partition_ddg(&ddg, &m, ii, &PartitionOptions::default());
        // The accumulator self-loop cannot be cut (self edges never are),
        // but the mul → acc chain matters: at most one value crosses.
        assert!(r.cost.comm_count <= 1, "comm {}", r.cost.comm_count);
        // No II inflation from the bus.
        assert_eq!(r.cost.ii_effective, ii);
    }

    #[test]
    fn partition_beats_naive_split_on_kernels() {
        // The multilevel result must be at least as good as a round-robin
        // assignment for every kernel.
        for ddg in kernels::all_kernels(200) {
            let m = MachineConfig::two_cluster(32, 1, 1);
            let ii = mii::mii(&ddg, &m);
            let r = partition_ddg(&ddg, &m, ii, &PartitionOptions::default());
            let naive = Partition::new((0..ddg.op_count()).map(|i| i % 2).collect(), 2);
            let naive_cost = estimate(&ddg, &m, ii, &naive);
            assert!(
                !naive_cost.better_than(&r.cost),
                "{}: naive {:?} beat multilevel {:?}",
                ddg.name(),
                naive_cost.exec_time,
                r.cost.exec_time
            );
        }
    }

    #[test]
    fn four_cluster_partition_spreads_wide_loops() {
        // The stencil is wide and resource-hungry: a good partition uses
        // more than one cluster to avoid saturating FP units.
        let ddg = kernels::stencil5(500);
        let m = MachineConfig::four_cluster(64, 1, 1);
        let ii = mii::mii(&ddg, &m);
        let r = partition_ddg(&ddg, &m, ii, &PartitionOptions::default());
        let used: std::collections::HashSet<usize> =
            r.partition.assignment().iter().copied().collect();
        assert!(used.len() >= 2, "all ops crammed into one cluster");
        // And the estimated II must not exceed what one cluster alone
        // would need (9 fp ops / 1 fp unit = 9).
        assert!(r.cost.ii_effective < 9);
    }

    #[test]
    fn greedy_strategy_also_valid() {
        let ddg = kernels::fir(300, 12);
        let m = MachineConfig::two_cluster(32, 1, 1);
        let ii = mii::mii(&ddg, &m);
        let opts = PartitionOptions {
            strategy: MatchStrategy::Greedy,
            ..PartitionOptions::default()
        };
        let r = partition_ddg(&ddg, &m, ii, &opts);
        assert_eq!(r.partition.len(), ddg.op_count());
    }

    #[test]
    fn repartition_at_higher_ii_is_not_worse() {
        // Raising the input II relaxes capacity, so the estimate cannot
        // degrade (paper: re-partitioning tries to reduce IIbus).
        let ddg = kernels::complex_multiply(400);
        let m = MachineConfig::four_cluster(32, 1, 2);
        let ii = mii::mii(&ddg, &m);
        let a = partition_ddg(&ddg, &m, ii, &PartitionOptions::default());
        let b = partition_ddg(&ddg, &m, ii + 2, &PartitionOptions::default());
        assert!(b.cost.exec_time <= a.cost.exec_time + 2 * (ddg.trip_count() as i64 - 1));
    }
}
