//! Incremental partition-cost evaluation (the §3.2.2 refinement hot path).
//!
//! The from-scratch [`estimate`](crate::estimate::estimate) walks every
//! dependence to find the cut, rebuilds the communication set, recounts
//! per-cluster resource usage and re-derives the timing analysis — for
//! *every* candidate move the refinement loop considers. Almost all of that
//! is redundant between single-node moves: only the moved node's incident
//! dependences can change cut status.
//!
//! [`CostEvaluator`] therefore keeps the current assignment's cut state
//! resident — per-dep cut flags, the `extra[]` transfer-delay vector, the
//! paper's `NComm` communication count with its per-channel interconnect
//! load ([`crate::ChannelLoad`]) and per-cluster functional-unit
//! totals — and updates it in O(degree) per [`CostEvaluator::apply`]. A
//! full [`CostEvaluator::cost`] then only pays for the timing analysis,
//! which runs through a reusable [`TimingWorkspace`] so the steady state
//! allocates nothing. [`CostEvaluator::cost_if_better`] additionally
//! screens with a cheap execution-time lower bound
//! (`(niter−1)·max(ii_input, ResMII, IIbus) + max_path_lb`, where
//! `max_path_lb` sharpens the assignment-independent `max_path₀` with the
//! cut's own transfer delays) and skips the timing analysis entirely when
//! the candidate provably cannot win.
//!
//! Candidate moves themselves never touch the resident state at all:
//! [`CostEvaluator::trial_moves`] evaluates the would-be cost of a move
//! batch under an epoch-stamped overlay (hypothetical assignment,
//! per-cluster scratch counts, per-dep cut/extra stamps for the deps
//! incident to a moved op) — bit-identical to apply → evaluate → revert,
//! without the two delta applications per rejected candidate. Only the
//! move the refinement loop finally adopts is applied.
//!
//! The evaluator is proven bit-identical to `estimate()` by a seeded
//! property test over random move/swap/revert sequences across bus, ring
//! and point-to-point machines, and `trial_moves` against its
//! apply/evaluate/revert equivalent on the same machines
//! (`tests/evaluator_equiv.rs`).

use crate::comm::ChannelLoad;
use crate::estimate::PartitionCost;
use gpsched_ddg::timing::TimingWorkspace;
use gpsched_ddg::{Ddg, DepKind};
use gpsched_machine::{MachineConfig, ResourceKind};

/// Delta-maintained cut state of one cluster assignment, able to produce
/// the exact [`PartitionCost`] of the current assignment on demand.
///
/// # Example
///
/// ```
/// use gpsched_machine::MachineConfig;
/// use gpsched_partition::{estimate, CostEvaluator, Partition};
/// use gpsched_workloads::kernels;
///
/// let ddg = kernels::daxpy(100);
/// let machine = MachineConfig::two_cluster(32, 1, 1);
/// let assign: Vec<usize> = (0..ddg.op_count()).map(|i| i % 2).collect();
/// let mut ev = CostEvaluator::new(&ddg, &machine);
/// ev.reset(2, &assign);
/// let from_scratch = estimate(&ddg, &machine, 2, &Partition::new(assign, 2));
/// assert_eq!(ev.cost(), from_scratch);
///
/// // Move op 0 to cluster 1 and back: O(degree) each, state stays exact.
/// ev.apply(0, 1);
/// ev.apply(0, 0);
/// assert_eq!(ev.cost(), from_scratch);
/// ```
#[derive(Debug)]
pub struct CostEvaluator<'a> {
    ddg: &'a Ddg,
    machine: &'a MachineConfig,
    nclusters: usize,
    /// Uniform single-channel interconnect fast path (the shared bus,
    /// pipelined or not): occupancy one communicated value books and the
    /// channel capacity. `net_cap == 0` selects the general per-channel
    /// accounting instead ([`ChannelLoad`], rebuilt on demand).
    net_occ: i64,
    net_cap: i64,
    ii_input: i64,
    /// Per-op cluster assignment.
    assign: Vec<usize>,
    /// Per-dep: endpoints in different clusters.
    cut: Vec<bool>,
    /// The cut deps themselves, unordered (swap-removal), so the
    /// cut-slack sum in [`Self::assemble`] is O(cut) instead of O(E).
    /// The sum is order-independent (exact integer addition), so the
    /// unordered walk is bit-identical to the per-dep scan.
    cut_list: Vec<u32>,
    /// `cut_list` position of each cut dep; `u32::MAX` for uncut ones.
    cut_pos: Vec<u32>,
    /// Per-dep transfer delay charged by the timing analysis (the
    /// topology's pairwise latency on cut flow deps, 0 elsewhere).
    extra: Vec<i64>,
    /// The paper's `NComm`: distinct (producer, consumer-cluster) pairs
    /// over cut flow deps.
    comm_count: usize,
    /// `consumers_in[op · nclusters + c]` = flow out-edges of `op` whose
    /// consumer sits in cluster `c`.
    consumers_in: Vec<u32>,
    /// `counts[cluster][kind]` = assigned ops occupying that resource.
    counts: Vec<[i64; 3]>,
    /// `max_path` of the bus-free DDG — a lower bound on any assignment's
    /// `max_path`, used by the screen.
    base_max_path: i64,
    /// Per-dep longest distance-0 path *through* that dep at zero extras
    /// (`start₀[src] + latency + tail₀[dst]`), or `i64::MIN` for deps that
    /// cannot stretch `max_path` (loop-carried ones). Charging `extra` on
    /// dep `e` lengthens every path through it, so
    /// `max_path ≥ p0[e] + extra[e]` — the screen's per-candidate
    /// sharpening of `base_max_path`.
    p0: Vec<i64>,
    /// The deps worth scanning for that sharpening: near-critical ones,
    /// where even the largest transfer delay the topology can charge
    /// (`p0[e] + max pair latency`) clears `base_max_path`. Sorted by
    /// `p0` descending so uniform-latency machines can stop at the first
    /// cut dep.
    screen_deps: Vec<u32>,
    /// Endpoints of each `screen_deps` entry, resolved once (the overlay
    /// screen would otherwise chase the dep table per candidate).
    screen_ends: Vec<(u32, u32)>,
    /// Per-op resource kind index, resolved once (the move path would
    /// otherwise chase the op table per moved op).
    kind_of: Vec<u8>,
    /// Per-dep `kind == Flow`, resolved once for the same reason.
    is_flow: Vec<bool>,
    /// Scratch: producers whose communication contribution is in flux.
    touched: Vec<usize>,
    /// Epoch stamps deduplicating `touched` without sorting: op `p` is
    /// already collected iff `touch_mark[p] == touch_epoch`.
    touch_mark: Vec<u64>,
    touch_epoch: u64,
    /// Epoch-stamped hypothetical assignment overlay for
    /// [`Self::trial_moves`]: op `p` is pending a move to `move_to[p]`
    /// iff `move_mark[p] == move_epoch`.
    move_mark: Vec<u64>,
    move_to: Vec<u32>,
    move_epoch: u64,
    /// Scratch per-cluster counts for the trial resource bound.
    counts_scratch: Vec<[i64; 3]>,
    /// Epoch-stamped per-dep overlay for [`Self::trial_moves`]: dep `e`
    /// has overlay cut/extra values iff `dep_mark[e] == dep_epoch`; every
    /// other dep keeps its resident `cut[e]`/`extra[e]`. Only deps
    /// incident to a moved op can differ, so the stamping pass is
    /// O(moved degree).
    dep_mark: Vec<u64>,
    dep_extra: Vec<i64>,
    dep_cut: Vec<bool>,
    dep_epoch: u64,
    /// The deps stamped in the current trial (deduplicated via
    /// `dep_mark`), for the cut-slack/cut-size fixup in
    /// [`Self::assemble_overlay`].
    deps_touched: Vec<u32>,
    ws: TimingWorkspace,
    /// Per-channel interconnect load of those pairs (the generalized
    /// `IIbus` is its [`ChannelLoad::bound`]).
    chan: ChannelLoad,
    /// Row-major pairwise transfer latencies (`pair_lat[from·n + to]`),
    /// resolved once so cut refreshes index instead of dispatching.
    pair_lat: Vec<i64>,
    /// When every cross-cluster pair has the same latency (shared bus,
    /// uniform p2p), that scalar; −1 for asymmetric topologies. Keeps the
    /// per-edge cut refresh a register read on the paper's machines.
    uniform_lat: i64,
    /// Batched `partition.*` screen tallies, flushed when the evaluator
    /// drops. The refinement screen rejects tens of thousands of
    /// candidates per run; per-rejection atomic counters were a
    /// measurable share of enabled-tracing overhead.
    stats: EvalStats,
}

/// Batched `partition.*` tallies (see [`gpsched_trace::BatchCounter`]:
/// clones start at zero, drop flushes).
#[derive(Clone, Debug)]
struct EvalStats {
    screen_rejected: gpsched_trace::BatchCounter,
    exec_rejected: gpsched_trace::BatchCounter,
}

impl Default for EvalStats {
    fn default() -> Self {
        EvalStats {
            screen_rejected: gpsched_trace::BatchCounter::new("partition.screen_rejected"),
            exec_rejected: gpsched_trace::BatchCounter::new("partition.exec_rejected"),
        }
    }
}

/// Per-cluster resource MII of `counts` on `machine` (mirrors
/// [`gpsched_ddg::mii::res_mii_clustered`], including its
/// [`INFEASIBLE_RES_BOUND`](gpsched_ddg::mii::INFEASIBLE_RES_BOUND)
/// sentinel for clusters holding ops they have no units for).
fn res_bound_of(machine: &MachineConfig, counts: &[[i64; 3]]) -> i64 {
    let mut bound = 1i64;
    for (c, per_kind) in counts.iter().enumerate() {
        for kind in ResourceKind::ALL {
            let ops = per_kind[kind.index()];
            if ops == 0 {
                continue;
            }
            let units = machine.cluster(c).units(kind) as i64;
            if units == 0 {
                // Infeasible assignment: ops of a kind the cluster cannot
                // execute. Report the sentinel bound so refinement sees a
                // dominating cost and moves the ops out, instead of
                // panicking (reachable via heterogeneous `.machine` input).
                return gpsched_ddg::mii::INFEASIBLE_RES_BOUND;
            }
            bound = bound.max((ops + units - 1) / units);
        }
    }
    bound
}

/// One move batch for [`CostEvaluator::trial_moves`]: every op in `ops`
/// hypothetically moves to `cluster`.
///
/// `boundary` lets callers that move *groups* of co-resident ops (the
/// refinement loop's coarse macro-nodes) exempt the group's interior from
/// the overlay's edge walks: it must contain every op of `ops` that has a
/// dependence endpoint outside the batch's co-moving, co-resident group.
/// An op all of whose dependence neighbors sit in the same batch, move to
/// the same destination and share the op's resident cluster can change
/// neither its communication contribution nor any incident dep's cut
/// status — only its resource slot moves. Callers without that structure
/// pass `boundary = ops`.
#[derive(Clone, Copy, Debug)]
pub struct TrialBatch<'m> {
    /// Every op of the batch.
    pub ops: &'m [usize],
    /// The subset of `ops` with a dependence leaving the co-moving group
    /// (see above). Must not contain duplicates.
    pub boundary: &'m [usize],
    /// Destination cluster for the whole batch.
    pub cluster: usize,
}

/// The common cross-cluster latency of `machine`, or −1 when pairs
/// differ (ring, non-uniform p2p).
fn uniform_lat(machine: &MachineConfig) -> i64 {
    let n = machine.cluster_count();
    let mut common = None;
    for from in 0..n {
        for to in 0..n {
            if from == to {
                continue;
            }
            let l = machine.transfer_latency(from, to);
            match common {
                None => common = Some(l),
                Some(c) if c == l => {}
                Some(_) => return -1,
            }
        }
    }
    common.unwrap_or(0)
}

impl<'a> CostEvaluator<'a> {
    /// Creates an evaluator for `ddg` on `machine`, initially with every op
    /// in cluster 0 and `ii_input = 1`; call [`CostEvaluator::reset`] to
    /// load a real assignment.
    pub fn new(ddg: &'a Ddg, machine: &'a MachineConfig) -> Self {
        let mut ws = TimingWorkspace::new();
        ws.prepare(ddg);
        // `max_path` does not depend on the II (only distance-0 edges
        // contribute), so probe at the always-feasible total latency.
        let (base_max_path, p0) = {
            let t = ws
                .analyze(ddg, ddg.total_latency(), |_| 0)
                .expect("total latency is always recurrence-feasible");
            let p0: Vec<i64> = ddg
                .dep_ids()
                .map(|e| {
                    let dep = ddg.dep(e);
                    if dep.distance != 0 {
                        return i64::MIN;
                    }
                    let (s, d) = ddg.dep_endpoints(e);
                    t.start[s.index()] + dep.latency as i64 + t.tail[d.index()]
                })
                .collect();
            (t.max_path, p0)
        };
        let is_flow: Vec<bool> = ddg
            .dep_ids()
            .map(|e| ddg.dep(e).kind == DepKind::Flow)
            .collect();
        let max_lat = machine
            .transfer_latency_table()
            .into_iter()
            .max()
            .unwrap_or(0);
        // Only flow deps ever carry an extra, so only they can sharpen.
        // Sorted by `p0` descending: on uniform-latency machines every cut
        // dep sharpens by the same constant, so the scan can stop at the
        // first cut one — the maximum is decided there.
        let mut screen_deps: Vec<u32> = (0..p0.len())
            .filter(|&e| is_flow[e] && p0[e] != i64::MIN && p0[e] + max_lat > base_max_path)
            .map(|e| e as u32)
            .collect();
        screen_deps.sort_by_key(|&e| std::cmp::Reverse(p0[e as usize]));
        let screen_ends: Vec<(u32, u32)> = screen_deps
            .iter()
            .map(|&e| {
                let (s, d) = ddg.dep_endpoints(gpsched_graph::EdgeId::from_index(e as usize));
                (s.index() as u32, d.index() as u32)
            })
            .collect();
        let chan = ChannelLoad::new(machine);
        let (net_occ, net_cap) = chan.uniform_single_channel().unwrap_or((0, 0));
        let mut ev = CostEvaluator {
            ddg,
            machine,
            nclusters: machine.cluster_count(),
            net_occ,
            net_cap,
            ii_input: 1,
            stats: EvalStats::default(),
            assign: Vec::new(),
            cut: Vec::new(),
            cut_list: Vec::new(),
            cut_pos: vec![u32::MAX; ddg.dep_count()],
            extra: Vec::new(),
            comm_count: 0,
            chan,
            pair_lat: machine.transfer_latency_table(),
            uniform_lat: uniform_lat(machine),
            consumers_in: Vec::new(),
            counts: Vec::new(),
            base_max_path,
            p0,
            screen_deps,
            screen_ends,
            kind_of: ddg
                .op_ids()
                .map(|op| ddg.op(op).class.resource().index() as u8)
                .collect(),
            is_flow,
            touched: Vec::new(),
            touch_mark: vec![0; ddg.op_count()],
            touch_epoch: 0,
            move_mark: vec![0; ddg.op_count()],
            move_to: vec![0; ddg.op_count()],
            move_epoch: 0,
            counts_scratch: Vec::new(),
            dep_mark: vec![0; ddg.dep_count()],
            dep_extra: vec![0; ddg.dep_count()],
            dep_cut: vec![false; ddg.dep_count()],
            dep_epoch: 0,
            deps_touched: Vec::new(),
            ws,
        };
        let zeros = vec![0usize; ddg.op_count()];
        ev.reset(1, &zeros);
        ev
    }

    /// Reloads the evaluator with a fresh assignment and partitioning input
    /// interval, reusing every buffer. O(V·nclusters + E).
    ///
    /// # Panics
    ///
    /// Panics if `assign` does not cover the DDG's ops, an entry is out of
    /// cluster range, or `ii_input < 1`.
    pub fn reset(&mut self, ii_input: i64, assign: &[usize]) {
        assert_eq!(assign.len(), self.ddg.op_count(), "partition/ddg mismatch");
        assert!(ii_input >= 1, "ii_input must be positive");
        assert!(
            assign.iter().all(|&c| c < self.nclusters),
            "assignment entry out of range"
        );
        self.ii_input = ii_input;
        self.assign.clear();
        self.assign.extend_from_slice(assign);

        self.counts.clear();
        self.counts.resize(self.nclusters, [0i64; 3]);
        for op in self.ddg.op_ids() {
            let k = self.ddg.op(op).class.resource().index();
            self.counts[assign[op.index()]][k] += 1;
        }

        self.consumers_in.clear();
        self.consumers_in
            .resize(self.ddg.op_count() * self.nclusters, 0);
        self.cut.clear();
        self.extra.clear();
        self.cut_list.clear();
        self.cut_pos.fill(u32::MAX);
        for e in self.ddg.dep_ids() {
            let (s, d) = self.ddg.dep_endpoints(e);
            let dep = self.ddg.dep(e);
            let cut = assign[s.index()] != assign[d.index()];
            self.cut.push(cut);
            self.extra.push(if cut && dep.kind == DepKind::Flow {
                if self.uniform_lat >= 0 {
                    self.uniform_lat
                } else {
                    self.pair_lat[assign[s.index()] * self.nclusters + assign[d.index()]]
                }
            } else {
                0
            });
            if cut {
                self.cut_pos[e.index()] = self.cut_list.len() as u32;
                self.cut_list.push(e.index() as u32);
            }
            if dep.kind == DepKind::Flow {
                self.consumers_in[s.index() * self.nclusters + assign[d.index()]] += 1;
            }
        }
        self.comm_count = (0..self.ddg.op_count()).map(|p| self.comm_contrib(p)).sum();
    }

    /// The partitioning input interval of the current load.
    pub fn ii_input(&self) -> i64 {
        self.ii_input
    }

    /// Returns `true` if this evaluator was built for exactly this
    /// DDG/machine pair (pointer identity — the evaluator's resident state
    /// is meaningless against any other graph).
    pub fn is_for(&self, ddg: &Ddg, machine: &MachineConfig) -> bool {
        std::ptr::eq(self.ddg, ddg) && std::ptr::eq(self.machine, machine)
    }

    /// The current per-op assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assign
    }

    /// Clusters the producer `p` must send its value to (everything except
    /// its own cluster counts — a value sent once to a cluster serves all
    /// consumers there).
    #[inline]
    fn comm_contrib(&self, p: usize) -> usize {
        let row = &self.consumers_in[p * self.nclusters..(p + 1) * self.nclusters];
        let home = self.assign[p];
        row.iter()
            .enumerate()
            .filter(|&(c, &n)| n > 0 && c != home)
            .count()
    }

    /// The cluster op `op` sits in under the [`Self::trial_moves`] overlay
    /// at epoch `ep`.
    #[inline]
    fn overlay_cluster(&self, op: usize, ep: u64) -> usize {
        if self.move_mark[op] == ep {
            self.move_to[op] as usize
        } else {
            self.assign[op]
        }
    }

    /// [`Self::comm_contrib`] under the [`Self::trial_moves`] overlay at
    /// epoch `ep`: `p`'s consumer clusters are recounted from its flow
    /// out-edges with pending moves applied. O(out-degree), read-only.
    fn comm_contrib_overlay(&self, p: usize, ep: u64) -> usize {
        let home = self.overlay_cluster(p, ep);
        let mut mask: u64 = 0;
        for (e, d) in self
            .ddg
            .graph()
            .out_edges(gpsched_graph::NodeId::from_index(p))
        {
            if self.is_flow[e.index()] {
                let c = self.overlay_cluster(d.index(), ep);
                if c != home {
                    mask |= 1 << c;
                }
            }
        }
        mask.count_ones() as usize
    }

    /// The interconnect-imposed II bound of the current communication —
    /// the generalized `IIbus`. On uniform single-channel topologies (the
    /// paper's bus) it is a closed form over the resident `NComm`, so the
    /// refinement hot path pays nothing for the open machine axis; other
    /// topologies rebuild the per-channel loads from the resident
    /// consumer table.
    #[inline]
    fn interconnect_bound(&mut self) -> i64 {
        if self.net_cap > 0 {
            ((self.comm_count as i64 * self.net_occ + self.net_cap - 1) / self.net_cap).max(1)
        } else {
            self.channel_bound_general()
        }
    }

    /// The general per-channel bound: every (producer, consumer-cluster)
    /// value books its route on [`ChannelLoad`]. O(V · nclusters).
    #[cold]
    fn channel_bound_general(&mut self) -> i64 {
        gpsched_trace::counter!("partition.evaluator_rebuilds");
        self.chan.clear();
        for p in 0..self.ddg.op_count() {
            let home = self.assign[p];
            for c in 0..self.nclusters {
                if c != home && self.consumers_in[p * self.nclusters + c] > 0 {
                    self.chan.add_pair(home, c);
                }
            }
        }
        self.chan.bound()
    }

    /// Moves op `op` to `cluster`, updating all resident state in
    /// O(degree · nclusters). Moving an op to its current cluster is a
    /// no-op; applying the inverse move restores the previous state
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `op` or `cluster` is out of range.
    pub fn apply(&mut self, op: usize, cluster: usize) {
        self.apply_many(std::slice::from_ref(&op), cluster);
    }

    /// Moves every op in `ops` to `cluster` — equivalent to applying them
    /// one by one (the resident state is a pure function of the
    /// assignment), but the communication recount and cut refreshes are
    /// shared across the batch. This is what refinement moves of coarse
    /// macro-nodes (whole member sets at once) go through.
    ///
    /// # Panics
    ///
    /// Panics if an op or `cluster` is out of range.
    pub fn apply_many(&mut self, ops: &[usize], cluster: usize) {
        assert!(cluster < self.nclusters, "cluster out of range");
        // Producers whose (producer, consumer-cluster) set may shift: the
        // moving ops (their home cluster changes) and their flow producers
        // (a consumer moves). Epoch stamps deduplicate without sorting.
        self.touch_epoch += 1;
        let ep = self.touch_epoch;
        self.touched.clear();
        for &op in ops {
            if self.assign[op] == cluster {
                continue;
            }
            if self.touch_mark[op] != ep {
                self.touch_mark[op] = ep;
                self.touched.push(op);
            }
            for (e, p) in self
                .ddg
                .graph()
                .in_edges(gpsched_graph::NodeId::from_index(op))
            {
                if self.is_flow[e.index()] && self.touch_mark[p.index()] != ep {
                    self.touch_mark[p.index()] = ep;
                    self.touched.push(p.index());
                }
            }
        }
        if self.touched.is_empty() {
            return; // every move was a no-op
        }
        for i in 0..self.touched.len() {
            self.comm_count -= self.comm_contrib(self.touched[i]);
        }
        for &op in ops {
            let old = self.assign[op];
            if old == cluster {
                continue;
            }
            let k = self.kind_of[op] as usize;
            self.counts[old][k] -= 1;
            self.counts[cluster][k] += 1;
            for (e, p) in self
                .ddg
                .graph()
                .in_edges(gpsched_graph::NodeId::from_index(op))
            {
                if self.is_flow[e.index()] {
                    self.consumers_in[p.index() * self.nclusters + old] -= 1;
                    self.consumers_in[p.index() * self.nclusters + cluster] += 1;
                }
            }
            self.assign[op] = cluster;
        }
        for i in 0..self.touched.len() {
            self.comm_count += self.comm_contrib(self.touched[i]);
        }

        // Cut status of incident deps, refreshed once every assignment has
        // settled (edges inside the batch come up twice; the refresh is
        // idempotent). Self-loops are handled once, in the in-edge pass;
        // they are never cut.
        for &op in ops {
            let opid = gpsched_graph::NodeId::from_index(op);
            for (e, p) in self.ddg.graph().in_edges(opid) {
                self.refresh_cut(e.index(), p.index(), op);
            }
            for (e, d) in self.ddg.graph().out_edges(opid) {
                if d.index() != op {
                    self.refresh_cut(e.index(), op, d.index());
                }
            }
        }
    }

    #[inline]
    fn refresh_cut(&mut self, e: usize, s: usize, d: usize) {
        let now = self.assign[s] != self.assign[d];
        let was = self.cut[e];
        if was != now {
            self.cut[e] = now;
            if now {
                self.cut_pos[e] = self.cut_list.len() as u32;
                self.cut_list.push(e as u32);
            } else {
                let pos = self.cut_pos[e] as usize;
                self.cut_list.swap_remove(pos);
                if let Some(&moved) = self.cut_list.get(pos) {
                    self.cut_pos[moved as usize] = pos as u32;
                }
                self.cut_pos[e] = u32::MAX;
            }
        }
        self.extra[e] = if now && self.is_flow[e] {
            if self.uniform_lat >= 0 {
                self.uniform_lat
            } else {
                self.pair_lat[self.assign[s] * self.nclusters + self.assign[d]]
            }
        } else {
            0
        };
    }

    /// Per-cluster resource MII of the current assignment (mirrors
    /// [`gpsched_ddg::mii::res_mii_clustered`], from the resident counts,
    /// including the infeasible-cluster sentinel).
    fn res_bound(&self) -> i64 {
        res_bound_of(self.machine, &self.counts)
    }

    /// The exact [`PartitionCost`] of the current assignment — bit-identical
    /// to `estimate(ddg, machine, ii_input, partition)`, but the cut metrics
    /// come from the resident state and the timing probe runs through the
    /// reusable workspace.
    pub fn cost(&mut self) -> PartitionCost {
        let ii_bus = self.interconnect_bound();
        let lower = self.ii_input.max(self.res_bound()).max(ii_bus);
        let ii = self.probe_ii(lower);
        self.assemble(ii_bus, ii)
    }

    /// First feasible II at or above `lower` for the resident cut, probing
    /// with the forward-only analysis (the slack half stays pending until
    /// [`Self::assemble`] needs it).
    fn probe_ii(&mut self, lower: i64) -> i64 {
        let mut ii = lower;
        let (ws, extra, ddg) = (&mut self.ws, &self.extra, self.ddg);
        loop {
            if ws.analyze_exec(ddg, ii, |e| extra[e.index()]).is_some() {
                return ii;
            }
            ii += 1;
        }
    }

    /// Builds the [`PartitionCost`] for the analysis [`Self::probe_ii`]
    /// left resident, completing its slack half on demand.
    fn assemble(&mut self, ii_bus: i64, ii: i64) -> PartitionCost {
        self.ws.complete_slack();
        let t = self.ws.last();
        let cut_slack: i64 = self
            .cut_list
            .iter()
            .map(|&e| t.edge_slack[e as usize])
            .sum();
        PartitionCost {
            comm_count: self.comm_count,
            ii_bus,
            ii_effective: ii,
            max_path: t.max_path,
            exec_time: self.ddg.execution_time(ii, t.max_path),
            cut_slack,
            cut_size: self.cut_list.len(),
        }
    }

    /// [`CostEvaluator::cost`], but screened: returns the cost only when the
    /// current assignment is strictly [better than](PartitionCost::better_than)
    /// `than`, and skips the timing analysis whenever the cheap lower bound
    /// `(niter−1)·max(ii_input, ResMII, IIbus) + max_path_lb` already
    /// exceeds `than.exec_time` (the candidate then cannot win: its
    /// `exec_time` is at least the bound). `max_path_lb` sharpens the
    /// assignment-independent `max_path₀` with the resident cut's transfer
    /// delays: every extra charged on a distance-0 dep lengthens the paths
    /// through it, so `max_path ≥ p0[e] + extra[e]` for each such dep.
    pub fn cost_if_better(&mut self, than: &PartitionCost) -> Option<PartitionCost> {
        let ii_bus = self.interconnect_bound();
        let lower = self.ii_input.max(self.res_bound()).max(ii_bus);
        let mut max_path_lb = self.base_max_path;
        for &e in &self.screen_deps {
            let x = self.extra[e as usize];
            if x > 0 {
                max_path_lb = max_path_lb.max(self.p0[e as usize] + x);
                if self.uniform_lat >= 0 {
                    // Descending `p0` and a constant sharpening term: the
                    // first cut dep decides the maximum.
                    break;
                }
            }
        }
        if self.ddg.execution_time(lower, max_path_lb) > than.exec_time {
            self.stats.screen_rejected.add(1);
            return None;
        }
        // Forward-only probe: when the exact execution time already loses,
        // the lexicographic comparison is decided and the reverse solve
        // behind the slack tiebreak never runs.
        let ii = self.probe_ii(lower);
        if self.ddg.execution_time(ii, self.ws.last().max_path) > than.exec_time {
            self.stats.exec_rejected.add(1);
            return None;
        }
        let cost = self.assemble(ii_bus, ii);
        cost.better_than(than).then_some(cost)
    }

    /// [`Self::cost_if_better`] of a *hypothetical* assignment: the current
    /// one with the given move batches applied — evaluated entirely under
    /// an epoch-stamped overlay, without mutating the resident state.
    /// Bit-identical to apply → [`Self::cost_if_better`] → revert (the
    /// cost is a pure function of the assignment), but a rejected
    /// candidate costs one read-only pass instead of two full delta
    /// applications:
    ///
    /// * the resource bound comes from scratch per-cluster counts, and
    ///   rejects together with the path bound *before* any edge is
    ///   walked;
    /// * `NComm` swaps the boundary ops' (and their flow producers')
    ///   contributions for an overlay recount;
    /// * the timing probe and the cut-slack tiebreak read per-dep overlay
    ///   cut/extra values stamped for the deps incident to a boundary
    ///   op — every other dep resolves to the resident state.
    ///
    /// Callers that adopt the winning candidate still apply it (e.g. via
    /// [`Self::apply_many`]); the replay lands on exactly the evaluated
    /// cost. Machines with more than 64 clusters overflow the overlay
    /// masks and take a resident apply/evaluate/revert fallback instead.
    pub fn trial_moves<'m>(
        &mut self,
        moves: impl IntoIterator<Item = TrialBatch<'m>>,
        than: &PartitionCost,
    ) -> Option<PartitionCost> {
        if self.nclusters > 64 {
            return self.trial_moves_fallback(moves, than);
        }
        self.move_epoch += 1;
        let ep = self.move_epoch;
        self.touch_epoch += 1;
        let rows_ep = self.touch_epoch;
        self.counts_scratch.clone_from(&self.counts);
        self.touched.clear();
        let mut any_change = false;
        for TrialBatch {
            ops,
            boundary,
            cluster,
        } in moves
        {
            debug_assert!(cluster < self.nclusters, "cluster out of range");
            for &op in ops {
                self.move_mark[op] = ep;
                self.move_to[op] = cluster as u32;
                let old = self.assign[op];
                if old != cluster {
                    // Pre-marking each *moving* batch op exempts the
                    // interior ones (their communication provably cannot
                    // change) from the producer recount below and keeps
                    // the boundary ones from being swapped twice. A no-op
                    // member (`old == cluster`) must NOT be exempted: it
                    // never enters `touched`, so the producer walk is the
                    // only place its contribution gets re-counted when a
                    // consumer in the batch moves away from it.
                    self.touch_mark[op] = rows_ep;
                    let k = self.kind_of[op] as usize;
                    self.counts_scratch[old][k] -= 1;
                    self.counts_scratch[cluster][k] += 1;
                    any_change = true;
                }
            }
            for &op in boundary {
                if self.assign[op] != cluster {
                    self.touched.push(op);
                }
            }
        }
        if !any_change {
            // Every move was a no-op: the trial assignment is the current
            // one, which is never *strictly* better than the threshold.
            return None;
        }

        // Resource + critical-path screen, before any edge is walked: the
        // execution-time bound only tightens once the interconnect term
        // joins, so a candidate rejected here is rejected either way.
        let lower0 = self
            .ii_input
            .max(res_bound_of(self.machine, &self.counts_scratch));
        let mut max_path_lb = self.base_max_path;
        for (&e, &(s, d)) in self.screen_deps.iter().zip(&self.screen_ends) {
            let (cs, cd) = (
                self.overlay_cluster(s as usize, ep),
                self.overlay_cluster(d as usize, ep),
            );
            if cs != cd {
                let x = if self.uniform_lat >= 0 {
                    self.uniform_lat
                } else {
                    self.pair_lat[cs * self.nclusters + cd]
                };
                if x > 0 {
                    max_path_lb = max_path_lb.max(self.p0[e as usize] + x);
                    if self.uniform_lat >= 0 {
                        // Descending `p0`, constant term: decided here.
                        break;
                    }
                }
            }
        }
        if self.ddg.execution_time(lower0, max_path_lb) > than.exec_time {
            self.stats.screen_rejected.add(1);
            return None;
        }

        // Interconnect term: only the boundary ops and their flow
        // producers can change communication, so the trial `NComm` is the
        // resident count with their contributions swapped for an overlay
        // recount. `touch_mark` afterwards stamps exactly the ops whose
        // consumer table rows are stale under the overlay.
        let mut comm = self.comm_count;
        for i in 0..self.touched.len() {
            let op = self.touched[i];
            comm = comm - self.comm_contrib(op) + self.comm_contrib_overlay(op, ep);
            for (e, p) in self
                .ddg
                .graph()
                .in_edges(gpsched_graph::NodeId::from_index(op))
            {
                if self.is_flow[e.index()] && self.touch_mark[p.index()] != rows_ep {
                    self.touch_mark[p.index()] = rows_ep;
                    comm = comm - self.comm_contrib(p.index())
                        + self.comm_contrib_overlay(p.index(), ep);
                }
            }
        }
        let ii_bus = if self.net_cap > 0 {
            ((comm as i64 * self.net_occ + self.net_cap - 1) / self.net_cap).max(1)
        } else {
            self.channel_bound_overlay(ep, rows_ep)
        };
        if self.ddg.execution_time(lower0.max(ii_bus), max_path_lb) > than.exec_time {
            self.stats.screen_rejected.add(1);
            return None;
        }
        let lower = lower0.max(ii_bus);

        // Per-dep overlay for the timing probe: only deps incident to a
        // boundary op can change cut status or transfer delay (interior
        // deps keep both endpoints co-resident).
        self.dep_epoch += 1;
        let dep_ep = self.dep_epoch;
        self.deps_touched.clear();
        for i in 0..self.touched.len() {
            let op = self.touched[i];
            let id = gpsched_graph::NodeId::from_index(op);
            for (e, p) in self.ddg.graph().in_edges(id) {
                self.stamp_dep(e.index(), p.index(), op, ep, dep_ep);
            }
            for (e, d) in self.ddg.graph().out_edges(id) {
                if d.index() != op {
                    self.stamp_dep(e.index(), op, d.index(), ep, dep_ep);
                }
            }
        }

        let ii = {
            let (ws, extra, ddg) = (&mut self.ws, &self.extra, self.ddg);
            let (dep_mark, dep_extra) = (&self.dep_mark, &self.dep_extra);
            let mut ii = lower;
            loop {
                let overlaid = |e: gpsched_graph::EdgeId| {
                    let i = e.index();
                    if dep_mark[i] == dep_ep {
                        dep_extra[i]
                    } else {
                        extra[i]
                    }
                };
                if ws.analyze_exec(ddg, ii, overlaid).is_some() {
                    break ii;
                }
                ii += 1;
            }
        };
        if self.ddg.execution_time(ii, self.ws.last().max_path) > than.exec_time {
            self.stats.exec_rejected.add(1);
            return None;
        }
        let cost = self.assemble_overlay(ii_bus, ii, comm, dep_ep);
        cost.better_than(than).then_some(cost)
    }

    /// Stamps dep `e` (endpoints `s → d`) into the trial overlay with its
    /// cut status and transfer delay under move epoch `ep`, once per trial
    /// (`dep_mark` deduplicates deps seen from both endpoints).
    fn stamp_dep(&mut self, e: usize, s: usize, d: usize, ep: u64, dep_ep: u64) {
        if self.dep_mark[e] == dep_ep {
            return;
        }
        self.dep_mark[e] = dep_ep;
        let (cs, cd) = (self.overlay_cluster(s, ep), self.overlay_cluster(d, ep));
        let now = cs != cd;
        self.dep_cut[e] = now;
        self.dep_extra[e] = if now && self.is_flow[e] {
            if self.uniform_lat >= 0 {
                self.uniform_lat
            } else {
                self.pair_lat[cs * self.nclusters + cd]
            }
        } else {
            0
        };
        self.deps_touched.push(e as u32);
    }

    /// [`Self::channel_bound_general`] under the trial overlay: producers
    /// whose consumer rows are stale (`touch_mark == rows_ep`) are
    /// recounted from their flow out-edges; everyone else books straight
    /// from the resident consumer table.
    #[cold]
    fn channel_bound_overlay(&mut self, ep: u64, rows_ep: u64) -> i64 {
        gpsched_trace::counter!("partition.evaluator_rebuilds");
        self.chan.clear();
        for p in 0..self.ddg.op_count() {
            if self.touch_mark[p] == rows_ep {
                let home = self.overlay_cluster(p, ep);
                let mut mask: u64 = 0;
                for (e, d) in self
                    .ddg
                    .graph()
                    .out_edges(gpsched_graph::NodeId::from_index(p))
                {
                    if self.is_flow[e.index()] {
                        let c = self.overlay_cluster(d.index(), ep);
                        if c != home {
                            mask |= 1 << c;
                        }
                    }
                }
                while mask != 0 {
                    let c = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    self.chan.add_pair(home, c);
                }
            } else {
                let home = self.assign[p];
                for c in 0..self.nclusters {
                    if c != home && self.consumers_in[p * self.nclusters + c] > 0 {
                        self.chan.add_pair(home, c);
                    }
                }
            }
        }
        self.chan.bound()
    }

    /// [`Self::assemble`] for a trial: the resident cut flags drive the
    /// slack sum, then the stamped deps whose overlay cut status differs
    /// fix up the slack and the cut size.
    fn assemble_overlay(
        &mut self,
        ii_bus: i64,
        ii: i64,
        comm: usize,
        dep_ep: u64,
    ) -> PartitionCost {
        self.ws.complete_slack();
        let t = self.ws.last();
        let mut cut_slack: i64 = self
            .cut_list
            .iter()
            .map(|&e| t.edge_slack[e as usize])
            .sum();
        let mut cut_size = self.cut_list.len();
        for &e in &self.deps_touched {
            let e = e as usize;
            debug_assert_eq!(self.dep_mark[e], dep_ep);
            let (was, now) = (self.cut[e], self.dep_cut[e]);
            if was != now {
                if now {
                    cut_slack += t.edge_slack[e];
                    cut_size += 1;
                } else {
                    cut_slack -= t.edge_slack[e];
                    cut_size -= 1;
                }
            }
        }
        PartitionCost {
            comm_count: comm,
            ii_bus,
            ii_effective: ii,
            max_path: t.max_path,
            exec_time: self.ddg.execution_time(ii, t.max_path),
            cut_slack,
            cut_size,
        }
    }

    /// Resident-state fallback for [`Self::trial_moves`] on machines whose
    /// cluster count overflows the u64 overlay masks: apply the batches,
    /// evaluate, revert. Same result, not overlay-cheap.
    #[cold]
    fn trial_moves_fallback<'m>(
        &mut self,
        moves: impl IntoIterator<Item = TrialBatch<'m>>,
        than: &PartitionCost,
    ) -> Option<PartitionCost> {
        let mut saved: Vec<(usize, usize)> = Vec::new();
        for TrialBatch { ops, cluster, .. } in moves {
            for &op in ops {
                saved.push((op, self.assign[op]));
            }
            self.apply_many(ops, cluster);
        }
        let cost = self.cost_if_better(than);
        // Reverse order restores ops moved by multiple batches exactly.
        for &(op, old) in saved.iter().rev() {
            self.apply(op, old);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::estimate;
    use crate::partition::Partition;
    use gpsched_ddg::DdgBuilder;
    use gpsched_machine::OpClass;

    fn chain_ddg() -> Ddg {
        let mut b = DdgBuilder::new("t");
        let x = b.op(OpClass::Load, "x");
        let y = b.op(OpClass::FpMul, "y");
        let z = b.op(OpClass::FpAdd, "z");
        let w = b.op(OpClass::Store, "w");
        b.flow(x, y);
        b.flow(y, z);
        b.flow(z, w);
        b.flow_carried(z, y, 1);
        b.mem(w, x, 1);
        b.trip_count(100);
        b.build().unwrap()
    }

    #[test]
    fn matches_estimate_on_fixed_assignments() {
        let ddg = chain_ddg();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let mut ev = CostEvaluator::new(&ddg, &m);
        for assign in [
            vec![0, 0, 0, 0],
            vec![0, 1, 1, 0],
            vec![1, 0, 1, 0],
            vec![0, 0, 1, 1],
        ] {
            ev.reset(1, &assign);
            let p = Partition::new(assign.clone(), 2);
            assert_eq!(ev.cost(), estimate(&ddg, &m, 1, &p), "{assign:?}");
        }
    }

    #[test]
    fn moves_track_estimate_exactly() {
        let ddg = chain_ddg();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let mut ev = CostEvaluator::new(&ddg, &m);
        let mut assign = vec![0usize, 0, 0, 0];
        ev.reset(2, &assign);
        for (op, c) in [(1, 1), (2, 1), (1, 0), (3, 1), (1, 1), (2, 0)] {
            ev.apply(op, c);
            assign[op] = c;
            let p = Partition::new(assign.clone(), 2);
            assert_eq!(ev.cost(), estimate(&ddg, &m, 2, &p), "after {op}->{c}");
        }
    }

    #[test]
    fn move_and_inverse_restore_state() {
        let ddg = chain_ddg();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let mut ev = CostEvaluator::new(&ddg, &m);
        ev.reset(1, &[0, 1, 0, 1]);
        let before = ev.cost();
        ev.apply(2, 1);
        ev.apply(2, 0);
        assert_eq!(ev.cost(), before);
        assert_eq!(ev.assignment(), &[0, 1, 0, 1]);
    }

    #[test]
    fn screen_rejects_hopeless_candidates_cheaply() {
        let ddg = chain_ddg();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let mut ev = CostEvaluator::new(&ddg, &m);
        ev.reset(1, &[0, 0, 0, 0]);
        let together = ev.cost();
        // Cutting the recurrence is strictly worse: screened or fully
        // evaluated, the answer must be "not better".
        ev.apply(2, 1);
        assert!(ev.cost_if_better(&together).is_none());
        assert!(!ev.cost().better_than(&together));
    }

    #[test]
    fn cost_if_better_returns_improvements() {
        let ddg = chain_ddg();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let mut ev = CostEvaluator::new(&ddg, &m);
        ev.reset(1, &[0, 1, 1, 1]);
        let split = ev.cost();
        ev.apply(0, 1);
        let better = ev.cost_if_better(&split).expect("healing the cut wins");
        assert!(better.better_than(&split));
        assert_eq!(better, ev.cost());
    }

    #[test]
    #[should_panic(expected = "partition/ddg mismatch")]
    fn reset_rejects_wrong_length() {
        let ddg = chain_ddg();
        let m = MachineConfig::two_cluster(32, 1, 1);
        CostEvaluator::new(&ddg, &m).reset(1, &[0, 1]);
    }
}
