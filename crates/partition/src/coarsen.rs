//! Matching-based coarsening (§2.1.2, §3.2.1).
//!
//! Each level fuses pairs of nodes joined by a maximum-weight matching into
//! macro-nodes, summing node weights and merging parallel edges, until as
//! many nodes as clusters remain. The matching is exact (blossom) by
//! default — the paper used LEDA's exact matcher — with a greedy heavy-edge
//! fallback for large graphs and for the ablation study.

use gpsched_ddg::Ddg;
use gpsched_graph::matching::{greedy_matching, maximum_weight_matching, Matching};
use gpsched_graph::{NodeId, UnGraph};

/// How to compute the maximum-weight matching at each coarsening level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchStrategy {
    /// Exact blossom matching (what the paper's LEDA call computed).
    Exact,
    /// Greedy heavy-edge matching (METIS-style ½-approximation).
    Greedy,
    /// Exact up to the given node count, greedy above it.
    Auto(usize),
}

impl Default for MatchStrategy {
    fn default() -> Self {
        // Exact matching is O(V³); DDGs of innermost loops are small, so
        // exact is affordable well past the sizes the suite produces.
        MatchStrategy::Auto(192)
    }
}

impl MatchStrategy {
    fn run(self, n: usize, edges: &[(usize, usize, i64)]) -> Matching {
        match self {
            MatchStrategy::Exact => maximum_weight_matching(n, edges, false),
            MatchStrategy::Greedy => greedy_matching(n, edges),
            MatchStrategy::Auto(limit) => {
                if n <= limit {
                    maximum_weight_matching(n, edges, false)
                } else {
                    greedy_matching(n, edges)
                }
            }
        }
    }
}

/// One level of the coarsening hierarchy.
#[derive(Clone, Debug)]
pub struct Level {
    /// The (undirected, merged-edge) working graph of this level.
    pub graph: UnGraph,
    /// `members[node] = original op indices` fused into that node.
    pub members: Vec<Vec<usize>>,
}

impl Level {
    /// Inverse of `members`: `op index → node index` at this level.
    pub fn op_to_node(&self) -> Vec<usize> {
        let nops: usize = self.members.iter().map(Vec::len).sum();
        let mut map = vec![usize::MAX; nops];
        for (n, ops) in self.members.iter().enumerate() {
            for &op in ops {
                map[op] = n;
            }
        }
        map
    }

    /// Number of nodes at this level.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }
}

/// Builds the finest level: one node per operation, one undirected edge per
/// dependence with the §3.2.1 weight (parallel and antiparallel edges merge
/// by weight addition; self-dependences vanish).
pub fn initial_level(ddg: &Ddg, weights: &[i64]) -> Level {
    assert_eq!(weights.len(), ddg.dep_count(), "one weight per dependence");
    let mut graph = UnGraph::new();
    for _ in 0..ddg.op_count() {
        graph.add_node(1);
    }
    for e in ddg.dep_ids() {
        let (s, d) = ddg.dep_endpoints(e);
        graph.add_edge(
            NodeId::from_index(s.index()),
            NodeId::from_index(d.index()),
            weights[e.index()],
        );
    }
    Level {
        graph,
        members: (0..ddg.op_count()).map(|i| vec![i]).collect(),
    }
}

/// Contracts `level` by fusing the given node pairs (each node may appear in
/// at most one pair). Unmatched nodes survive as singletons.
fn contract(level: &Level, pairs: &[(usize, usize)]) -> Level {
    let n = level.node_count();
    let mut target = vec![usize::MAX; n];
    let mut graph = UnGraph::new();
    let mut members: Vec<Vec<usize>> = Vec::new();

    for &(u, v) in pairs {
        debug_assert!(target[u] == usize::MAX && target[v] == usize::MAX);
        let id = graph.add_node(
            level.graph.node_weight(NodeId::from_index(u))
                + level.graph.node_weight(NodeId::from_index(v)),
        );
        debug_assert_eq!(id.index(), members.len());
        let mut m = level.members[u].clone();
        m.extend_from_slice(&level.members[v]);
        m.sort_unstable();
        members.push(m);
        target[u] = id.index();
        target[v] = id.index();
    }
    for (u, t) in target.iter_mut().enumerate().take(n) {
        if *t == usize::MAX {
            let id = graph.add_node(level.graph.node_weight(NodeId::from_index(u)));
            *t = id.index();
            members.push(level.members[u].clone());
        }
    }
    for e in level.graph.edges() {
        graph.add_edge(
            NodeId::from_index(target[e.u.index()]),
            NodeId::from_index(target[e.v.index()]),
            e.weight,
        );
    }
    Level { graph, members }
}

/// Coarsens `finest` until at most `target` nodes remain; returns the whole
/// hierarchy, finest level first.
///
/// Each level fuses matched pairs, highest edge weight first, but never
/// more pairs than needed to reach `target` (the paper stops exactly at the
/// cluster count). When the matching is empty but more than `target` nodes
/// remain (disconnected graphs), the two nodes with the fewest member ops
/// are fused instead — a documented deviation required for completeness.
///
/// # Panics
///
/// Panics if `target == 0`.
pub fn coarsen_to(finest: Level, target: usize, strategy: MatchStrategy) -> Vec<Level> {
    assert!(target > 0, "target must be positive");
    let mut levels = vec![finest];
    loop {
        let current = levels.last().expect("hierarchy never empty");
        let n = current.node_count();
        if n <= target {
            break;
        }
        let edges: Vec<(usize, usize, i64)> = current
            .graph
            .edges()
            .map(|e| (e.u.index(), e.v.index(), e.weight))
            .collect();
        let matching = {
            let _sp = gpsched_trace::span!("partition.coarsen.match", "n={n}");
            strategy.run(n, &edges)
        };
        // Every matched pair is an edge (both matchers only match along
        // edges) and edges are unique per unordered pair (`UnGraph` merges
        // parallels), so one edge scan recovers the matched pairs with
        // their weights — no hash map. Orientation is normalised to
        // `(min, max)` exactly as [`Matching::pairs`] yields them.
        let mut pairs: Vec<(usize, usize, i64)> = edges
            .iter()
            .filter(|&&(a, b, _)| a != b && matching.mate(a) == Some(b))
            .map(|&(a, b, w)| (a.min(b), a.max(b), w))
            .collect();
        debug_assert_eq!(pairs.len(), matching.pair_count());
        // Heaviest pairs first; fuse only as many as needed. The key
        // `(weight, u)` is unique per pair (`u` is matched exactly once),
        // so the order is independent of the edge scan order above.
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        pairs.truncate(n - target);
        let mut chosen: Vec<(usize, usize)> = pairs.iter().map(|&(u, v, _)| (u, v)).collect();

        if chosen.is_empty() {
            // Disconnected leftovers: fuse the smallest nodes pairwise in
            // one batch (one pair per level would create O(n) levels).
            let mut by_size: Vec<usize> = (0..n).collect();
            by_size.sort_by_key(|&v| current.members[v].len());
            let pairs_needed = (n - target).min(n / 2);
            for pair in by_size.chunks(2).take(pairs_needed) {
                if let [u, v] = *pair {
                    chosen.push((u, v));
                }
            }
        }
        let next = {
            let _sp = gpsched_trace::span!("partition.coarsen.contract");
            contract(current, &chosen)
        };
        debug_assert!(next.node_count() < n, "coarsening must make progress");
        levels.push(next);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::edge_weights;
    use gpsched_machine::MachineConfig;
    use gpsched_workloads::kernels;

    fn level_for(ddg: &Ddg) -> Level {
        let m = MachineConfig::two_cluster(32, 1, 1);
        let w = edge_weights(ddg, &m, 1);
        initial_level(ddg, &w)
    }

    #[test]
    fn initial_level_mirrors_ddg() {
        let ddg = kernels::daxpy(100);
        let l = level_for(&ddg);
        assert_eq!(l.node_count(), ddg.op_count());
        assert_eq!(l.members.len(), ddg.op_count());
        let map = l.op_to_node();
        for (op, node) in map.iter().enumerate() {
            assert_eq!(*node, op);
        }
    }

    #[test]
    fn total_member_count_is_invariant() {
        let ddg = kernels::fir(100, 12);
        let levels = coarsen_to(level_for(&ddg), 2, MatchStrategy::Exact);
        for l in &levels {
            let total: usize = l.members.iter().map(Vec::len).sum();
            assert_eq!(total, ddg.op_count());
            // Membership is a partition of the ops: no duplicates.
            let mut all: Vec<usize> = l.members.iter().flatten().copied().collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), ddg.op_count());
        }
    }

    #[test]
    fn node_weight_conserved() {
        let ddg = kernels::stencil5(100);
        let levels = coarsen_to(level_for(&ddg), 4, MatchStrategy::Greedy);
        let w0 = levels[0].graph.total_node_weight();
        for l in &levels {
            assert_eq!(l.graph.total_node_weight(), w0);
        }
    }

    #[test]
    fn reaches_target_node_count() {
        for target in [2usize, 4] {
            let ddg = kernels::matmul_inner(100);
            let levels = coarsen_to(level_for(&ddg), target, MatchStrategy::default());
            let last = levels.last().unwrap();
            assert!(last.node_count() <= target);
            // The paper fuses only as many pairs as needed, so we land
            // exactly on target while ops remain.
            assert_eq!(last.node_count(), target.min(ddg.op_count()));
        }
    }

    #[test]
    fn coarsens_disconnected_graphs() {
        // 6 isolated ops: matchings are empty, fallback fusion must fire.
        let mut b = gpsched_ddg::DdgBuilder::new("iso");
        for i in 0..6 {
            b.op(gpsched_machine::OpClass::IntAlu, format!("o{i}"));
        }
        let ddg = b.build().unwrap();
        let levels = coarsen_to(level_for(&ddg), 2, MatchStrategy::Exact);
        assert_eq!(levels.last().unwrap().node_count(), 2);
    }

    #[test]
    fn heavy_edges_fuse_first() {
        // A heavy pair and a light pair; coarsening to 3 nodes must fuse
        // the heavy pair.
        let mut b = gpsched_ddg::DdgBuilder::new("t");
        let a = b.op(gpsched_machine::OpClass::FpAdd, "a");
        let c = b.op(gpsched_machine::OpClass::FpAdd, "c");
        b.flow(a, c);
        b.flow_carried(c, a, 1); // heavy recurrence pair
        let x = b.op(gpsched_machine::OpClass::IntAlu, "x");
        let y = b.op(gpsched_machine::OpClass::IntAlu, "y");
        b.flow(x, y); // light pair
        b.trip_count(100);
        let ddg = b.build().unwrap();
        let levels = coarsen_to(level_for(&ddg), 3, MatchStrategy::Exact);
        let last = levels.last().unwrap();
        assert_eq!(last.node_count(), 3);
        assert!(
            last.members.iter().any(|m| m == &vec![0, 1]),
            "recurrence pair must fuse: {:?}",
            last.members
        );
    }
}
