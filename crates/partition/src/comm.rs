//! Topology-aware communication accounting, in one place.
//!
//! Three spots used to re-derive the cost of a cross-cluster value from
//! the machine's bus fields independently — the from-scratch estimator,
//! the incremental evaluator and the coarsening edge weights. They now
//! all go through this module:
//!
//! * [`comm_cost`] — the delay a cut flow dependence pays, which is the
//!   topology's end-to-end transfer latency between the two assigned
//!   clusters (and 0 within a cluster);
//! * [`ChannelLoad`] — the per-channel bandwidth accounting behind the
//!   generalized `IIbus`: every communicated value (a distinct
//!   `(producer, consumer-cluster)` pair, the paper's `NComm`) books its
//!   route's occupancy on each channel it crosses, and
//!   [`ChannelLoad::bound`] is the largest `⌈load / capacity⌉` over all
//!   channels — for the paper's shared bus exactly
//!   `⌈NComm · LatBus / NBus⌉`, the §3.1 formula.

use gpsched_machine::MachineConfig;

/// Delay charged on a flow dependence whose producer sits in cluster
/// `from` and consumer in cluster `to`: the interconnect's end-to-end
/// transfer latency, 0 when the endpoints share a cluster.
#[inline]
pub fn comm_cost(machine: &MachineConfig, from: usize, to: usize) -> i64 {
    if from == to {
        0
    } else {
        machine.transfer_latency(from, to)
    }
}

/// Per-channel interconnect load of a set of communicated values.
///
/// Adding (or removing) the pair `(from, to)` books (or releases) the
/// occupancy of every hop of the topology's `from → to` route on its
/// channel — O(route length); [`ChannelLoad::bound`] reads the II bound
/// in O(channel count). The routes are resolved once at construction
/// into a flat per-pair hop table, so updates are pure array walks with
/// no topology dispatch.
///
/// How callers use it is a measured trade-off: the from-scratch
/// estimator builds the table per call, while the incremental
/// [`crate::CostEvaluator`] deliberately does *not* delta-maintain it —
/// on uniform single-channel topologies (every shared bus, i.e. all of
/// the paper's machines) the bound is a closed form over the resident
/// `NComm` and this table is never touched, and on ring/p2p machines
/// the evaluator rebuilds it from its resident consumer table only when
/// the bound is actually read (O(V·nclusters), well below the timing
/// probe that read is screening). Threading updates through the
/// evaluator's per-move hot loop instead measurably regressed the
/// shared-bus refinement path (see DESIGN.md §3.1).
#[derive(Clone, Debug)]
pub struct ChannelLoad {
    caps: Vec<i64>,
    load: Vec<i64>,
    nclusters: usize,
    /// Concatenated `(channel, occupancy)` hops of every ordered pair's
    /// route, sliced by `pair_ranges[from · n + to]`.
    hops: Vec<(u32, i64)>,
    pair_ranges: Vec<(u32, u32)>,
}

impl ChannelLoad {
    /// An empty load table shaped for `machine`'s channels and routes.
    pub fn new(machine: &MachineConfig) -> Self {
        let n = machine.cluster_count();
        let mut hops = Vec::new();
        let mut pair_ranges = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                let start = hops.len() as u32;
                if from != to {
                    hops.extend(
                        machine
                            .route(from, to)
                            .map(|h| (h.channel as u32, h.occupancy)),
                    );
                }
                pair_ranges.push((start, hops.len() as u32));
            }
        }
        ChannelLoad {
            caps: (0..machine.channel_count())
                .map(|ch| machine.channel_capacity(ch) as i64)
                .collect(),
            load: vec![0; machine.channel_count()],
            nclusters: n,
            hops,
            pair_ranges,
        }
    }

    /// Detects the degenerate interconnects whose bound needs no
    /// per-channel table at all: a single channel every pair loads with
    /// one hop of the same occupancy (the shared bus, pipelined or not).
    /// Returns `(occupancy per value, capacity)`; the evaluator's hot
    /// path then prices communication straight off the paper's `NComm`
    /// counter, exactly like the pre-topology code did.
    pub fn uniform_single_channel(&self) -> Option<(i64, i64)> {
        (self.caps.len() == 1
            && self.pair_ranges.iter().all(|&(s, e)| e - s <= 1)
            && self.hops.windows(2).all(|w| w[0] == w[1]))
        .then(|| (self.hops.first().map_or(1, |&(_, occ)| occ), self.caps[0]))
    }

    /// Clears all booked load (the capacities stay).
    pub fn clear(&mut self) {
        self.load.iter_mut().for_each(|l| *l = 0);
    }

    /// Books one communicated value `from → to`.
    #[inline]
    pub fn add_pair(&mut self, from: usize, to: usize) {
        let (s, e) = self.pair_ranges[from * self.nclusters + to];
        for i in s as usize..e as usize {
            let (ch, occ) = self.hops[i];
            self.load[ch as usize] += occ;
        }
    }

    /// Releases one communicated value `from → to`.
    #[inline]
    pub fn remove_pair(&mut self, from: usize, to: usize) {
        let (s, e) = self.pair_ranges[from * self.nclusters + to];
        for i in s as usize..e as usize {
            let (ch, occ) = self.hops[i];
            self.load[ch as usize] -= occ;
            debug_assert!(self.load[ch as usize] >= 0, "channel load underflow");
        }
    }

    /// The interconnect-imposed II bound of the booked load: the largest
    /// `⌈load / capacity⌉` over all channels, at least 1. Matches the
    /// paper's `IIbus = ⌈NComm · LatBus / NBus⌉` on a shared bus.
    pub fn bound(&self) -> i64 {
        self.load
            .iter()
            .zip(&self.caps)
            .map(|(&l, &c)| (l + c - 1) / c)
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_machine::Interconnect;

    #[test]
    fn shared_bus_bound_matches_paper_formula() {
        // IIbus = ceil(NComm · LatBus / NBus).
        let cases = [
            (MachineConfig::two_cluster(32, 1, 1), 5, 5),
            (MachineConfig::two_cluster(32, 2, 2), 5, 5),
            (MachineConfig::two_cluster(32, 1, 2), 5, 10),
            (MachineConfig::two_cluster(32, 1, 1), 0, 1),
        ];
        for (m, ncomm, expect) in cases {
            let mut load = ChannelLoad::new(&m);
            for _ in 0..ncomm {
                load.add_pair(0, 1);
            }
            assert_eq!(load.bound(), expect, "{}", m.short_name());
        }
    }

    #[test]
    fn unified_machine_has_no_channels_and_bound_one() {
        let m = MachineConfig::unified(32);
        let load = ChannelLoad::new(&m);
        assert_eq!(load.bound(), 1);
    }

    #[test]
    fn ring_load_lands_on_each_hop_link() {
        let m = MachineConfig::homogeneous_with(
            4,
            (1, 1, 1),
            64,
            Interconnect::Ring {
                hop_latency: 2,
                links_per_hop: 1,
            },
        );
        let mut load = ChannelLoad::new(&m);
        // 0 → 2 crosses links 0 and 1, each for 2 cycles.
        load.add_pair(0, 2);
        assert_eq!(load.bound(), 2);
        // A second value over link 0 (0 → 1) stacks on the busiest link.
        load.add_pair(0, 1);
        assert_eq!(load.bound(), 4);
        // Traffic on the opposite side of the ring does not interfere.
        load.add_pair(2, 3);
        assert_eq!(load.bound(), 4);
        load.remove_pair(0, 1);
        assert_eq!(load.bound(), 2);
    }

    #[test]
    fn point_to_point_pairs_do_not_contend() {
        let m = MachineConfig::homogeneous_with(
            4,
            (1, 1, 1),
            64,
            Interconnect::uniform_point_to_point(4, 3, 1),
        );
        let mut load = ChannelLoad::new(&m);
        // Pipelined links: occupancy 1 per departure, whatever the latency.
        for _ in 0..3 {
            load.add_pair(0, 1);
        }
        load.add_pair(1, 0);
        assert_eq!(load.bound(), 3);
    }

    #[test]
    fn comm_cost_is_pairwise_latency() {
        let ring = MachineConfig::homogeneous_with(
            4,
            (1, 1, 1),
            64,
            Interconnect::Ring {
                hop_latency: 2,
                links_per_hop: 1,
            },
        );
        assert_eq!(comm_cost(&ring, 1, 1), 0);
        assert_eq!(comm_cost(&ring, 1, 2), 2);
        assert_eq!(comm_cost(&ring, 2, 1), 6);
        let bus = MachineConfig::two_cluster(32, 1, 2);
        assert_eq!(comm_cost(&bus, 0, 1), 2);
        assert_eq!(comm_cost(&bus, 1, 0), 2);
    }
}
