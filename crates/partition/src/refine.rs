//! Partition refinement (§3.2.2): workload balance + cut-impact reduction.
//!
//! Runs at every level of the coarsening hierarchy, from the coarsest to
//! the finest (Kernighan–Lin/Fiduccia–Mattheyses style, but with the
//! paper's objective: *estimated execution time*, not cut size).
//!
//! The cut pass evaluates candidate moves through the incremental
//! [`CostEvaluator`]'s overlay trials ([`CostEvaluator::trial_moves`]):
//! each candidate is screened against a cheap execution-time lower bound
//! and costed entirely under a hypothetical-assignment overlay — the
//! resident state is only mutated for the one move per round that
//! actually wins. No per-candidate apply/revert cycles, `expand` calls or
//! `Partition` allocations remain.

use crate::coarsen::Level;
use crate::estimate::PartitionCost;
use crate::evaluator::{CostEvaluator, TrialBatch};
use gpsched_ddg::Ddg;
use gpsched_machine::{MachineConfig, ResourceKind};

/// Knobs for the refinement passes (ablation switches).
#[derive(Clone, Copy, Debug)]
pub struct RefineOptions {
    /// Run the workload-balance pass.
    pub balance: bool,
    /// Run the cut-impact pass.
    pub cut: bool,
    /// Upper bound on applied moves per level (safety valve).
    pub max_moves: usize,
    /// How many swap partners to evaluate per blocked move.
    pub swap_candidates: usize,
    /// How many screened candidates receive a full execution-time estimate
    /// per move round.
    pub eval_candidates: usize,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            balance: true,
            cut: true,
            max_moves: 64,
            swap_candidates: 4,
            eval_candidates: 12,
        }
    }
}

/// Expands a per-node assignment at `level` into a per-op assignment.
pub fn expand(level: &Level, assign: &[usize]) -> Vec<usize> {
    let nops: usize = level.members.iter().map(Vec::len).sum();
    let mut out = vec![0usize; nops];
    for (node, ops) in level.members.iter().enumerate() {
        for &op in ops {
            out[op] = assign[node];
        }
    }
    out
}

/// Per-node boundary members: the member ops with a dependence whose
/// other endpoint belongs to a different node. Only they can change
/// communication or cut state when the node moves — the evaluator's
/// overlay trials skip the interior entirely ([`TrialBatch::boundary`]).
fn boundary_members(ddg: &Ddg, level: &Level) -> Vec<Vec<usize>> {
    let mut node_of = vec![0u32; ddg.op_count()];
    for (node, ops) in level.members.iter().enumerate() {
        for &op in ops {
            node_of[op] = node as u32;
        }
    }
    level
        .members
        .iter()
        .map(|ops| {
            ops.iter()
                .copied()
                .filter(|&op| {
                    let id = gpsched_graph::NodeId::from_index(op);
                    let here = node_of[op];
                    ddg.graph()
                        .in_edges(id)
                        .map(|(_, p)| p)
                        .chain(ddg.graph().out_edges(id).map(|(_, d)| d))
                        .any(|n| node_of[n.index()] != here)
                })
                .collect()
        })
        .collect()
}

/// Per-node functional-unit usage: `usage[node][kind]` = ops of that kind.
fn node_usage(ddg: &Ddg, level: &Level) -> Vec<[i64; 3]> {
    level
        .members
        .iter()
        .map(|ops| {
            let mut u = [0i64; 3];
            for &op in ops {
                let id = gpsched_graph::NodeId::from_index(op);
                u[ddg.op(id).class.resource().index()] += 1;
            }
            u
        })
        .collect()
}

/// Per-cluster usage totals under `assign`.
fn cluster_usage(usage: &[[i64; 3]], assign: &[usize], nclusters: usize) -> Vec<[i64; 3]> {
    let mut totals = vec![[0i64; 3]; nclusters];
    for (node, u) in usage.iter().enumerate() {
        for k in 0..3 {
            totals[assign[node]][k] += u[k];
        }
    }
    totals
}

/// Per-cluster capacity at interval `ii`: `units × ii` slots per kind.
fn capacities(machine: &MachineConfig, ii: i64) -> Vec<[i64; 3]> {
    machine
        .clusters()
        .map(|c| {
            let mut cap = [0i64; 3];
            for kind in ResourceKind::ALL {
                cap[kind.index()] = c.units(kind) as i64 * ii;
            }
            cap
        })
        .collect()
}

/// Workload balance (§3.2.2 "Improving Workload Balance"): while some
/// (cluster, resource) is loaded beyond 100% of its `ii` slots, move a node
/// that uses the resource to a cluster where it fits without overloading
/// that resource or any more-saturated one. Returns the number of moves.
/// `usage` must be `node_usage` for this level (the caller shares one
/// table between both refinement passes).
pub fn balance_pass(
    machine: &MachineConfig,
    ii: i64,
    level: &Level,
    usage: &[[i64; 3]],
    assign: &mut [usize],
    max_moves: usize,
) -> usize {
    let caps = capacities(machine, ii);
    let nclusters = machine.cluster_count();
    let mut moves = 0usize;

    // Maintained incrementally across moves (it was recomputed per round).
    let mut totals = cluster_usage(usage, assign, nclusters);
    let mut overloaded: Vec<(usize, usize, f64)> = Vec::new();
    let mut nodes: Vec<usize> = Vec::new();

    while moves < max_moves {
        // Overloaded (cluster, kind), most saturated first.
        overloaded.clear();
        for c in 0..nclusters {
            for k in 0..3 {
                if totals[c][k] > caps[c][k] {
                    let sat = totals[c][k] as f64 / caps[c][k].max(1) as f64;
                    overloaded.push((c, k, sat));
                }
            }
        }
        if overloaded.is_empty() {
            break;
        }
        overloaded.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("saturation is finite"));
        // Kinds ranked by how saturated they are anywhere (for the "more
        // critical resources previously considered" rule).
        let rank_of = |k: usize| overloaded.iter().position(|&(_, k2, _)| k2 == k);

        let mut applied = false;
        'search: for &(cl, kind, _) in &overloaded {
            // Candidate nodes in `cl` that use `kind`, heaviest users first.
            nodes.clear();
            nodes
                .extend((0..level.node_count()).filter(|&v| assign[v] == cl && usage[v][kind] > 0));
            nodes.sort_by_key(|&v| std::cmp::Reverse(usage[v][kind]));
            for &v in &nodes {
                for c2 in 0..nclusters {
                    if c2 == cl {
                        continue;
                    }
                    // Destination must absorb the node without overloading
                    // `kind` or any kind at least as critical.
                    let fits = (0..3).all(|k| {
                        let after = totals[c2][k] + usage[v][k];
                        let critical = k == kind
                            || matches!((rank_of(k), rank_of(kind)),
                                        (Some(rk), Some(rkind)) if rk <= rkind);
                        !critical || after <= caps[c2][k]
                    });
                    if fits {
                        for k in 0..3 {
                            totals[cl][k] -= usage[v][k];
                            totals[c2][k] += usage[v][k];
                        }
                        assign[v] = c2;
                        moves += 1;
                        applied = true;
                        break 'search;
                    }
                }
            }
        }
        if !applied {
            // No beneficial movement: wait for a finer level (paper).
            break;
        }
    }
    gpsched_trace::counter!("partition.balance_moves", moves as u64);
    moves
}

/// Cut-impact refinement (§3.2.2 "Minimizing the Impact of Inter-Cluster
/// Edges"): repeatedly apply the single move or pair swap with the largest
/// execution-time benefit (ties: larger cut slack, then smaller cut).
/// Returns the cost of the final assignment.
///
/// `ev` must belong to the same DDG/machine pair; it is reloaded with
/// `assign` on entry and left holding the final assignment. `prev`, when
/// given, must be the exact cost of the entry assignment at `ii_input` as
/// this evaluator computed it — the multilevel driver's projection leaves
/// the op-level assignment unchanged between levels, so the entry
/// reload-and-recost is skipped whenever the evaluator still holds it.
/// `usage` must be `node_usage` for this level.
#[allow(clippy::too_many_arguments)]
pub fn cut_pass(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii_input: i64,
    level: &Level,
    usage: &[[i64; 3]],
    assign: &mut [usize],
    opts: &RefineOptions,
    ev: &mut CostEvaluator<'_>,
    prev: Option<PartitionCost>,
) -> PartitionCost {
    assert!(
        ev.is_for(ddg, machine),
        "evaluator was built for a different DDG/machine"
    );
    // At the finest level every node is a single op and the conservative
    // "everything is boundary" answer is exact — skip the edge walk.
    let boundary = (level.node_count() < ddg.op_count()).then(|| boundary_members(ddg, level));
    let nclusters = machine.cluster_count();
    let expanded = expand(level, assign);
    let mut current = match prev {
        Some(cost) if ev.ii_input() == ii_input && ev.assignment() == &expanded[..] => {
            debug_assert_eq!(cost, ev.cost(), "stale entry cost passed to cut_pass");
            cost
        }
        _ => {
            ev.reset(ii_input, &expanded);
            ev.cost()
        }
    };
    let mut moves = 0usize;
    // Candidate-evaluation tally, batched per pass (a `Cell` because the
    // `consider` closure and the adoption loop both touch it): one
    // increment per overlay trial was a measurable share of
    // enabled-tracing overhead.
    let evaluated = std::cell::Cell::new(0u64);

    // Buffers hoisted out of the move loop.
    let mut candidates: Vec<(i64, usize, usize)> = Vec::new();
    let mut gain_to: Vec<i64> = vec![0; nclusters];
    let mut gain_clusters: Vec<usize> = Vec::new();
    let mut partners: Vec<usize> = Vec::new();
    let mut changes: Vec<(usize, usize)> = Vec::new();

    // "Enough resources" is judged at the II the current partition
    // actually achieves, not the (possibly smaller) input II. Capacities
    // follow that II across rounds; totals follow the applied moves.
    let mut caps_ii = current.ii_effective.max(1);
    let mut caps = capacities(machine, caps_ii);
    let mut totals = cluster_usage(usage, assign, nclusters);

    while moves < opts.max_moves {
        if current.ii_effective.max(1) != caps_ii {
            caps_ii = current.ii_effective.max(1);
            caps = capacities(machine, caps_ii);
        }
        let caps = &caps;
        let fits_move = |totals: &[[i64; 3]], v: usize, c2: usize| -> bool {
            (0..3).all(|k| totals[c2][k] + usage[v][k] <= caps[c2][k])
        };

        let mut best: Option<(Vec<(usize, usize)>, PartitionCost)> = None;

        // Evaluates `changes` as an overlay trial: screen + estimate
        // against the best so far, without touching the evaluator's
        // resident state. No allocation beyond the (reused) buffers.
        let boundary = &boundary;
        let consider =
            |changes: &[(usize, usize)],
             ev: &mut CostEvaluator<'_>,
             best: &mut Option<(Vec<(usize, usize)>, PartitionCost)>| {
                evaluated.set(evaluated.get() + 1);
                let threshold = best.as_ref().map_or(&current, |(_, b)| b);
                let cost = ev.trial_moves(
                    changes.iter().map(|&(v, c)| TrialBatch {
                        ops: &level.members[v],
                        boundary: boundary.as_ref().map_or(&level.members[v], |b| &b[v]),
                        cluster: c,
                    }),
                    threshold,
                );
                if let Some(cost) = cost {
                    *best = Some((changes.to_vec(), cost));
                }
            };

        // Boundary nodes and their foreign neighbor clusters, screened by
        // the classic KL weight gain (external − internal edge weight).
        // Only the most promising candidates pay for a full execution-time
        // estimate; the §3.2.1 edge weights already encode the time impact,
        // so the screen rarely discards the true best move.
        candidates.clear();
        for v in 0..level.node_count() {
            let cl = assign[v];
            gain_clusters.clear();
            let mut internal = 0i64;
            for (_, w, wt) in level.graph.neighbors(gpsched_graph::NodeId::from_index(v)) {
                let cw = assign[w.index()];
                if cw == cl {
                    internal += wt;
                } else {
                    if gain_to[cw] == 0 && !gain_clusters.contains(&cw) {
                        gain_clusters.push(cw);
                    }
                    gain_to[cw] += wt;
                }
            }
            gain_clusters.sort_unstable();
            for &c2 in &gain_clusters {
                candidates.push((gain_to[c2] - internal, v, c2));
                gain_to[c2] = 0;
            }
        }
        // (gain, v, c2) is a total order, so selecting the top
        // `eval_candidates` before sorting yields the same prefix the full
        // sort would.
        let by_gain = |a: &(i64, usize, usize), b: &(i64, usize, usize)| {
            b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
        };
        if opts.eval_candidates == 0 {
            candidates.clear();
        } else if candidates.len() > opts.eval_candidates {
            candidates.select_nth_unstable_by(opts.eval_candidates - 1, by_gain);
            candidates.truncate(opts.eval_candidates);
        }
        candidates.sort_by(by_gain);
        for &(_, v, c2) in &candidates {
            let cl = assign[v];
            if fits_move(&totals, v, c2) {
                changes.clear();
                changes.push((v, c2));
                consider(&changes, ev, &mut best);
            } else {
                // Try interchanges that make room (§3.2.2).
                partners.clear();
                partners.extend((0..level.node_count()).filter(|&u| assign[u] == c2));
                // Prefer partners whose departure frees the most slots.
                partners.sort_by_key(|&u| std::cmp::Reverse(usage[u].iter().sum::<i64>()));
                partners.truncate(opts.swap_candidates);
                for &u in &partners {
                    // Capacity check with both displacements applied.
                    let ok = (0..3).all(|k| {
                        totals[c2][k] + usage[v][k] - usage[u][k] <= caps[c2][k]
                            && totals[cl][k] - usage[v][k] + usage[u][k] <= caps[cl][k]
                    });
                    if ok {
                        changes.clear();
                        changes.push((v, c2));
                        changes.push((u, cl));
                        consider(&changes, ev, &mut best);
                    }
                }
            }
        }

        match best {
            Some((chosen, cost)) => {
                for (v, c) in chosen {
                    for k in 0..3 {
                        totals[assign[v]][k] -= usage[v][k];
                        totals[c][k] += usage[v][k];
                    }
                    assign[v] = c;
                    ev.apply_many(&level.members[v], c);
                }
                debug_assert_eq!(cost, ev.cost(), "overlay trial diverged from apply");
                current = cost;
                moves += 1;
            }
            None => break,
        }
    }
    gpsched_trace::counter!("partition.moves_evaluated", evaluated.get());
    gpsched_trace::counter!("partition.moves_applied", moves as u64);
    current
}

/// Full refinement of one level: balance, then cut impact. The evaluator
/// carries the timing workspace and cut state across levels and calls;
/// `prev` (the previous level's final cost, when the assignment projected
/// through unchanged) lets the cut pass skip its entry re-evaluation.
#[allow(clippy::too_many_arguments)]
pub fn refine_level(
    ddg: &Ddg,
    machine: &MachineConfig,
    ii_input: i64,
    level: &Level,
    assign: &mut [usize],
    opts: &RefineOptions,
    ev: &mut CostEvaluator<'_>,
    prev: Option<PartitionCost>,
) -> PartitionCost {
    let _span = gpsched_trace::span!("partition.refine", "nodes={}", level.node_count());
    // Both passes consume the same per-node usage table; compute it once.
    let usage = node_usage(ddg, level);
    let mut prev = prev;
    if opts.balance && balance_pass(machine, ii_input, level, &usage, assign, opts.max_moves) > 0 {
        prev = None; // the assignment changed under the carried cost
    }
    if opts.cut {
        cut_pass(
            ddg, machine, ii_input, level, &usage, assign, opts, ev, prev,
        )
    } else {
        ev.reset(ii_input, &expand(level, assign));
        ev.cost()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::initial_level;
    use crate::estimate::estimate;
    use crate::partition::Partition;
    use crate::weights::edge_weights;
    use gpsched_ddg::DdgBuilder;
    use gpsched_machine::OpClass;

    fn level_of(ddg: &Ddg, machine: &MachineConfig) -> Level {
        let w = edge_weights(ddg, machine, 1);
        initial_level(ddg, &w)
    }

    #[test]
    fn balance_moves_overload_out() {
        // 8 loads all in cluster 0 of a 2-cluster machine at II=2:
        // capacity 2 ports × 2 = 4 slots per cluster → must move ~4 loads.
        let mut b = DdgBuilder::new("t");
        for i in 0..8 {
            b.op(OpClass::Load, format!("l{i}"));
        }
        let ddg = b.build().unwrap();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let level = level_of(&ddg, &m);
        let mut assign = vec![0usize; 8];
        let usage = node_usage(&ddg, &level);
        let moves = balance_pass(&m, 2, &level, &usage, &mut assign, 100);
        assert!(moves >= 4);
        let in_c1 = assign.iter().filter(|&&c| c == 1).count();
        assert_eq!(in_c1, 4);
    }

    #[test]
    fn balance_gives_up_when_nothing_fits() {
        // 10 loads at II=1: capacity 2 per cluster, 4 total — impossible.
        let mut b = DdgBuilder::new("t");
        for i in 0..10 {
            b.op(OpClass::Load, format!("l{i}"));
        }
        let ddg = b.build().unwrap();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let level = level_of(&ddg, &m);
        let mut assign = vec![0usize; 10];
        // Must terminate (no infinite loop) even though both clusters stay
        // overloaded.
        let usage = node_usage(&ddg, &level);
        balance_pass(&m, 1, &level, &usage, &mut assign, 100);
    }

    #[test]
    fn cut_pass_heals_a_double_cut_chain() {
        // Three chained ops with the middle one exiled: the start state
        // pays two bus transfers and IIbus = 2. The best reachable state
        // keeps II = 1 by pairing two chain ops and paying ONE transfer
        // (merging all three would force II = 2 on the 2-wide int cluster,
        // which the execution-time model correctly rejects).
        let mut b = DdgBuilder::new("t");
        let x = b.op(OpClass::IntAlu, "x");
        let y = b.op(OpClass::IntAlu, "y");
        let z = b.op(OpClass::IntAlu, "z");
        b.flow(x, y);
        b.flow(y, z);
        b.trip_count(100);
        let ddg = b.build().unwrap();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let level = level_of(&ddg, &m);
        let mut assign = vec![0, 1, 0];
        let before = estimate(&ddg, &m, 1, &Partition::new(assign.clone(), 2));
        assert_eq!(before.comm_count, 2);
        let mut ev = CostEvaluator::new(&ddg, &m);
        let cost = cut_pass(
            &ddg,
            &m,
            1,
            &level,
            &node_usage(&ddg, &level),
            &mut assign,
            &RefineOptions::default(),
            &mut ev,
            None,
        );
        assert!(cost.better_than(&before));
        assert_eq!(cost.comm_count, 1);
        assert_eq!(cost.ii_effective, 1);
        // x and y (or y and z) ended up together.
        assert!(assign[0] == assign[1] || assign[1] == assign[2]);
    }

    #[test]
    fn refine_never_worsens_estimate() {
        for ddg in gpsched_workloads::kernels::all_kernels(100) {
            let m = MachineConfig::two_cluster(32, 1, 1);
            let level = level_of(&ddg, &m);
            // Arbitrary striped starting assignment.
            let mut assign: Vec<usize> = (0..level.node_count()).map(|i| i % 2).collect();
            let before = estimate(&ddg, &m, 1, &Partition::new(expand(&level, &assign), 2));
            let mut ev = CostEvaluator::new(&ddg, &m);
            let after = refine_level(
                &ddg,
                &m,
                1,
                &level,
                &mut assign,
                &RefineOptions::default(),
                &mut ev,
                None,
            );
            assert!(
                !before.better_than(&after),
                "{}: refinement worsened cost",
                ddg.name()
            );
        }
    }

    #[test]
    fn swaps_fire_when_capacity_blocks_moves() {
        // Cluster 1 is mem-saturated; moving a load there requires a swap.
        let mut b = DdgBuilder::new("t");
        // Producer chain in cluster 0 ending in a load consumed in c1.
        let p = b.op(OpClass::Load, "p");
        let q = b.op(OpClass::IntAlu, "q");
        b.flow(p, q);
        // Cluster 1: stuffed with 4 independent loads (capacity 2×II).
        for i in 0..4 {
            b.op(OpClass::Load, format!("m{i}"));
        }
        b.trip_count(50);
        let ddg = b.build().unwrap();
        let m = MachineConfig::two_cluster(32, 1, 1);
        let level = level_of(&ddg, &m);
        let mut assign = vec![0, 1, 1, 1, 1, 1];
        // II=2 → mem capacity per cluster is 4; c1 already holds 4 loads.
        let before = estimate(&ddg, &m, 2, &Partition::new(expand(&level, &assign), 2));
        let mut ev = CostEvaluator::new(&ddg, &m);
        let after = cut_pass(
            &ddg,
            &m,
            2,
            &level,
            &node_usage(&ddg, &level),
            &mut assign,
            &RefineOptions::default(),
            &mut ev,
            None,
        );
        assert!(!before.better_than(&after));
    }
}
