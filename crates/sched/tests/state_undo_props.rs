//! Property tests for the trial undo log on [`PartialSchedule`].
//!
//! The scheduler's placement path is speculative by construction: every
//! II attempt books functional units, interconnect hops, register
//! intervals, transfers and spills, then often throws the trial away.
//! Since PR 8 that unwinding is an undo log, not a clone — so the log
//! must restore the state *bit-identically*. These tests drive random
//! apply→rollback sequences (place / transfer / spill) over every
//! topology preset and check:
//!
//! 1. **rollback**: after `begin_trial` → mutations → `rollback_trial`,
//!    the schedule equals a clone taken just before the trial — even when
//!    the trial ended in a *failed* `place` that left partial bookings;
//! 2. **commit**: after `commit_trial`, the schedule equals a clone that
//!    applied the same successful placements with no trial bracketing at
//!    all (the old clone-and-mutate path);
//! 3. **racing**: the full pipeline returns the same schedule with II
//!    racing off (`race_width = 1`) and on (`race_width = 4`), so the
//!    undo-log path is deterministic under the raced ladder too.
//!
//! Everything is seeded — no flaky coverage. Run under
//! `GPSCHED_SHADOW_UNDO=1` (the conformance lane does) to additionally
//! cross-check every rollback against a shadow clone inside the library.

use gpsched_ddg::Ddg;
use gpsched_machine::{topology_presets, MachineConfig};
use gpsched_partition::PartitionOptions;
use gpsched_sched::drivers::DriverConfig;
use gpsched_sched::pipeline::{self, cluster, growth, order, spill, PolicySet};
use gpsched_sched::state::PartialSchedule;
use gpsched_workloads::kernels;

/// Deterministic xorshift64* — no dev-dependency on a RNG crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// Kernels with enough ops, cross-iteration flow and memory traffic to
/// exercise transfers and register spills on the 32-register machines.
fn workloads() -> Vec<Ddg> {
    vec![
        kernels::fir(100, 12),
        kernels::livermore1(100),
        kernels::stencil5(100),
        kernels::complex_multiply(100),
    ]
}

/// Drives one random trial sequence on `(ddg, machine, ii)` and returns
/// booking totals for the coverage assertions.
fn drive(ddg: &Ddg, machine: &MachineConfig, ii: i64, rng: &mut Rng) -> (usize, usize, usize) {
    let nclusters = machine.cluster_count();
    let mut sched = PartialSchedule::new(ddg, machine, ii);
    let mut unplaced: Vec<usize> = (0..ddg.op_count()).collect();
    let mut steps = 0usize;
    let (mut rollbacks, mut commits) = (0usize, 0usize);

    while !unplaced.is_empty() && steps < 400 {
        steps += 1;
        let pre = sched.clone();
        let guard = sched.begin_trial();

        // One trial: a handful of random placements. Long random windows
        // stretch register intervals, which is what drives spills.
        let tries = 1 + rng.below(4);
        let mut placed: Vec<(usize, usize, i64)> = Vec::new();
        let mut failed = false;
        for _ in 0..tries.min(unplaced.len()) {
            let ui = rng.below(unplaced.len());
            let op = unplaced[ui];
            let cluster = rng.below(nclusters);
            // Wide windows stretch same-cluster flow intervals across many
            // II rows (`len/II` registers each), which is what overflows a
            // 16-register file and exercises the spill undo entries.
            let base = rng.below(10 * ii as usize) as i64;
            let mut done = false;
            for dt in 0..(2 * ii) {
                let t = base + dt;
                let id = gpsched_graph::NodeId::from_index(op);
                if sched.quick_reject(id, cluster, t) {
                    continue;
                }
                match sched.place(id, cluster, t) {
                    Ok(()) => {
                        placed.push((op, cluster, t));
                        unplaced.swap_remove(ui);
                        done = true;
                    }
                    Err(_) => {
                        // Partial bookings now sit above the trial mark;
                        // only a rollback can resolve this trial.
                        failed = true;
                    }
                }
                break;
            }
            if done || failed {
                break;
            }
        }

        if failed || placed.is_empty() || rng.chance(40) {
            // Property 1: rollback restores the pre-trial clone exactly.
            sched.rollback_trial(guard);
            assert!(
                sched.state_eq(&pre),
                "rollback diverged from the pre-trial clone ({}, {}, ii={ii}, step {steps})",
                ddg.name(),
                machine.short_name(),
            );
            rollbacks += 1;
            // The rolled-back placements are still unplaced.
            for &(op, _, _) in &placed {
                unplaced.push(op);
            }
        } else {
            // Property 2: the committed trial matches clone-and-mutate.
            sched.commit_trial(guard);
            let mut alt = pre;
            for &(op, cluster, t) in &placed {
                alt.place(gpsched_graph::NodeId::from_index(op), cluster, t)
                    .expect("replaying a committed placement cannot fail");
            }
            assert!(
                sched.state_eq(&alt),
                "committed trial diverged from clone-and-mutate ({}, {}, ii={ii}, step {steps})",
                ddg.name(),
                machine.short_name(),
            );
            commits += 1;
        }
    }
    assert!(
        rollbacks > 0 && commits > 0,
        "sequence exercised both paths"
    );
    (
        sched.transfers().len(),
        sched.spills().len(),
        sched.placed_count(),
    )
}

#[test]
fn random_trials_roll_back_and_commit_bit_identically() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let (mut transfers, mut spills, mut placed) = (0usize, 0usize, 0usize);
    for machine in topology_presets() {
        for ddg in workloads() {
            for ii in [2i64, 4] {
                let (t, s, p) = drive(&ddg, &machine, ii, &mut rng);
                transfers += t;
                spills += s;
                placed += p;
            }
        }
    }
    // Coverage, not luck: the seeded sequences must have booked real
    // cross-cluster traffic and register spills, or the properties above
    // never saw the hard undo entries (Net/Transfer/Spill/SpillLoad).
    assert!(placed > 0, "no op was ever placed");
    assert!(transfers > 0, "no transfer was ever booked");
    assert!(spills > 0, "no spill was ever booked");
}

#[test]
fn raced_and_sequential_pipelines_agree_on_every_topology() {
    let popts = PartitionOptions::default();
    for machine in topology_presets() {
        for ddg in [kernels::fir(100, 8), kernels::livermore1(100)] {
            let outcome = |race_width: usize| {
                let cfg = DriverConfig {
                    race_width,
                    ..DriverConfig::default()
                };
                let start = gpsched_ddg::mii::mii(&ddg, &machine);
                let policies = PolicySet {
                    cluster: Box::new(cluster::MeritAllClusters),
                    order: Box::new(order::SmsOrder),
                    growth: Box::new(growth::AcceleratingGrowth),
                    spill: Box::new(spill::LongestLiveFirst),
                };
                pipeline::run(&ddg, &machine, &popts, &cfg, start, None, &policies)
                    .expect("pipeline feasible")
            };
            let seq = outcome(1);
            let raced = outcome(4);
            assert_eq!(seq.schedule.ii(), raced.schedule.ii(), "{}", ddg.name());
            assert_eq!(
                seq.schedule.placements(),
                raced.schedule.placements(),
                "{} on {}",
                ddg.name(),
                machine.short_name(),
            );
        }
    }
}
