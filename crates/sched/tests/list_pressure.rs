//! Register-pressure enforcement in the list scheduler: carried-heavy
//! loops must come back register-feasible (spilled if need be) wherever
//! spilling can relieve the pressure, and the spilled schedules must
//! stay consistent with the closed-form cycle accounting.

use gpsched_machine::{ClusterConfig, Interconnect, LatencyModel, MachineConfig};
use gpsched_sched::listsched::list_schedule;
use gpsched_workloads::synth;

fn machines() -> Vec<MachineConfig> {
    vec![
        MachineConfig::two_cluster(32, 1, 1),
        MachineConfig::four_cluster(64, 1, 2),
        // Memory-port-starved shape: spills compete with the loop's own
        // loads/stores for the single port, exercising slot search and
        // period growth.
        MachineConfig::custom(
            vec![
                ClusterConfig {
                    int_units: 2,
                    fp_units: 2,
                    mem_units: 1,
                    registers: 12,
                },
                ClusterConfig {
                    int_units: 2,
                    fp_units: 2,
                    mem_units: 1,
                    registers: 12,
                },
            ],
            Interconnect::legacy_bus(1, 1),
            LatencyModel::default(),
        ),
    ]
}

#[test]
fn carried_heavy_list_schedules_fit_registers() {
    let profile = synth::preset("long-distance").expect("bundled preset");
    let mut spilled = 0usize;
    let mut grew = 0usize;
    for machine in machines() {
        for ddg in synth::corpus("ld", &profile, 11, 12) {
            let s = list_schedule(&ddg, &machine);
            spilled += usize::from(!s.spills().is_empty());
            grew += usize::from(s.ii() > s.length());
            for (c, &live) in s.max_live().iter().enumerate() {
                assert!(
                    live <= machine.cluster(c).registers as i64,
                    "{} on {}: cluster {c} live {live}",
                    ddg.name(),
                    machine.short_name()
                );
            }
        }
    }
    assert!(spilled > 0, "corpus never exercised the spiller");
    eprintln!("spilled {spilled}, period-grew {grew}");
}
