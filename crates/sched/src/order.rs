//! Swing Modulo Scheduling node ordering (Llosa et al., PACT'96; §3.3.3).
//!
//! Nodes are ordered so that each is placed close to its already-placed
//! neighbours, never leaving both a predecessor and a successor unplaced on
//! opposite sides for long. The algorithm:
//!
//! 1. group nodes into *sets*: non-trivial SCCs (recurrences) by decreasing
//!    criticality (their RecMII), then all remaining nodes;
//! 2. traverse each set alternating bottom-up/top-down sweeps, picking the
//!    node with the greatest height (top-down) or depth (bottom-up), with
//!    mobility and id as tie-breakers.

use gpsched_ddg::timing::{Timing, TimingWorkspace};
use gpsched_ddg::{Ddg, OpId};
use gpsched_graph::scc::tarjan_scc;
use gpsched_graph::{NodeBitSet, NodeId};

/// Computes the SMS scheduling order of all ops in `ddg` for interval `ii`
/// (used for the ASAP/ALAP-derived priorities; any `ii ≥ RecMII` gives a
/// valid order).
///
/// # Panics
///
/// Panics if `ii` is below the DDG's recurrence MII.
pub fn sms_order(ddg: &Ddg, ii: i64) -> Vec<OpId> {
    sms_order_with(ddg, ii, &mut TimingWorkspace::new())
}

/// [`sms_order`] with a caller-supplied timing workspace, so the scheduling
/// drivers' II-raising retry loops reuse the analysis buffers.
///
/// # Panics
///
/// Panics if `ii` is below the DDG's recurrence MII.
pub fn sms_order_with(ddg: &Ddg, ii: i64, ws: &mut TimingWorkspace) -> Vec<OpId> {
    if ddg.op_count() == 0 {
        return Vec::new();
    }
    let t = ws.analyze(ddg, ii, |_| 0).expect("ii must be >= RecMII");
    sms_order_from(ddg, t)
}

/// The ordering itself, from an already-computed timing analysis of `ddg`
/// (the drivers analyze once per attempt and share the result between the
/// ordering and the placement windows).
pub fn sms_order_from(ddg: &Ddg, t: &Timing) -> Vec<OpId> {
    sms_order_precomputed(ddg, t, &sms_precompute(ddg))
}

/// The II-independent half of the SMS ordering: recurrence detection,
/// criticality ranking and Llosa's set formation. None of it reads the
/// timing analysis, so the II-raising retry loops compute it once per
/// loop and reorder with [`sms_order_precomputed`] at each II.
#[derive(Clone, Debug)]
pub struct SmsPrecomp {
    /// The node sets to sweep, in processing order (recurrences by
    /// decreasing criticality — each augmented with its connecting
    /// paths — then the remaining nodes).
    sets: Vec<Vec<usize>>,
}

/// Computes the [`SmsPrecomp`] of `ddg` (steps 1 and the set formation of
/// step 2 of the module-level algorithm).
pub fn sms_precompute(ddg: &Ddg) -> SmsPrecomp {
    let n = ddg.op_count();
    if n == 0 {
        return SmsPrecomp { sets: Vec::new() };
    }
    // Sets: recurrences by decreasing RecMII, then everything else.
    let comps = tarjan_scc(ddg.graph());
    let mut rec_sets: Vec<(i64, Vec<usize>)> = Vec::new();
    let mut in_recurrence = vec![false; n];
    for comp in &comps {
        let non_trivial =
            comp.len() > 1 || ddg.graph().out_edges(comp[0]).any(|(_, w)| w == comp[0]);
        if non_trivial {
            let rec = recurrence_mii(ddg, comp);
            let members: Vec<usize> = comp.iter().map(|c| c.index()).collect();
            for &m in &members {
                in_recurrence[m] = true;
            }
            rec_sets.push((rec, members));
        }
    }
    // Decreasing criticality; deterministic tie-break on smallest member.
    rec_sets.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then_with(|| a.1.iter().min().cmp(&b.1.iter().min()))
    });

    // Llosa's set formation: each recurrence set is augmented with the
    // nodes lying on paths between it and the previously processed sets,
    // so every sweep stays connected to what is already ordered. Nodes of
    // later recurrences are excluded (they arrive with their own set).
    // All membership sets are flat bitsets over the dense op indices —
    // the `HashSet`s this replaced dominated the ordering cost.
    let mut stack: Vec<usize> = Vec::new();
    let mut reach = |starts: &NodeBitSet, forward: bool, seen: &mut NodeBitSet| {
        seen.copy_from(starts);
        stack.clear();
        stack.extend(starts.iter());
        while let Some(v) = stack.pop() {
            let id = NodeId::from_index(v);
            if forward {
                for s in ddg.graph().successors(id) {
                    if seen.insert(s.index()) {
                        stack.push(s.index());
                    }
                }
            } else {
                for p in ddg.graph().predecessors(id) {
                    if seen.insert(p.index()) {
                        stack.push(p.index());
                    }
                }
            }
        }
    };
    let mut sets: Vec<Vec<usize>> = Vec::new();
    let mut processed = NodeBitSet::new(n);
    let mut core_set = NodeBitSet::new(n);
    let mut members = NodeBitSet::new(n);
    let mut later_cores = NodeBitSet::new(n);
    let mut desc_p = NodeBitSet::new(n);
    let mut anc_p = NodeBitSet::new(n);
    let mut desc_r = NodeBitSet::new(n);
    let mut anc_r = NodeBitSet::new(n);
    for (i, (_, core)) in rec_sets.iter().enumerate() {
        core_set.clear();
        for &v in core {
            core_set.insert(v);
        }
        members.copy_from(&core_set);
        if !processed.is_empty() {
            later_cores.clear();
            for v in rec_sets[i + 1..].iter().flat_map(|(_, s)| s.iter()) {
                later_cores.insert(*v);
            }
            reach(&processed, true, &mut desc_p);
            reach(&processed, false, &mut anc_p);
            reach(&core_set, true, &mut desc_r);
            reach(&core_set, false, &mut anc_r);
            for v in 0..n {
                let on_path = (desc_p.contains(v) && anc_r.contains(v))
                    || (desc_r.contains(v) && anc_p.contains(v));
                if on_path && !processed.contains(v) && !later_cores.contains(v) {
                    members.insert(v);
                }
            }
        }
        // Ascending by construction (bitset iteration order).
        let list: Vec<usize> = members.iter().filter(|&v| !processed.contains(v)).collect();
        for &v in &list {
            processed.insert(v);
        }
        sets.push(list);
    }
    let rest: Vec<usize> = (0..n)
        .filter(|&v| !processed.contains(v) && !in_recurrence[v])
        .collect();
    if !rest.is_empty() {
        sets.push(rest);
    }
    SmsPrecomp { sets }
}

/// [`sms_order_from`] with the set formation already done — the
/// II-dependent sweeps only. `pre` must come from [`sms_precompute`] on
/// the same DDG.
pub fn sms_order_precomputed(ddg: &Ddg, t: &Timing, pre: &SmsPrecomp) -> Vec<OpId> {
    let n = ddg.op_count();
    if n == 0 {
        return Vec::new();
    }
    // depth = earliest start (longest path in), height = longest path out.
    let depth: &[i64] = &t.asap;
    let span = t.asap.iter().copied().max().unwrap_or(0);
    let height: Vec<i64> = t.alap.iter().map(|&a| span - a).collect();
    let mobility: Vec<i64> = (0..n).map(|v| t.alap[v] - t.asap[v]).collect();

    // Neighbour queries on the whole graph (all distances).
    let preds = |v: usize| -> Vec<usize> {
        ddg.graph()
            .predecessors(NodeId::from_index(v))
            .map(|p| p.index())
            .collect()
    };
    let succs = |v: usize| -> Vec<usize> {
        ddg.graph()
            .successors(NodeId::from_index(v))
            .map(|s| s.index())
            .collect()
    };

    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];

    let mut sset = NodeBitSet::new(n);
    for set in &pre.sets {
        sset.clear();
        for &v in set {
            sset.insert(v);
        }
        // Work list seeding: prefer connecting to already-ordered nodes.
        let pred_connected: Vec<usize> = set
            .iter()
            .copied()
            .filter(|&v| !placed[v] && succs(v).iter().any(|&s| placed[s]))
            .collect();
        let succ_connected: Vec<usize> = set
            .iter()
            .copied()
            .filter(|&v| !placed[v] && preds(v).iter().any(|&p| placed[p]))
            .collect();
        let (mut work, mut bottom_up) = if !pred_connected.is_empty() {
            (pred_connected, true)
        } else if !succ_connected.is_empty() {
            (succ_connected, false)
        } else {
            // Fresh component: start from its sources, top-down.
            let sources: Vec<usize> = set
                .iter()
                .copied()
                .filter(|&v| !placed[v] && preds(v).iter().all(|&p| !sset.contains(p)))
                .collect();
            if sources.is_empty() {
                (set.iter().copied().filter(|&v| !placed[v]).collect(), false)
            } else {
                (sources, false)
            }
        };

        // Readiness over intra-iteration edges: a node picked before all
        // its distance-0 predecessors (top-down; successors bottom-up)
        // forces those neighbours into both-sided windows later, whose
        // squeeze does not heal with a larger II. Ready nodes come first.
        let ready = |v: usize, bottom_up: bool, placed: &[bool]| -> bool {
            let id = NodeId::from_index(v);
            if bottom_up {
                ddg.graph()
                    .out_edges(id)
                    .all(|(e, s)| s.index() == v || ddg.dep(e).distance > 0 || placed[s.index()])
            } else {
                ddg.graph()
                    .in_edges(id)
                    .all(|(e, p)| p.index() == v || ddg.dep(e).distance > 0 || placed[p.index()])
            }
        };

        loop {
            // Sweep the current work list in the current direction.
            while !work.is_empty() {
                let pick = *work
                    .iter()
                    .max_by_key(|&&v| {
                        let primary = if bottom_up { depth[v] } else { height[v] };
                        (
                            ready(v, bottom_up, &placed),
                            primary,
                            -mobility[v],
                            std::cmp::Reverse(v),
                        )
                    })
                    .expect("work list non-empty");
                work.retain(|&v| v != pick);
                if placed[pick] {
                    continue;
                }
                placed[pick] = true;
                order.push(pick);
                let next = if bottom_up { preds(pick) } else { succs(pick) };
                for v in next {
                    if !placed[v] && sset.contains(v) && !work.contains(&v) {
                        work.push(v);
                    }
                }
            }
            // Flip direction: pick up set nodes adjacent to what's ordered.
            let remaining: Vec<usize> = set.iter().copied().filter(|&v| !placed[v]).collect();
            if remaining.is_empty() {
                break;
            }
            bottom_up = !bottom_up;
            work = remaining
                .iter()
                .copied()
                .filter(|&v| {
                    if bottom_up {
                        succs(v).iter().any(|&s| placed[s])
                    } else {
                        preds(v).iter().any(|&p| placed[p])
                    }
                })
                .collect();
            if work.is_empty() {
                // Disconnected leftover inside the set.
                work = vec![remaining[0]];
            }
        }
    }

    debug_assert_eq!(order.len(), n);
    order.into_iter().map(NodeId::from_index).collect()
}

/// RecMII of one strongly connected component (restricted subgraph).
fn recurrence_mii(ddg: &Ddg, comp: &[OpId]) -> i64 {
    let mut local: Vec<usize> = comp.iter().map(|c| c.index()).collect();
    local.sort_unstable();
    let is_member = |v: usize| local.binary_search(&v).is_ok();
    let index_of = |v: usize| local.binary_search(&v).expect("member");
    let deps: Vec<(usize, usize, i64, i64)> = ddg
        .dep_ids()
        .filter_map(|e| {
            let (s, d) = ddg.dep_endpoints(e);
            if is_member(s.index()) && is_member(d.index()) {
                let dep = ddg.dep(e);
                Some((
                    index_of(s.index()),
                    index_of(d.index()),
                    dep.latency as i64,
                    dep.distance as i64,
                ))
            } else {
                None
            }
        })
        .collect();
    let upper: i64 = deps.iter().map(|d| d.2.max(0)).sum::<i64>().max(1);
    gpsched_graph::feasibility::min_feasible_ii(local.len(), &deps, 1, upper).unwrap_or(upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpsched_ddg::{mii, DdgBuilder};
    use gpsched_machine::OpClass;
    use gpsched_workloads::kernels;

    fn position(order: &[OpId], op: OpId) -> usize {
        order.iter().position(|&o| o == op).expect("op in order")
    }

    #[test]
    fn covers_every_op_once() {
        for ddg in kernels::all_kernels(100) {
            let ii = mii::rec_mii(&ddg);
            let order = sms_order(&ddg, ii);
            assert_eq!(order.len(), ddg.op_count(), "{}", ddg.name());
            let mut seen: Vec<usize> = order.iter().map(|o| o.index()).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), ddg.op_count(), "{}", ddg.name());
        }
    }

    #[test]
    fn recurrence_nodes_come_first() {
        // dot product: the reduction (acc) is the critical recurrence.
        let ddg = kernels::dot_product(100);
        let ii = mii::rec_mii(&ddg);
        let order = sms_order(&ddg, ii);
        // acc is op index 3 in the builder; it must precede the loads.
        let acc = gpsched_graph::NodeId::from_index(3);
        assert_eq!(position(&order, acc), 0);
    }

    #[test]
    fn neighbours_are_never_isolated() {
        // SMS property: every node (except the first of each connected
        // region) has a graph neighbour among previously ordered nodes.
        for ddg in kernels::all_kernels(50) {
            let ii = mii::rec_mii(&ddg);
            let order = sms_order(&ddg, ii);
            let mut placed = vec![false; ddg.op_count()];
            for &op in &order {
                let has_placed_neighbor = ddg
                    .graph()
                    .predecessors(op)
                    .chain(ddg.graph().successors(op))
                    .any(|n| placed[n.index()]);
                let any_placed_connected = ddg
                    .graph()
                    .predecessors(op)
                    .chain(ddg.graph().successors(op))
                    .count()
                    > 0
                    && placed.iter().any(|&p| p);
                // Either it connects to the placed set, or nothing placed
                // yet is connected to it (start of a region).
                if any_placed_connected && !has_placed_neighbor {
                    // Allowed only when none of its neighbours are placed
                    // anywhere — i.e. its region starts fresh.
                    continue;
                }
                placed[op.index()] = true;
            }
        }
    }

    #[test]
    fn critical_recurrence_precedes_lesser_one() {
        let mut b = DdgBuilder::new("t");
        // Critical: fp mul+add cycle (RecMII 6).
        let m1 = b.op(OpClass::FpMul, "m1");
        let a1 = b.op(OpClass::FpAdd, "a1");
        b.flow(m1, a1);
        b.flow_carried(a1, m1, 1);
        // Lesser: int cycle (RecMII 2).
        let i1 = b.op(OpClass::IntAlu, "i1");
        let i2 = b.op(OpClass::IntAlu, "i2");
        b.flow(i1, i2);
        b.flow_carried(i2, i1, 1);
        let ddg = b.build().unwrap();
        let order = sms_order(&ddg, 6);
        assert!(position(&order, m1) < position(&order, i1));
        assert!(position(&order, a1) < position(&order, i2));
    }

    #[test]
    fn empty_ddg_gives_empty_order() {
        let b = DdgBuilder::new("empty");
        let ddg = b.build().unwrap();
        assert!(sms_order(&ddg, 1).is_empty());
    }

    #[test]
    fn chain_is_ordered_monotonically() {
        // For a pure chain the order must follow the chain (each node has
        // its neighbour already placed).
        let mut b = DdgBuilder::new("chain");
        let ops: Vec<_> = (0..6)
            .map(|i| b.op(OpClass::IntAlu, format!("o{i}")))
            .collect();
        for w in ops.windows(2) {
            b.flow(w[0], w[1]);
        }
        let ddg = b.build().unwrap();
        let order = sms_order(&ddg, 1);
        let positions: Vec<usize> = ops.iter().map(|&o| position(&order, o)).collect();
        let sorted_up = positions.windows(2).all(|w| w[0] < w[1]);
        let sorted_down = positions.windows(2).all(|w| w[0] > w[1]);
        assert!(
            sorted_up || sorted_down,
            "chain order broken: {positions:?}"
        );
    }
}
