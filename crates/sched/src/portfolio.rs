//! Feature-guided portfolio scheduling: pick *which* spec to run.
//!
//! PR 3's ablation showed no [`AlgorithmSpec`] dominates — `gp:norepart`
//! beats `gp` on four-cluster slow-bus machines, `gp:nospill` collapses on
//! long-distance corpora (DESIGN.md §7) — so once the inner loops are
//! fast, the remaining headroom is in spec *selection*. The portfolio
//! meta-spec (`portfolio[:k][:budget]`) closes that gap:
//!
//! 1. **Features** ([`extract_features`]): a cheap, allocation-light pass
//!    over the DDG and machine — recurrence vs. resource bounds, the
//!    loop-carried distance distribution, fan-out skew, a register
//!    pressure estimate through the existing [`PressureTable`] plumbing,
//!    and the seed partition's communication density.
//! 2. **Ranking** ([`rank`]): a deterministic, pure function from the
//!    feature vector to an ordering of the fixed CATALOG specs (the
//!    integer scoring encodes the §7 findings; ties break by catalog
//!    index).
//! 3. **Budgeted racing** (`race`, the crate-internal entry the
//!    scheduler dispatches portfolio specs to): the top `k` candidates run
//!    *sequentially in rank order*. The leader runs unconstrained and
//!    becomes the incumbent; every later challenger is first screened by
//!    the closed-form lower bound `(niter−1)·MII + max_path₀` (the same
//!    bound `CostEvaluator` prunes partitions with) and, if it survives,
//!    runs with [`DriverConfig::race_cutoff`] set to the largest II at
//!    which it could still beat the incumbent plus an attempt budget —
//!    doomed II ladders abort with [`SchedError::RaceCutoff`] instead of
//!    climbing to the cap. A plain list schedule is compared last, so the
//!    portfolio never loses to the non-pipelined baseline.
//!
//! Racing sequentially makes determinism trivial: the outcome is a pure
//! function of `(ddg, machine, spec)`, byte-identical for any worker
//! count, and re-running the winning spec alone reproduces the winner's
//! schedule exactly (a cutoff only turns losing runs into early errors;
//! it never alters a run that succeeds). The engine's winner memo and the
//! sequential-equivalence argument in DESIGN.md §12 both lean on that.

use crate::algo::{schedule_impl, LoopResult};
use crate::drivers::DriverConfig;
use crate::error::SchedError;
use crate::lifetime::PressureTable;
use crate::spec::{AlgorithmSpec, BaseAlgorithm};
use crate::SchedSeed;
use gpsched_ddg::timing::TimingWorkspace;
use gpsched_ddg::{Ddg, DepKind};
use gpsched_machine::MachineConfig;
use gpsched_partition::{PartitionOptions, PartitionResult};

/// Cheap shape descriptors of one scheduling unit, extracted in one pass
/// over the DDG (plus one timing analysis at the MII). All fields are
/// integers so [`rank`] is exactly reproducible — no float comparisons.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FeatureVector {
    /// Operations per iteration.
    pub ops: i64,
    /// Resource-constrained II lower bound.
    pub res_mii: i64,
    /// Recurrence-constrained II lower bound.
    pub rec_mii: i64,
    /// Longest intra-iteration dependence path at `II = MII` — the `SL`
    /// floor of any modulo schedule, and the `max_path₀` term of the
    /// pruning screen.
    pub max_path0: i64,
    /// Largest loop-carried dependence distance.
    pub max_distance: i64,
    /// Number of loop-carried dependences (`distance > 0`).
    pub carried_deps: i64,
    /// Total dependences.
    pub total_deps: i64,
    /// Largest flow fan-out of any op (consumer count).
    pub max_fanout: i64,
    /// Estimated `MaxLive` register pressure: flow lifetimes
    /// `[asap(def), max asap(use) + II·distance]` folded through one
    /// pooled [`PressureTable`] row at `II = MII`.
    pub pressure: i64,
    /// Per-cluster register file capacity.
    pub registers: i64,
    /// Values crossing the seed partition's cut (`NComm`); 0 when no
    /// partition is in play (unified machines).
    pub comm_count: i64,
    /// The seed partition's interconnect bound (`IIbus`); 1 when no
    /// partition is in play.
    pub ii_bus: i64,
    /// Cluster count of the machine.
    pub clusters: i64,
}

impl FeatureVector {
    /// `MII = max(ResMII, RecMII)`.
    pub fn mii(&self) -> i64 {
        self.res_mii.max(self.rec_mii)
    }
}

/// Extracts the [`FeatureVector`] of one unit. `initial` is the seed
/// partition the candidates will share (its cost block supplies the
/// communication features); `start_ii` is the unit's MII.
pub fn extract_features(
    ddg: &Ddg,
    machine: &MachineConfig,
    initial: Option<&PartitionResult>,
    start_ii: i64,
) -> FeatureVector {
    let ii0 = start_ii.max(1);
    let ops = ddg.op_count() as i64;

    let (mut max_distance, mut carried_deps) = (0i64, 0i64);
    for e in ddg.dep_ids() {
        let d = i64::from(ddg.dep(e).distance);
        if d > 0 {
            carried_deps += 1;
            max_distance = max_distance.max(d);
        }
    }

    let mut max_fanout = 0i64;
    for op in ddg.op_ids() {
        let fanout = ddg
            .graph()
            .out_edges(op)
            .filter(|&(e, s)| s != op && ddg.dep(e).kind == DepKind::Flow)
            .count() as i64;
        max_fanout = max_fanout.max(fanout);
    }

    // One timing analysis at the MII feeds both the critical-path feature
    // and the lifetime estimate. The MII is feasible by construction, but
    // degrade gracefully rather than panic if analysis declines.
    let mut ws = TimingWorkspace::new();
    let (max_path0, pressure) = match ws.analyze(ddg, ii0, |_| 0) {
        Some(t) => {
            let mut pt = PressureTable::new(vec![i64::MAX / 4], ii0);
            for op in ddg.op_ids() {
                let def = t.asap[op.index()];
                let mut last_use: Option<i64> = None;
                for (e, s) in ddg.graph().out_edges(op) {
                    let dep = ddg.dep(e);
                    if s == op || dep.kind != DepKind::Flow {
                        continue;
                    }
                    let u = t.asap[s.index()] + ii0 * i64::from(dep.distance);
                    last_use = Some(last_use.map_or(u, |l: i64| l.max(u)));
                }
                if let Some(lu) = last_use {
                    pt.add(0, def, lu.max(def));
                }
            }
            (t.max_path, pt.max_live(0))
        }
        None => (ops, 0),
    };

    let (comm_count, ii_bus) =
        initial.map_or((0, 1), |p| (p.cost.comm_count as i64, p.cost.ii_bus));

    FeatureVector {
        ops,
        res_mii: gpsched_ddg::mii::res_mii(ddg, machine),
        rec_mii: gpsched_ddg::mii::rec_mii(ddg),
        max_path0,
        max_distance,
        carried_deps,
        total_deps: ddg.dep_ids().len() as i64,
        max_fanout,
        pressure,
        registers: i64::from(machine.cluster(0).registers),
        comm_count,
        ii_bus,
        clusters: machine.cluster_count() as i64,
    }
}

/// The candidate pool: every pipeline spec of the CATALOG (`list` is not
/// a candidate — it is the floor every race compares against at the end).
pub fn candidates() -> impl Iterator<Item = AlgorithmSpec> {
    AlgorithmSpec::CATALOG.into_iter().filter(|s| !s.is_list())
}

/// Scores one candidate against the features: a base prior from the §7
/// ablation (GP and its no-repartition variant lead, the URACAM baseline
/// follows, the stressed variants trail) plus integer adjustments for the
/// regimes where the ablation found the order flips.
fn score(f: &FeatureVector, spec: &AlgorithmSpec) -> i64 {
    let s = spec.spec_string();
    let mut v = match s.as_str() {
        "gp" => 100,
        "gp:norepart" => 90,
        "uracam" => 80,
        "fixed" => 70,
        "gp:linear-ii" => 60,
        "uracam:greedy-merit" => 50,
        "gp:nospill" => 40,
        _ => 0,
    };
    let mii = f.mii();
    let gp_family = s.starts_with("gp");
    if f.clusters == 1 {
        // No cut to optimize: the integrated scheduler's freedom costs
        // nothing and the partition machinery buys nothing.
        if s.starts_with("uracam") {
            v += 25;
        }
    }
    if f.ii_bus > mii {
        // The bus bound exceeds the II: exactly the regime selective
        // re-partitioning exists for.
        if s == "gp" {
            v += 20;
        }
        if s == "gp:norepart" {
            v -= 15;
        }
    }
    if f.comm_count * 8 < f.ops {
        // Sparse cut: re-partitioning has nothing to move; skipping its
        // checks is free IPC-neutral speed and occasionally better.
        if s == "gp:norepart" {
            v += 20;
        }
    }
    if f.pressure > f.registers {
        // Estimated MaxLive already exceeds one register file: spilling
        // is how such loops close at all.
        if s == "gp:nospill" {
            v -= 60;
        }
        if s == "uracam" {
            v += 10;
        }
    } else if f.pressure * 2 > f.registers && s == "gp:nospill" {
        // Half the file already live at the estimate: spills are likely.
        v -= 25;
    }
    if f.max_distance >= 4 {
        // Long-distance corpora: the §7 regime where nospill collapses.
        if s == "gp:nospill" {
            v -= 30;
        }
    }
    if f.rec_mii > f.res_mii {
        // Recurrence-bound loop: placement freedom around the cycle
        // matters more than cut quality.
        if s == "uracam" {
            v += 15;
        }
        if s == "gp:linear-ii" {
            v += 10;
        }
    }
    if f.max_fanout * 4 > f.ops && gp_family {
        // High fan-out skew concentrates merit arbitration; the greedy
        // escape hatch misplaces hubs.
        if s == "uracam:greedy-merit" {
            v -= 10;
        }
    }
    v
}

/// Orders the candidate pool for `f`: descending score, catalog index as
/// the tie-breaker. A pure function of the feature vector — no global
/// state, no floats, no iteration-order dependence — which the property
/// tests pin.
pub fn rank(f: &FeatureVector) -> Vec<AlgorithmSpec> {
    let mut scored: Vec<(i64, usize, AlgorithmSpec)> = AlgorithmSpec::CATALOG
        .into_iter()
        .enumerate()
        .filter(|(_, s)| !s.is_list())
        .map(|(i, s)| (score(f, &s), i, s))
        .collect();
    scored.sort_by_key(|&(v, i, _)| (std::cmp::Reverse(v), i));
    scored.into_iter().map(|(_, _, s)| s).collect()
}

/// The race's total order on schedules: fewer cycles, then lower II, then
/// shorter length. Strictly smaller wins; ties keep the earlier-ranked
/// incumbent, so the outcome never depends on traversal accidents.
fn key(r: &LoopResult) -> (u64, i64, i64) {
    (r.cycles(), r.schedule.ii(), r.schedule.length())
}

/// Runs the portfolio race for one unit. Called by the scheduling entry
/// points when the spec [is a portfolio](AlgorithmSpec::is_portfolio);
/// `start_ii`/`initial` are the unit's resolved MII and seed partition
/// (every candidate shares them).
///
/// # Errors
///
/// [`SchedError::Unschedulable`] when the machine lacks units for the
/// loop — the same condition the fixed specs report.
pub(crate) fn race(
    ddg: &Ddg,
    machine: &MachineConfig,
    spec: AlgorithmSpec,
    popts: &PartitionOptions,
    cfg: &DriverConfig,
    start_ii: i64,
    initial: Option<PartitionResult>,
) -> Result<LoopResult, SchedError> {
    let k = spec.portfolio_k();
    let budget = spec.portfolio_budget();
    let (features, ranked) = {
        let _span = gpsched_trace::span!("portfolio.rank");
        let f = extract_features(ddg, machine, initial.as_ref(), start_ii);
        let order = rank(&f);
        (f, order)
    };
    let seed = SchedSeed {
        start_ii,
        partition: initial,
    };
    let trips = ddg.trip_count();

    let mut best: Option<(AlgorithmSpec, LoopResult)> = None;
    for cand in ranked.into_iter().take(k.max(1)) {
        let cand_cfg = match &best {
            None => *cfg, // the leader runs unconstrained, fallback included
            Some((_, inc)) => {
                let inc_cycles = inc.cycles();
                // Closed-form screen: even at the MII the challenger's
                // `(niter−1)·II + SL` cannot dip below
                // `(niter−1)·MII + max_path₀`.
                let floor = ddg.execution_time(start_ii, features.max_path0);
                if u64::try_from(floor).unwrap_or(u64::MAX) >= inc_cycles {
                    gpsched_trace::counter!("portfolio.candidates_pruned");
                    continue;
                }
                // Largest II at which the challenger could still win: one
                // more and its lower bound meets the incumbent.
                let cutoff = if trips > 1 {
                    let slack =
                        i64::try_from(inc_cycles).unwrap_or(i64::MAX) - 1 - features.max_path0;
                    Some(slack / i64::try_from(trips - 1).unwrap_or(i64::MAX).max(1))
                } else {
                    None // single-trip cycles don't scale with II
                };
                DriverConfig {
                    race_cutoff: cutoff,
                    attempt_budget: Some(budget),
                    ..*cfg
                }
            }
        };
        let result = {
            let _span = gpsched_trace::span!("portfolio.race", "cand={cand}");
            schedule_impl(ddg, machine, cand, popts, &cand_cfg, Some(&seed))
        };
        match result {
            Ok(r) => match &best {
                Some((_, inc)) if key(&r) >= key(inc) => {}
                _ => best = Some((cand, r)),
            },
            Err(SchedError::RaceCutoff { .. }) => {
                gpsched_trace::counter!("portfolio.candidates_cut_off");
            }
            Err(e) => return Err(e),
        }
    }

    // The non-pipelined floor: a portfolio answer never loses to plain
    // list scheduling (the fixed specs guarantee this per spec via their
    // fallback; the portfolio guarantees it across the pool).
    let list = AlgorithmSpec::bare(BaseAlgorithm::List);
    let list_result = schedule_impl(ddg, machine, list, popts, cfg, Some(&seed))?;
    let (selected, mut winner) = match best {
        Some((s, r)) if key(&r) <= key(&list_result) => (s, r),
        _ => (list, list_result),
    };
    winner.selected = Some(selected);
    Ok(winner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule_loop_spec;
    use gpsched_workloads::kernels;

    fn machines() -> Vec<MachineConfig> {
        vec![
            MachineConfig::unified(32),
            MachineConfig::two_cluster(32, 1, 1),
            MachineConfig::four_cluster(32, 1, 2),
        ]
    }

    fn features_for(ddg: &Ddg, m: &MachineConfig) -> FeatureVector {
        let start = gpsched_ddg::mii::mii(ddg, m);
        let part = gpsched_partition::partition_ddg(ddg, m, start, &PartitionOptions::default());
        extract_features(ddg, m, Some(&part), start)
    }

    #[test]
    fn features_are_deterministic_and_sane() {
        for ddg in kernels::all_kernels(200) {
            for m in machines() {
                let f = features_for(&ddg, &m);
                assert_eq!(f, features_for(&ddg, &m), "{}", ddg.name());
                assert_eq!(f.ops, ddg.op_count() as i64);
                assert!(f.res_mii >= 1 && f.rec_mii >= 1, "{}", ddg.name());
                assert!(f.max_path0 >= 1, "{}", ddg.name());
                assert!(f.pressure >= 0 && f.registers > 0);
                assert!(f.carried_deps <= f.total_deps);
            }
        }
    }

    #[test]
    fn rank_covers_the_pipeline_catalog() {
        let ddg = kernels::fir(500, 8);
        let m = MachineConfig::two_cluster(32, 1, 1);
        let order = rank(&features_for(&ddg, &m));
        assert_eq!(order.len(), candidates().count());
        for s in &order {
            assert!(!s.is_list() && !s.is_portfolio(), "{s}");
        }
        let mut dedup = order.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), order.len(), "ranking must not repeat specs");
    }

    /// The ranker is a pure function of the feature vector: identical
    /// vectors — however they were produced — rank identically, and
    /// repeated calls agree. Vectors come from a seeded LCG so the
    /// property is checked across a broad, reproducible slice of the
    /// feature space, not just vectors real kernels happen to produce.
    #[test]
    fn rank_is_a_pure_function_of_the_features() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move |hi: i64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i64).rem_euclid(hi.max(1)) + 1
        };
        for _ in 0..500 {
            let f = FeatureVector {
                ops: next(400),
                res_mii: next(30),
                rec_mii: next(30),
                max_path0: next(200),
                max_distance: next(8) - 1,
                carried_deps: next(50) - 1,
                total_deps: next(600),
                max_fanout: next(40) - 1,
                pressure: next(96) - 1,
                registers: next(64),
                comm_count: next(80) - 1,
                ii_bus: next(40),
                clusters: next(4),
            };
            let copy = f; // a bitwise copy must be indistinguishable
            assert_eq!(rank(&f), rank(&copy));
            assert_eq!(rank(&f), rank(&f), "repeated calls must agree");
        }
    }

    #[test]
    fn portfolio_winner_is_reproducible_from_the_selected_spec() {
        for ddg in kernels::all_kernels(300) {
            for m in machines() {
                let p = schedule_loop_spec(&ddg, &m, AlgorithmSpec::PORTFOLIO).unwrap();
                let sel = p.selected.expect("portfolio must record its winner");
                assert!(!sel.is_portfolio());
                let direct = schedule_loop_spec(&ddg, &m, sel).unwrap();
                assert_eq!(p.cycles(), direct.cycles(), "{}: {sel}", ddg.name());
                assert_eq!(p.schedule.ii(), direct.schedule.ii(), "{}", ddg.name());
                assert_eq!(
                    p.schedule.placements(),
                    direct.schedule.placements(),
                    "{}: re-running {sel} must reproduce the winner",
                    ddg.name()
                );
            }
        }
    }

    #[test]
    fn portfolio_never_loses_to_any_raced_candidate_or_list() {
        for ddg in kernels::all_kernels(300) {
            let m = MachineConfig::four_cluster(32, 1, 1);
            let p = schedule_loop_spec(&ddg, &m, AlgorithmSpec::PORTFOLIO).unwrap();
            let list =
                schedule_loop_spec(&ddg, &m, AlgorithmSpec::bare(BaseAlgorithm::List)).unwrap();
            assert!(
                p.cycles() <= list.cycles(),
                "{}: portfolio {} vs list {}",
                ddg.name(),
                p.cycles(),
                list.cycles()
            );
            // And against every candidate it actually raced.
            let start = gpsched_ddg::mii::mii(&ddg, &m);
            let part =
                gpsched_partition::partition_ddg(&ddg, &m, start, &PartitionOptions::default());
            let f = extract_features(&ddg, &m, Some(&part), start);
            for cand in rank(&f).into_iter().take(3) {
                let c = schedule_loop_spec(&ddg, &m, cand).unwrap();
                assert!(
                    p.cycles() <= c.cycles(),
                    "{}: portfolio {} lost to raced {cand} {}",
                    ddg.name(),
                    p.cycles(),
                    c.cycles()
                );
            }
        }
    }
}
