//! Modulo scheduling for clustered VLIW processors.
//!
//! Implements §3.1 and §3.3 of *"Graph-Partitioning Based Instruction
//! Scheduling for Clustered Processors"* (Aletà et al., MICRO-34, 2001) and
//! its URACAM comparator (Codina, Sánchez, González, PACT'01):
//!
//! * [`order`] — the Swing Modulo Scheduling node ordering;
//! * [`mrt`] — per-cluster modulo reservation tables for functional units
//!   and the non-pipelined inter-cluster bus(es);
//! * [`lifetime`] — register lifetimes and per-cluster `MaxLive` pressure;
//! * [`merit`] — the multi-dimensional figure of merit (§3.3.1) that
//!   compares candidate partial schedules;
//! * [`state`] — the partial schedule: op placement, inter-cluster
//!   communication (bus transfer or through-memory), spill-on-overflow;
//! * [`pipeline`] — the policy-composable scheduling pipeline: the shared
//!   engine loop plus the [`pipeline::cluster::ClusterPolicy`],
//!   [`pipeline::order::OrderPolicy`], [`pipeline::growth::IiGrowthPolicy`]
//!   and [`pipeline::spill::SpillPolicy`] axes the algorithms differ on;
//! * [`drivers`] — the paper's schedulers (**GP**, **Fixed Partition**,
//!   **URACAM**) as thin policy compositions, plus the list-scheduling
//!   fallback for loops whose II explodes;
//! * [`AlgorithmSpec`] — the open, string-parsable algorithm axis
//!   (`gp`, `gp:norepart`, `uracam:greedy-merit`, …) that resolves any
//!   variant to a pipeline [`pipeline::PolicySet`];
//! * [`portfolio`] — feature-guided spec selection: rank the fixed
//!   catalog by cheap loop/machine features and race the top `k` with a
//!   budget (`portfolio[:k][:budget]`), keeping the best schedule;
//! * [`schedule`] — the final [`Schedule`] with the paper's cycle/IPC
//!   accounting (`cycles = (trips − 1)·II + SL`, prolog/epilog included).
//!
//! # Example
//!
//! ```
//! use gpsched_machine::MachineConfig;
//! use gpsched_sched::{schedule_loop, Algorithm};
//! use gpsched_workloads::kernels;
//!
//! let ddg = kernels::daxpy(1000);
//! let machine = MachineConfig::two_cluster(32, 1, 1);
//! let result = schedule_loop(&ddg, &machine, Algorithm::Gp).unwrap();
//! assert!(result.schedule.ii() >= 1);
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
pub mod drivers;
mod error;
pub mod lifetime;
pub mod listsched;
pub mod merit;
pub mod mrt;
pub mod order;
pub mod pipeline;
pub mod portfolio;
pub mod schedule;
mod spec;
pub mod state;

pub use algo::{
    schedule_loop, schedule_loop_seeded, schedule_loop_spec, schedule_loop_spec_seeded,
    schedule_loop_with, Algorithm, LoopResult, SchedSeed, ScheduledWith,
};
pub use error::SchedError;
pub use schedule::Schedule;
pub use spec::{AlgorithmSpec, BaseAlgorithm, SpecError};
