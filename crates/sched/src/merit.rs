//! The multi-dimensional figure of merit (§3.3.1).
//!
//! A candidate placement is scored by the *fraction of the remaining
//! resources it consumes*, one component per critical resource: one for the
//! inter-cluster bus, one per cluster for memory slots, one per cluster for
//! register lifetimes (`2·NClusters + 1` components). Scarce resources are
//! thereby valued inversely to their remaining amount.
//!
//! Two figures are compared by sorting each descending and scanning
//! pairwise until the difference exceeds a threshold — the figure with the
//! smaller component at that position wins ("benefit the weakest resource").
//! If all pairs are within the threshold, the smaller component sum wins.

use std::cmp::Ordering;

/// Default comparison threshold (5 percentage points).
pub const DEFAULT_THRESHOLD: f64 = 0.05;

/// A figure of merit: consumed-fractions of the remaining resources.
#[derive(Clone, Debug, PartialEq)]
pub struct Merit {
    /// Clamped components, sorted descending (the comparison order).
    components: Vec<f64>,
    sum: f64,
}

impl Merit {
    /// Builds a figure of merit from its components.
    ///
    /// Components are clamped below at 0; a component of 1.0 means "this
    /// placement consumes all that remains of the resource". Consumption
    /// with nothing remaining is represented by `f64::INFINITY`.
    ///
    /// The comparison always scans components in descending order, so they
    /// are sorted once here instead of on every [`Merit::compare`] (the
    /// placement loop compares each candidate against the running best).
    pub fn new(mut components: Vec<f64>) -> Self {
        for c in &mut components {
            *c = c.max(0.0);
        }
        components.sort_by(|x, y| y.partial_cmp(x).unwrap_or(Ordering::Equal));
        let sum = components.iter().sum();
        Merit { components, sum }
    }

    /// Consumed-fraction helper: `consumed / remaining_before`, with the
    /// conventions 0/0 = 0 and x/0 = ∞ for x > 0.
    pub fn fraction(consumed: i64, remaining_before: i64) -> f64 {
        if consumed <= 0 {
            0.0
        } else if remaining_before <= 0 {
            f64::INFINITY
        } else {
            consumed as f64 / remaining_before as f64
        }
    }

    /// The clamped components, sorted descending.
    pub fn components(&self) -> &[f64] {
        &self.components
    }

    /// Component sum (the final tie-breaker).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Paper comparison: scan the descending components pairwise, first
    /// significant difference decides; otherwise the smaller sum.
    pub fn compare(&self, other: &Merit, threshold: f64) -> Ordering {
        let a = &self.components;
        let b = &other.components;
        let n = a.len().max(b.len());
        for i in 0..n {
            let x = a.get(i).copied().unwrap_or(0.0);
            let y = b.get(i).copied().unwrap_or(0.0);
            if (x - y).abs() > threshold || x.is_infinite() != y.is_infinite() {
                return x.partial_cmp(&y).unwrap_or(Ordering::Equal);
            }
        }
        self.sum.partial_cmp(&other.sum).unwrap_or(Ordering::Equal)
    }

    /// Returns `true` if `self` is strictly preferable to `other`.
    pub fn better_than(&self, other: &Merit, threshold: f64) -> bool {
        self.compare(other, threshold) == Ordering::Less
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_conventions() {
        assert_eq!(Merit::fraction(0, 0), 0.0);
        assert_eq!(Merit::fraction(0, 5), 0.0);
        assert_eq!(Merit::fraction(2, 8), 0.25);
        assert!(Merit::fraction(1, 0).is_infinite());
        assert_eq!(Merit::fraction(-1, 0), 0.0);
    }

    #[test]
    fn highest_component_decides() {
        // a's worst component (0.9) is worse than b's worst (0.5).
        let a = Merit::new(vec![0.1, 0.9]);
        let b = Merit::new(vec![0.5, 0.4]);
        assert!(b.better_than(&a, DEFAULT_THRESHOLD));
        assert!(!a.better_than(&b, DEFAULT_THRESHOLD));
    }

    #[test]
    fn threshold_falls_through_to_next_component() {
        // Worst components nearly equal → second-worst decides.
        let a = Merit::new(vec![0.50, 0.40]);
        let b = Merit::new(vec![0.52, 0.10]);
        assert!(b.better_than(&a, DEFAULT_THRESHOLD));
    }

    #[test]
    fn all_similar_uses_sum() {
        let a = Merit::new(vec![0.30, 0.30, 0.30]);
        let b = Merit::new(vec![0.31, 0.31, 0.28]);
        // All pairwise diffs within 0.05 → sums: 0.90 vs 0.90 → a == b?
        // Make them differ.
        let c = Merit::new(vec![0.28, 0.28, 0.28]);
        assert!(c.better_than(&a, DEFAULT_THRESHOLD));
        assert_eq!(a.compare(&b, DEFAULT_THRESHOLD), Ordering::Less);
    }

    #[test]
    fn infinity_always_loses() {
        let sat = Merit::new(vec![f64::INFINITY, 0.0]);
        let ok = Merit::new(vec![0.99, 0.99]);
        assert!(ok.better_than(&sat, DEFAULT_THRESHOLD));
    }

    #[test]
    fn negative_components_clamped() {
        let m = Merit::new(vec![-0.5, 0.2]);
        assert_eq!(m.components(), &[0.2, 0.0]); // descending
    }

    #[test]
    fn different_lengths_compare() {
        let a = Merit::new(vec![0.5]);
        let b = Merit::new(vec![0.5, 0.3]);
        assert!(a.better_than(&b, DEFAULT_THRESHOLD));
    }
}
